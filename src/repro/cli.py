"""Command-line interface for the ONES reproduction.

Installed as the ``repro-ones`` console script (also runnable as
``python -m repro.cli``).  Sub-commands:

``trace``
    Generate a Table-2 workload trace and write it to JSON.
``run``
    Replay a trace (or a freshly generated one) under one scheduler and
    print / export the resulting metrics.
``compare``
    Run the Fig. 15 comparison (ONES vs DRL / Tiresias / Optimus) on a
    shared trace and print averages, improvements and Wilcoxon tests.
``sweep``
    Run the Fig. 17/18 scalability sweep over several cluster sizes
    (and optionally several seeds).
``worker``
    Attach a queue worker to a durable queue directory (see below).
``queue-status``
    Inspect a queue directory: per-state cell counts and per-cell rows.
``serve``
    Stand up the scheduler service: a live simulator accepting online
    job submissions over a JSONL/TCP socket (see
    :mod:`repro.service`).
``submit``
    Submit one job — or an arrival-profile-driven batch — to a running
    service and print the placement decisions.
``service-status``
    Query a running service: control-plane status, ``--metrics`` for
    decision-latency histograms, or ``--drain`` to run it dry.
``schedulers``
    List every scheduler in the registry with its Table-3 capabilities.
``fault-profiles``
    List the registered fault-injection profiles (``mtbf``, ``rack``,
    ``maintenance``, ``stragglers``, ...).
``figures``
    Regenerate the analytic figures (2, 3, 13, 14, 16) without running
    cluster simulations.

``compare`` and ``sweep`` accept ``--faults <profile>`` (or
``--faults-file plan.json``): the grid then runs every cell twice — once
clean, once under the seeded fault plan — and reports recovery metrics
(goodput, evictions, restarts, lost GPU-seconds) plus the JCT
degradation of each scheduler against its zero-fault twin.

``compare`` and ``sweep`` are built on the declarative orchestration
API: the grid is an :class:`~repro.experiments.spec.ExperimentSpec`
executed by a :class:`~repro.experiments.orchestrator.Runner`.
``--workers N`` fans the grid's cells out over a process pool (results
are bit-identical to serial execution), ``--output-dir`` persists every
cell artifact plus the sweep JSON and a Markdown report, and
``--resume`` skips cells whose artifacts are already cached there.

``--backend queue --queue-dir DIR`` switches to the durable lease-based
work queue: cells are enqueued into ``DIR`` (idempotently, by content
key), ``--workers N`` local worker processes are spawned (0 = wait for
external workers started with ``repro-ones worker DIR`` on any host
sharing the filesystem), and the sweep survives worker churn — a killed
worker's lease expires and its cell is re-claimed.  Cells that exhaust
``--cell-retries`` end DEAD and are reported with a failure table and a
non-zero exit, never silently dropped.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.export import (
    export_comparison_csv,
    export_comparison_json,
    export_result_csv,
    export_result_json,
    export_sweep_json,
)
from repro.analysis.reporting import ascii_bar_chart, ascii_series, format_table
from repro.analysis.stats import significance_table
from repro.experiments import figures
from repro.experiments.orchestrator import Runner
from repro.experiments.registry import (
    available_schedulers,
    capabilities_table,
    create_scheduler,
    paper_schedulers,
    resolve,
)
from repro.experiments.spec import ExperimentSpec
from repro.experiments.backends import CellTimeoutError, simulate_trace
from repro.faults import FaultConfig, available_profiles, profile_table
from repro.sim.simulator import SimulationConfig
from repro.workload.replay import load_trace, save_trace, trace_statistics
from repro.workload.trace import TraceConfig, TraceGenerator

class _RegistryView:
    """Live lowercase-name view of the scheduler registry.

    Kept under the historical ``SCHEDULERS`` name for backwards
    compatibility; reading it always reflects the *current* registry, so
    schedulers registered after this module was imported are reachable
    from the CLI too.
    """

    def _names(self) -> List[str]:
        return [name.lower() for name in available_schedulers()]

    def __iter__(self):
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._names()

    def __getitem__(self, name: str):
        canonical = resolve(name).name
        return lambda seed: create_scheduler(canonical, seed)

    def keys(self):
        return self._names()


#: CLI name -> seed-only scheduler factory (a live registry view).
SCHEDULERS = _RegistryView()


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ones",
        description="Reproduction of ONES (SC'21): online evolutionary batch size orchestration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser(
        "trace",
        help="generate a workload trace, or inspect a recorded execution trace",
        description="Without a positional argument: generate a workload trace "
                    "(--output required). With TRACE_FILE: inspect a JSONL "
                    "execution trace written by --trace-out (summary, span "
                    "tree, filters, Chrome/Perfetto export).",
    )
    trace.add_argument("trace_file", type=Path, nargs="?", default=None,
                       help="a --trace-out JSONL file to inspect instead of "
                            "generating a workload trace")
    trace.add_argument("--jobs", type=int, default=50)
    trace.add_argument("--arrival-interval", type=float, default=30.0,
                       help="mean seconds between arrivals")
    trace.add_argument("--seed", type=int, default=2021)
    trace.add_argument("--output", type=Path, default=None,
                       help="JSON file to write (required when generating)")
    trace.add_argument("--tree", action="store_true",
                       help="inspector: print the nested span/event tree")
    trace.add_argument("--filter-cat", default=None, metavar="SUBSTR",
                       help="inspector: only records whose category contains SUBSTR")
    trace.add_argument("--filter-name", default=None, metavar="SUBSTR",
                       help="inspector: only records whose name contains SUBSTR")
    trace.add_argument("--limit", type=int, default=200, metavar="N",
                       help="inspector: cap the number of tree lines (default 200)")
    trace.add_argument("--chrome", type=Path, default=None, metavar="OUT",
                       help="inspector: export Chrome trace_event JSON "
                            "(open in Perfetto / chrome://tracing)")

    run = sub.add_parser("run", help="run one scheduler over a trace")
    run.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="ones")
    run.add_argument("--gpus", type=int, default=64, help="cluster size (multiple of 4)")
    run.add_argument("--jobs", type=int, default=50, help="trace size when generating")
    run.add_argument("--arrival-interval", type=float, default=30.0)
    run.add_argument("--trace", type=Path, default=None, help="replay an existing trace JSON")
    run.add_argument("--seed", type=int, default=2021)
    run.add_argument("--incremental-scoring", choices=["on", "off"], default=None,
                     help="toggle the ONES delta-scoring generation kernel "
                          "(default: on; 'off' forces full per-generation "
                          "rescoring — results are bit-identical either way)")
    run.add_argument("--profile", action="store_true",
                     help="record per-phase wall-clock (ledger advance, handlers, "
                          "GPR refits, evolution operators) and print it after "
                          "the summary")
    _add_partition_arguments(run)
    run.add_argument("--csv", type=Path, default=None, help="export per-job metrics to CSV")
    run.add_argument("--json", type=Path, default=None, help="export run summary to JSON")
    run.add_argument("--trace-out", type=Path, default=None, metavar="PATH",
                     help="record a structured execution trace (reconfig "
                          "decisions, evolution generations, faults) and write "
                          "it as JSONL; inspect with `repro-ones trace PATH`")

    compare = sub.add_parser("compare", help="compare ONES against the paper baselines")
    compare.add_argument("--schedulers", "--scheduler", nargs="+",
                         choices=sorted(SCHEDULERS),
                         default=None, metavar="NAME",
                         help="registry names to compare (default: the paper's four)")
    compare.add_argument("--gpus", type=int, default=64)
    compare.add_argument("--jobs", type=int, default=50)
    compare.add_argument("--arrival-interval", type=float, default=30.0)
    compare.add_argument("--seed", type=int, default=2021)
    _add_partition_arguments(compare)
    _add_backend_arguments(compare)
    compare.add_argument("--profile", action="store_true",
                         help="record per-phase wall-clock in every cell artifact "
                              "and print a summary")
    _add_fault_arguments(compare)
    compare.add_argument("--csv", type=Path, default=None)
    compare.add_argument("--json", type=Path, default=None)
    compare.add_argument("--report", type=Path, default=None,
                         help="write a Markdown report of the comparison")
    compare.add_argument("--trace-out", type=Path, default=None, metavar="PATH",
                         help="record a structured execution trace of every "
                              "cell (serial backend only) and write it as JSONL")

    sweep = sub.add_parser("sweep", help="scalability sweep over cluster capacities")
    sweep.add_argument("--capacities", type=int, nargs="+", default=[16, 32, 48, 64])
    sweep.add_argument("--schedulers", nargs="+", choices=sorted(SCHEDULERS),
                       default=None, metavar="NAME",
                       help="registry names to compare (default: the paper's four)")
    sweep.add_argument("--jobs", type=int, default=50)
    sweep.add_argument("--traces", type=int, nargs="+", default=None, metavar="JOBS",
                       help="trace sizes for a multi-trace grid (one trace per "
                            "job count; overrides --jobs; metrics average over traces)")
    sweep.add_argument("--arrival-interval", type=float, default=30.0)
    sweep.add_argument("--seeds", type=int, nargs="+", default=[2021],
                       help="one run per (scheduler, capacity, seed, trace) cell")
    _add_partition_arguments(sweep)
    sweep.add_argument("--partition-sizes", type=int, nargs="+", default=None,
                       metavar="GPUS",
                       help="grid axis over ONES-hier shard sizes: one run of "
                            "every cell per size (overrides --partition-size)")
    _add_backend_arguments(sweep)
    sweep.add_argument("--profile", action="store_true",
                       help="record per-phase wall-clock (ledger advance, handlers, "
                            "GPR refits) in every cell artifact and print a summary")
    _add_fault_arguments(sweep)
    sweep.add_argument("--json", type=Path, default=None)

    worker = sub.add_parser(
        "worker",
        help="attach a queue worker to a durable queue directory",
        description="Claim and execute cells from a queue directory created by "
                    "`compare`/`sweep --backend queue`. Start any number of these, "
                    "on any host sharing the filesystem; kill them freely — an "
                    "interrupted cell's lease expires and the cell is re-claimed.",
    )
    worker.add_argument("queue_dir", type=Path)
    worker.add_argument("--worker-id", default=None,
                        help="stable worker name for the log (default: random)")
    worker.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                        help="override the queue's lease TTL for this worker")
    worker.add_argument("--skew-margin", type=float, default=None, metavar="SECONDS",
                        help="override the queue's clock-skew safety margin on "
                             "lease-expiry checks")
    worker.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="idle poll interval when no cell is claimable")
    worker.add_argument("--exit-when-done", action="store_true",
                        help="exit once every cell is COMPLETED or DEAD")
    worker.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="exit after settling N cells (ephemeral-worker mode)")
    worker.add_argument("--hold-s", type=float, default=0.0, metavar="SECONDS",
                        help="chaos hook: sleep between claiming and executing "
                             "(gives kill-mid-cell drills a window)")
    worker.add_argument("--quiet", action="store_true")
    worker.add_argument("--trace-out", type=Path, default=None, metavar="PATH",
                        help="record queue lease transitions (claim/heartbeat/"
                             "complete/expire/dead) and execute spans; written "
                             "as JSONL on exit")

    qstatus = sub.add_parser("queue-status",
                             help="inspect a durable queue directory")
    qstatus.add_argument("queue_dir", type=Path)
    qstatus.add_argument("--cells", action="store_true",
                         help="also print one row per cell")
    qstatus.add_argument("--since", type=float, default=None, metavar="SECONDS",
                         help="with --cells: only cells whose newest event-log "
                              "record is at most SECONDS old")
    qstatus.add_argument("--json", action="store_true",
                         help="emit a machine-readable snapshot (states, cells, "
                              "lease ages) instead of the tables")

    serve = sub.add_parser(
        "serve",
        help="run the scheduler service (online submissions over JSONL/TCP)",
        description="Stand up a live simulated cluster behind a JSONL-over-TCP "
                    "submission API. In --mode virtual the clock advances only "
                    "with events (deterministic replay); in --mode wall it "
                    "follows wall-clock at --time-scale virtual seconds per "
                    "second. Stop with SIGTERM/SIGINT (clean exit) or the "
                    "client's shutdown op.",
    )
    serve.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="ones")
    serve.add_argument("--gpus", type=int, default=64, help="cluster size (multiple of 4)")
    serve.add_argument("--seed", type=int, default=2021)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default 7061; 0 picks an ephemeral port)")
    serve.add_argument("--mode", choices=["virtual", "wall"], default="virtual")
    serve.add_argument("--time-scale", type=float, default=60.0,
                       help="virtual seconds per wall second in wall mode")
    serve.add_argument("--max-time", type=float, default=14 * 24 * 3600.0,
                       help="virtual-time horizon of the service (seconds)")
    serve.add_argument("--tenant", action="append", default=None, metavar="NAME[:GPUS[:JOBS]]",
                       help="register a tenant with optional max outstanding GPUs "
                            "and max active jobs; repeatable. No --tenant = open "
                            "admission (tenants auto-register unlimited)")
    serve.add_argument("--trace-out", type=Path, default=None, metavar="PATH",
                       help="record admit/reject decisions and kernel events "
                            "for the service's lifetime; written as JSONL on "
                            "shutdown")

    submit = sub.add_parser(
        "submit",
        help="submit jobs to a running scheduler service",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=None)
    submit.add_argument("--tenant", required=True)
    submit.add_argument("--job-type", choices=["cv", "nlp", "any"], default="any")
    submit.add_argument("--workload", default="",
                        help="concrete Table-2 template name (overrides --job-type)")
    submit.add_argument("--replicas", type=int, default=1)
    submit.add_argument("--gpus-per-replica", type=int, default=1)
    submit.add_argument("--name", default="", help="client label echoed in decisions")
    submit.add_argument("--at", type=float, default=None, metavar="T",
                        help="explicit virtual arrival time (default: service clock)")
    submit.add_argument("--count", type=int, default=1,
                        help="submit a batch of N jobs driven by --arrival-profile")
    submit.add_argument("--arrival-profile", choices=["poisson", "diurnal", "bursty"],
                        default="poisson",
                        help="arrival process for --count > 1 batches")
    submit.add_argument("--arrival-interval", type=float, default=30.0,
                        help="mean seconds between batch arrivals")
    submit.add_argument("--arrival-seed", type=int, default=2021)
    submit.add_argument("--json", action="store_true",
                        help="print raw decision JSON, one object per line")

    svc_status = sub.add_parser(
        "service-status",
        help="query a running scheduler service",
    )
    svc_status.add_argument("--host", default="127.0.0.1")
    svc_status.add_argument("--port", type=int, default=None)
    svc_status.add_argument("--metrics", action="store_true",
                            help="also print decision-latency and goodput metrics")
    svc_status.add_argument("--drain", action="store_true",
                            help="close the submission stream, run the cluster dry "
                                 "and print the final result summary")
    svc_status.add_argument("--json", action="store_true",
                            help="emit raw JSON instead of tables")

    scheds = sub.add_parser("schedulers", help="list the scheduler registry (Table 3)")
    scheds.add_argument("--paper-only", action="store_true",
                        help="only the four schedulers of the paper's comparison")

    sub.add_parser("fault-profiles",
                   help="list the registered fault-injection profiles")

    figs = sub.add_parser("figures", help="regenerate the analytic figures (2, 3, 13, 14, 16)")
    figs.add_argument("--which", choices=["fig2", "fig3", "fig13", "fig14", "fig16", "all"],
                      default="all")

    return parser


def _add_partition_arguments(parser: argparse.ArgumentParser) -> None:
    """The hierarchical-scheduler flags shared by ``run``/``compare``/``sweep``.

    They only apply to the ``ONES-hier`` scheduler (a hint is raised when
    it is not part of the run); see :mod:`repro.core.partitioned`.
    """
    group = parser.add_argument_group(
        "hierarchical scheduling (ONES-hier)",
        "partition the cluster into fixed-size shards, one independent "
        "ONES search per shard plus a global reconciler",
    )
    group.add_argument("--partition-size", type=int, default=None, metavar="GPUS",
                       help="shard size in GPUs (default 64, the paper scale; "
                            "must tile the cluster in whole nodes)")
    group.add_argument("--partition-workers", type=int, default=None, metavar="N",
                       help="process-pool size for evolving multiple dirty "
                            "partitions concurrently (default: sequential)")


def _hier_options(args) -> Dict[str, object]:
    """The ``ONES-hier`` factory options implied by the partition flags."""
    options: Dict[str, object] = {}
    if getattr(args, "partition_size", None) is not None:
        options["partition_size"] = int(args.partition_size)
    if getattr(args, "partition_workers", None) is not None:
        options["parallel_workers"] = int(args.partition_workers)
    return options


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared execution-backend flags of ``compare`` and ``sweep``."""
    group = parser.add_argument_group(
        "execution backend",
        "where and how the grid's cells run; all backends produce "
        "bit-identical artifacts",
    )
    group.add_argument("--backend", choices=["serial", "process", "queue"],
                       default=None,
                       help="cell execution backend (default: serial, or process "
                            "when --workers > 1)")
    group.add_argument("--workers", type=int, default=1,
                       help="process pool size, or number of locally-spawned queue "
                            "workers (0 with --backend queue = external workers only)")
    group.add_argument("--queue-dir", type=Path, default=None,
                       help="durable queue directory for --backend queue (created "
                            "if missing; re-running against it resumes from its log)")
    group.add_argument("--lease-ttl", type=float, default=30.0, metavar="SECONDS",
                       help="queue lease TTL: how long after a worker stops "
                            "heartbeating its cell returns to pending (default 30)")
    group.add_argument("--output-dir", type=Path, default=None,
                       help="persist per-cell artifacts, sweep JSON and report here")
    group.add_argument("--resume", action="store_true",
                       help="reuse cell artifacts cached in --output-dir")
    group.add_argument("--cell-timeout", type=float, default=None, metavar="SECONDS",
                       help="kill any cell attempt exceeding this wall-clock budget")
    group.add_argument("--cell-retries", type=int, default=None, metavar="N",
                       help="retry a timed-out / failed cell up to N extra times "
                            "(default 0; default 2 with --backend queue, where "
                            "worker-death retries ride on the same budget)")
    group.add_argument("--cell-backoff", type=float, default=0.0, metavar="SECONDS",
                       help="base delay before a cell retry, doubled per extra "
                            "attempt (default 0: retry immediately)")


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--faults*`` flags of ``compare`` and ``sweep``."""
    group = parser.add_argument_group(
        "fault injection",
        "run every cell twice — clean and under a deterministic fault plan — "
        "and report recovery metrics vs the zero-fault twin",
    )
    group.add_argument("--faults", choices=sorted(available_profiles()) + ["none"],
                       default="none", metavar="PROFILE",
                       help="fault profile to inject (see `repro-ones fault-profiles`; "
                            "default: none)")
    group.add_argument("--faults-file", type=Path, default=None,
                       help="replay an explicit fault plan from JSON "
                            "(overrides --faults)")
    group.add_argument("--fault-seed", type=int, default=2021,
                       help="seed of the fault plan's own RNG (independent of the "
                            "workload seed)")
    group.add_argument("--fault-mtbf-hours", type=float, default=2.0,
                       help="mean time between failures per node/rack")
    group.add_argument("--fault-repair-minutes", type=float, default=15.0,
                       help="mean repair / maintenance-window duration")


def _fault_config(args) -> Optional[FaultConfig]:
    """The fault config implied by the CLI flags (``None`` when disabled)."""
    if getattr(args, "faults_file", None):
        return FaultConfig.from_plan_file(
            args.faults_file, seed=args.fault_seed
        )
    profile = getattr(args, "faults", "none")
    if not profile or profile == "none":
        return None
    return FaultConfig(
        profile=profile,
        seed=args.fault_seed,
        mtbf_hours=args.fault_mtbf_hours,
        repair_minutes=args.fault_repair_minutes,
    )


def _canonical_names(names: Optional[Sequence[str]]) -> List[str]:
    """CLI scheduler names (any case) -> canonical registry names."""
    if names is None:
        return list(paper_schedulers())
    return [resolve(name).name for name in names]


def _dedupe(values: Sequence) -> tuple:
    """Drop repeated CLI values, keeping first-seen order.

    Repeats are tolerated (``--capacities 16 16`` just runs 16 once)
    rather than rejected by the spec's duplicate validation.
    """
    return tuple(dict.fromkeys(values))


def _experiment_spec(args, capacities: Sequence[int], seeds: Sequence[int]) -> ExperimentSpec:
    job_counts = getattr(args, "traces", None) or [args.jobs]
    traces = tuple(
        TraceConfig(num_jobs=int(jobs), arrival_rate=1.0 / args.arrival_interval)
        for jobs in _dedupe(job_counts)
    )
    simulation = SimulationConfig(collect_profile=bool(getattr(args, "profile", False)))
    fault = _fault_config(args)
    schedulers = _dedupe(_canonical_names(args.schedulers))
    hier = _hier_options(args)
    sizes = getattr(args, "partition_sizes", None)
    if (hier or sizes) and "ONES-hier" not in schedulers:
        raise SystemExit(
            "--partition-size/--partition-workers/--partition-sizes configure the "
            "ONES-hier scheduler; add it with --schedulers ones-hier"
        )
    option_axis: tuple = ({},)
    if sizes:
        hier.pop("partition_size", None)  # the axis owns the shard size
        option_axis = tuple(
            {"ONES-hier": {"partition_size": int(size)}} for size in _dedupe(sizes)
        )
    return ExperimentSpec(
        schedulers=schedulers,
        capacities=_dedupe(capacities),
        seeds=_dedupe(seeds),
        traces=traces,
        simulation=simulation,
        scheduler_options={"ONES-hier": hier} if hier else {},
        # A faulted grid always carries the zero-fault twin of every
        # cell, so recovery metrics have a baseline to compare against.
        faults=(None, fault) if fault is not None else (None,),
        option_axis=option_axis,
    )


def _print_recovery_summary(sweep) -> None:
    """Recovery tables printed by faulted ``compare`` / ``sweep`` runs."""
    if len(sweep.spec.faults) < 2:
        return
    fault = sweep.spec.faults[1]
    print()
    print(f"Fault injection: {fault.describe()} "
          f"(plan key {fault.config_key()[:8]}, twin cells included)")
    degradation = sweep.fault_degradation("jct")
    print("JCT degradation vs zero-fault twin (1.0 = fully absorbed):")
    for name, ratio in sorted(degradation.items(), key=lambda kv: kv[1]):
        print(f"  {name:10s}: {ratio:5.2f}x")
    rows = [
        {
            "cell": row["cell"],
            "avg_jct": round(row["average_jct"], 1),
            "goodput": round(row["goodput"], 3),
            "evict": row["evictions"],
            "restart": row["restarts"],
            "lost_gpu_s": round(row["lost_gpu_seconds"], 1),
            "down_gpu_s": round(row["downtime_gpu_seconds"], 1),
            "incomplete": row["incomplete"],
        }
        for row in sweep.recovery_table()
    ]
    if rows:
        print()
        print("Recovery metrics (faulted cells)")
        print(format_table(rows))


def _print_profile_summary(sweep) -> None:
    """Per-cell phase table for ``--profile`` runs (headline phases only)."""
    rows = []
    for run in sweep.runs:
        profile = run.result.profile
        if not profile:
            continue
        rows.append({
            "cell": f"{run.spec.label()}/{run.spec.trace.num_jobs}j",
            "total_s": round(profile.get("total_seconds", 0.0), 3),
            "advance_s": round(profile.get("advance_seconds", 0.0), 3),
            "epoch_end_s": round(profile.get("handler_epoch_end_seconds", 0.0), 3),
            "gpr_refit_s": round(profile.get("gpr_refit_seconds", 0.0), 3),
        })
    if rows:
        print()
        print("Per-phase wall-clock (--profile)")
        print(format_table(rows))


def _make_runner(args) -> Runner:
    if args.resume and not args.output_dir:
        raise SystemExit("--resume requires --output-dir (the cell cache lives there)")
    cache_dir = args.output_dir / "cells" if args.output_dir else None
    backend = args.backend
    if backend is None:
        backend = "process" if args.workers and args.workers > 1 else "serial"
    if backend == "queue" and args.queue_dir is None:
        raise SystemExit("--backend queue requires --queue-dir (the durable work "
                         "log and leases live there)")
    if backend != "queue" and args.queue_dir is not None:
        raise SystemExit("--queue-dir is only meaningful with --backend queue")
    retries = args.cell_retries
    if retries is None:
        # The queue's retry budget also absorbs worker deaths (an expired
        # lease is charged as an attempt), so give it headroom by default.
        retries = 2 if backend == "queue" else 0
    workers: Optional[int] = args.workers
    if backend == "serial":
        workers = None
    return Runner(backend=backend, workers=workers,
                  cache_dir=cache_dir,
                  timeout_s=args.cell_timeout,
                  max_retries=retries,
                  retry_backoff_s=args.cell_backoff,
                  queue_dir=args.queue_dir,
                  lease_ttl=args.lease_ttl)


def _report_failed_cells(sweep) -> int:
    """Failure gate of ``compare``/``sweep``: dead cells => table + exit 1.

    A queue sweep never raises on a poisoned cell — it finishes the grid
    and hands back placeholders — so partial success must be loud here
    instead: print one row per dead cell and make the process exit
    non-zero.
    """
    dead = sweep.dead_runs()
    if not dead:
        return 0
    print()
    print(f"ERROR: {len(dead)} of {len(sweep.runs)} cells ended dead "
          "(retry budget exhausted); results above exclude them")
    print(format_table([
        {
            "cell": run.spec.label(),
            "cell_key": run.spec.cell_key(),
            "error": (run.error or "")[:70],
        }
        for run in dead
    ]))
    return 1


# --- sub-command implementations ---------------------------------------------------------------


def cmd_trace(args) -> int:
    if args.trace_file is not None:
        return _inspect_trace(args)
    if args.output is None:
        raise SystemExit("--output is required when generating a workload trace "
                         "(pass a JSONL file as positional argument to inspect "
                         "an execution trace instead)")
    config = TraceConfig(num_jobs=args.jobs, arrival_rate=1.0 / args.arrival_interval)
    trace = TraceGenerator(config, seed=args.seed).generate()
    save_trace(trace, args.output)
    stats = trace_statistics(trace)
    print(f"Wrote {len(trace)} jobs to {args.output}")
    print(format_table([{"statistic": k, "value": round(v, 2)} for k, v in stats.items()]))
    return 0


def _inspect_trace(args) -> int:
    """The ``repro-ones trace TRACE_FILE`` inspector: summary/tree/export."""
    from repro.obs.trace import (
        export_chrome_trace,
        filter_records,
        format_tree,
        load_jsonl,
        summarize,
        validate_trace_file,
    )

    errors = validate_trace_file(str(args.trace_file))
    if errors:
        print(f"SCHEMA ERRORS in {args.trace_file}:")
        for message in errors[:20]:
            print(f"  {message}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return 1
    meta, records = load_jsonl(str(args.trace_file))
    records = filter_records(records, cat=args.filter_cat, name=args.filter_name)
    summary = summarize(records)
    dropped = meta.get("dropped", 0)
    print(f"Trace {args.trace_file}: {summary['records']} records "
          f"({summary['spans']} spans, {summary['events']} events"
          f"{f', {dropped} dropped by ring buffer' if dropped else ''}), "
          f"t = [{summary['t_min']:.6g}s .. {summary['t_max']:.6g}s]"
          if summary["records"]
          else f"Trace {args.trace_file}: 0 records match")
    if summary["records"]:
        print(format_table([
            {"category": cat, "records": count}
            for cat, count in summary["by_cat"].items()
        ]))
        print(format_table([
            {"name": name, "records": count}
            for name, count in summary["by_name"].items()
        ]))
    if args.tree:
        print()
        for line in format_tree(records, max_records=args.limit):
            print(line)
    if args.chrome:
        export_chrome_trace(records, str(args.chrome))
        print(f"Chrome trace written to {args.chrome} "
              f"(open in Perfetto: https://ui.perfetto.dev)")
    return 0


def _install_cli_tracer() -> "object":
    """Install a process-wide recorder for a ``--trace-out`` run."""
    from repro.obs.trace import TraceRecorder, install_tracer

    return install_tracer(TraceRecorder())


def _export_cli_trace(path) -> None:
    from repro.obs.trace import uninstall_tracer

    tracer = uninstall_tracer()
    if tracer is not None:
        count = tracer.export_jsonl(str(path))
        suffix = f" ({tracer.dropped} dropped by ring buffer)" if tracer.dropped else ""
        print(f"trace: {count} records written to {path}{suffix}")


def cmd_run(args) -> int:
    trace_config = TraceConfig(num_jobs=args.jobs, arrival_rate=1.0 / args.arrival_interval)
    canonical = resolve(args.scheduler).name
    options = _hier_options(args)
    if options and canonical != "ONES-hier":
        raise SystemExit(
            "--partition-size/--partition-workers configure the ONES-hier "
            "scheduler; pass --scheduler ones-hier"
        )
    if args.incremental_scoring is not None:
        if canonical not in ("ONES", "ONES-hier"):
            raise SystemExit(
                "--incremental-scoring configures the ONES evolutionary "
                "search; pass --scheduler ones or ones-hier"
            )
        options["incremental_scoring"] = args.incremental_scoring == "on"
    scheduler = create_scheduler(canonical, args.seed, **options)
    if args.trace:
        trace = load_trace(args.trace)
    else:
        trace = TraceGenerator(trace_config, seed=args.seed).generate()
    simulation = SimulationConfig(collect_profile=bool(args.profile))
    if args.trace_out:
        _install_cli_tracer()
    result = simulate_trace(scheduler, trace, args.gpus, simulation)
    if args.trace_out:
        _export_cli_trace(args.trace_out)
    summary = result.summary()
    print(format_table([{"metric": k, "value": v} for k, v in summary.items()]))
    if args.profile and result.profile:
        print()
        print("Profile (wall-clock seconds per phase; events_* are counts):")
        print(format_table([
            {"phase": key, "value": f"{value:.6f}"}
            for key, value in sorted(result.profile.items())
        ]))
    if result.incomplete:
        print(f"WARNING: {len(result.incomplete)} jobs did not finish: {result.incomplete}")
    if args.csv:
        print(f"per-job metrics written to {export_result_csv(result, args.csv)}")
    if args.json:
        print(f"summary written to {export_result_json(result, args.json)}")
    return 0 if not result.incomplete else 1


def _run_grid(runner: Runner, spec: ExperimentSpec, resume: bool):
    """Execute the grid, turning a fatal cell failure into a clean exit.

    The serial/process backends raise on a cell that exhausts its retry
    budget; rather than a traceback, print what failed and exit non-zero
    (the queue backend instead finishes the grid with dead placeholders,
    reported by :func:`_report_failed_cells`).
    """
    try:
        return runner.run(spec, resume=resume)
    except (CellTimeoutError, RuntimeError) as exc:
        print(f"[runner] {runner.stats.describe()} ({runner.backend.name} backend)")
        print(f"ERROR: sweep aborted, a cell failed all its attempts: {exc}")
        raise SystemExit(1)


def cmd_compare(args) -> int:
    spec = _experiment_spec(args, capacities=[args.gpus], seeds=[args.seed])
    if args.trace_out:
        if args.backend not in (None, "serial") or args.workers > 1:
            raise SystemExit(
                "--trace-out records in-process: it requires the serial "
                "backend (drop --backend/--workers)"
            )
        _install_cli_tracer()
    runner = _make_runner(args)
    sweep = _run_grid(runner, spec, args.resume)
    if args.trace_out:
        _export_cli_trace(args.trace_out)
    print(f"[runner] {runner.stats.describe()} ({runner.backend.name} backend)")
    if sweep.dead_runs():
        if args.output_dir:
            _persist_sweep(sweep, args.output_dir)
        return _report_failed_cells(sweep)
    comparison = sweep.to_comparisons()[args.gpus]
    print("Average JCT (s)")
    print(ascii_bar_chart(comparison.averages("jct"), unit="s"))
    print()
    print("Average execution time (s)")
    print(ascii_bar_chart(comparison.averages("execution_time"), unit="s"))
    print()
    print("Average queuing time (s)")
    print(ascii_bar_chart(comparison.averages("queuing_time"), unit="s"))
    reference = "ONES" if "ONES" in comparison.results else None
    if reference and len(comparison.results) > 1:
        print()
        print(f"{reference} improvement over baselines (average JCT):")
        for name, value in comparison.improvements(reference).items():
            print(f"  vs {name:10s}: {100 * value:5.1f}%")
        ref_result = comparison.results[reference]
        baselines = [r for n, r in comparison.results.items() if n != reference]
        print()
        print("Wilcoxon tests (Table 4):")
        print(format_table([r.as_row() for r in significance_table(ref_result, baselines).values()]))
    if args.csv:
        print(f"per-job metrics written to {export_comparison_csv(comparison, args.csv)}")
    if args.json:
        print(f"summary written to {export_comparison_json(comparison, args.json)}")
    if args.report:
        from repro.experiments.report import write_comparison_report

        print(f"markdown report written to {write_comparison_report(comparison, args.report)}")
    _print_recovery_summary(sweep)
    if args.profile:
        _print_profile_summary(sweep)
    if args.output_dir:
        _persist_sweep(sweep, args.output_dir)
    return 0


def cmd_sweep(args) -> int:
    spec = _experiment_spec(args, capacities=args.capacities, seeds=args.seeds)
    runner = _make_runner(args)
    sweep = _run_grid(runner, spec, args.resume)
    print(f"[runner] {runner.stats.describe()} ({runner.backend.name} backend)")
    if sweep.dead_runs():
        if args.output_dir:
            _persist_sweep(sweep, args.output_dir)
        return _report_failed_cells(sweep)
    capacities = sorted(spec.capacities)
    averages = sweep.mean_metric_table("jct")
    series: Dict[str, List[float]] = {
        name: [round(by_cap[c], 1) for c in capacities] for name, by_cap in averages.items()
    }
    print("Average JCT (s) vs cluster capacity (Fig. 17)")
    print(ascii_series(capacities, series, x_label="# GPUs"))
    if len(spec.option_axis) > 1:
        # A --partition-sizes grid: break the hierarchical scheduler's
        # numbers out per shard size (the table above averages over them).
        rows = []
        for run in sweep.runs:
            size = run.spec.scheduler_options.get("partition_size")
            if run.spec.scheduler != "ONES-hier" or size is None:
                continue
            rows.append({
                "partition_size": int(size),
                "gpus": run.spec.num_gpus,
                "seed": run.spec.seed,
                "avg_jct": round(run.average_jct, 1),
            })
        if rows:
            print()
            print("ONES-hier average JCT per partition size")
            print(format_table(sorted(rows, key=lambda r: (r["partition_size"], r["gpus"], r["seed"]))))
    if "ONES" in spec.schedulers:
        relative = sweep.relative_to("ONES", "jct")
        rel_series = {
            name: [round(by_cap[c], 2) for c in capacities]
            for name, by_cap in relative.items()
        }
        print()
        print("Relative JCT, ONES = 1.0 (Fig. 18)")
        print(ascii_series(capacities, rel_series, x_label="# GPUs"))
    if args.json:
        if (len(spec.seeds) == 1 and len(spec.traces) == 1 and len(spec.faults) == 1
                and len(spec.option_axis) == 1):
            print(f"sweep written to {export_sweep_json(sweep.to_comparisons(), args.json)}")
        else:
            args.json.write_text(sweep.to_json() + "\n")
            print(f"sweep artifact written to {args.json}")
    _print_recovery_summary(sweep)
    if args.profile:
        _print_profile_summary(sweep)
    if args.output_dir:
        _persist_sweep(sweep, args.output_dir)
    return 0


def _persist_sweep(sweep, output_dir: Path) -> None:
    """Write the sweep artifact + Markdown report into ``output_dir``."""
    from repro.experiments.report import write_sweep_report

    output_dir.mkdir(parents=True, exist_ok=True)
    artifact_path = sweep.save(output_dir / f"sweep-{sweep.spec.sweep_key()}.json")
    report_path = write_sweep_report(sweep, output_dir / "sweep_report.md")
    print(f"sweep artifact written to {artifact_path}")
    print(f"sweep report written to {report_path}")
    print(f"per-cell artifacts cached under {output_dir / 'cells'}")


def cmd_worker(args) -> int:
    from repro.experiments.worker import run_worker

    run_worker(
        str(args.queue_dir),
        worker_id=args.worker_id,
        lease_ttl=args.ttl,
        poll_interval=args.poll,
        exit_when_done=args.exit_when_done,
        max_cells=args.max_cells,
        hold_s=args.hold_s,
        verbose=not args.quiet,
        skew_margin=args.skew_margin,
        trace_out=str(args.trace_out) if args.trace_out else None,
    )
    return 0


def cmd_queue_status(args) -> int:
    import json as _json

    from repro.experiments.queue import WorkQueue

    queue_dir = Path(args.queue_dir)
    if not (queue_dir / "queue.json").exists():
        raise SystemExit(f"{queue_dir} is not a queue directory (no queue.json)")
    queue = WorkQueue(queue_dir)
    status = queue.status()
    if args.json:
        print(_json.dumps(queue.as_json(), indent=2, sort_keys=True))
        return 0 if not status.dead else 1
    print(f"Queue {queue.path} — {status.total} cells "
          f"(lease TTL {queue.lease_ttl:.1f}s, retries {queue.policy.max_retries})")
    print(format_table([
        {"state": name, "count": count} for name, count in status.as_dict().items()
    ]))
    if args.cells:
        rows = queue.cell_rows(since=args.since)
        if rows:
            print(format_table(rows))
        elif args.since is not None:
            print(f"(no cells with events in the last {args.since:.0f}s)")
    return 0 if not status.dead else 1


def _parse_tenant_flag(raw: str):
    """``NAME[:GPUS[:JOBS]]`` → :class:`~repro.service.schemas.TenantQuota`."""
    from repro.service.schemas import TenantQuota

    parts = raw.split(":")
    if len(parts) > 3 or not parts[0]:
        raise SystemExit(f"bad --tenant {raw!r}: expected NAME[:GPUS[:JOBS]]")
    kwargs = {"tenant": parts[0]}
    if len(parts) > 1 and parts[1]:
        kwargs["max_gpus"] = int(parts[1])
    if len(parts) > 2 and parts[2]:
        kwargs["max_active"] = int(parts[2])
    return TenantQuota(**kwargs)


def cmd_serve(args) -> int:
    from repro.experiments.registry import resolve as _resolve
    from repro.service.http import DEFAULT_PORT, run_server
    from repro.service.schemas import ServiceConfig

    config = ServiceConfig(
        num_gpus=args.gpus,
        scheduler=_resolve(args.scheduler).name,
        seed=args.seed,
        mode=args.mode,
        time_scale=args.time_scale,
        max_time=args.max_time,
        tenants=tuple(_parse_tenant_flag(raw) for raw in (args.tenant or [])),
    )
    port = args.port if args.port is not None else DEFAULT_PORT
    if args.trace_out:
        _install_cli_tracer()
    try:
        return run_server(config, host=args.host, port=port)
    finally:
        if args.trace_out:
            _export_cli_trace(args.trace_out)


def cmd_submit(args) -> int:
    import json as _json

    from repro.service.http import DEFAULT_PORT, ServiceClient
    from repro.service.schemas import JobSubmission
    from repro.workload.arrivals import ArrivalConfig

    port = args.port if args.port is not None else DEFAULT_PORT
    base = dict(
        tenant=args.tenant,
        job_type=args.job_type,
        workload=args.workload,
        replicas=args.replicas,
        gpus_per_replica=args.gpus_per_replica,
        name=args.name,
    )
    if args.count < 1:
        raise SystemExit("--count must be >= 1")
    with ServiceClient(args.host, port) as client:
        if args.count == 1:
            submissions = [JobSubmission(arrival_time=args.at, **base)]
        else:
            offsets = ArrivalConfig(
                profile=args.arrival_profile,
                rate=1.0 / args.arrival_interval,
                seed=args.arrival_seed,
            ).generate(args.count)
            # Anchor the stream at --at, or at the service's current
            # virtual time so the arrival profile spreads out either way.
            start = args.at
            if start is None:
                start = float(client.status()["virtual_time"])
            submissions = [
                JobSubmission(
                    arrival_time=start + float(t),
                    **{**base, "name": f"{args.name or args.tenant}-{i:05d}"},
                )
                for i, t in enumerate(offsets)
            ]
        decisions = client.submit_batch(submissions)
    if args.json:
        for decision in decisions:
            print(_json.dumps(decision, sort_keys=True))
    else:
        print(format_table([
            {
                "job": d["job_id"] or "-",
                "status": d["status"],
                "gpus": len(d["gpu_ids"]),
                "t": round(d["virtual_time"], 1),
                "latency_ms": round(d["decision_latency_ms"], 2),
                "reason": d["reason"][:48],
            }
            for d in decisions
        ]))
    rejected = sum(1 for d in decisions if d["status"] == "rejected")
    return 0 if rejected == 0 else 1


def cmd_service_status(args) -> int:
    import json as _json

    from repro.service.http import DEFAULT_PORT, ServiceClient

    port = args.port if args.port is not None else DEFAULT_PORT
    with ServiceClient(args.host, port) as client:
        status = client.status()
        metrics = client.metrics() if args.metrics else None
        summary = client.drain() if args.drain else None
    if args.json:
        payload = {"status": status}
        if metrics is not None:
            payload["metrics"] = metrics
        if summary is not None:
            payload["result"] = summary
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"Service: {status['scheduler']} on {status['num_gpus']} GPUs "
          f"({status['mode']} time), virtual t={status['virtual_time']:.1f}s, "
          f"uptime {status['wall_uptime_s']:.1f}s")
    print(f"Submissions: {status['submissions']}  jobs: {status['jobs_total']} "
          f"({status['jobs_completed']} completed, queue depth "
          f"{status['queue_depth']}, {status['gpus_busy']} GPUs busy)")
    if status["tenants"]:
        print(format_table([
            {
                "tenant": name,
                "submitted": row["submitted"],
                "placed": row["placed"],
                "queued": row["queued"],
                "rejected": row["rejected"],
                "completed": row["completed"],
                "active": row["active_jobs"],
                "gpus_out": row["outstanding_gpus"],
                "p99_ms": round(row["decision_latency"]["p99_ms"], 2),
            }
            for name, row in status["tenants"].items()
        ]))
    if metrics is not None:
        overall = metrics["decision_latency"]
        print(f"Decision latency: p50 {overall['p50_ms']:.2f} ms, "
              f"p99 {overall['p99_ms']:.2f} ms over {int(overall['count'])} decisions "
              f"({metrics['submissions_per_second']:.1f} submissions/s)")
        scheduler_metrics = metrics.get("scheduler") or {}
        if scheduler_metrics:
            print("Scheduler counters (from the metrics registry):")
            print(format_table([
                {"metric": name, "value": value}
                for name, value in sorted(scheduler_metrics.items())
            ]))
    if summary is not None:
        print(f"Drained: {summary['completed_jobs']} completed / "
              f"{summary['incomplete_jobs']} incomplete, avg JCT "
              f"{summary['average_jct']:.1f}s, makespan {summary['makespan']:.1f}s")
    return 0


def cmd_schedulers(args) -> int:
    rows = capabilities_table()
    if args.paper_only:
        wanted = set(paper_schedulers())
        rows = [row for row in rows if row["Scheduler"] in wanted]
    print("Registered schedulers (Table 3 capabilities):")
    print(format_table(rows))
    return 0


def cmd_fault_profiles(args) -> int:
    print("Registered fault profiles (use with `compare`/`sweep --faults NAME`):")
    print(format_table(profile_table()))
    return 0


def cmd_figures(args) -> int:
    wanted = args.which

    if wanted in ("fig2", "all"):
        data = figures.figure2_throughput_scaling()
        print("Figure 2: throughput vs workers (images/s)")
        print(ascii_series(
            [int(w) for w in data["workers"]],
            {"fixed": [round(v) for v in data["fixed_batch"]],
             "elastic": [round(v) for v in data["elastic_batch"]]},
            x_label="# workers",
        ))
        print()
    if wanted in ("fig3", "all"):
        data = figures.figure3_convergence_vs_gpus(epochs=120)
        checkpoints = [29, 59, 119]
        print("Figure 3: accuracy vs epochs (fixed local batch 256)")
        print(ascii_series(
            [c + 1 for c in checkpoints],
            {k: [round(float(data[k][c]), 3) for c in checkpoints]
             for k in ("1_gpus", "2_gpus", "4_gpus", "8_gpus")},
            x_label="epoch",
        ))
        print()
    if wanted in ("fig13", "all"):
        data = figures.figure13_abrupt_scaling()
        switch = int(data["switch_epoch"][0])
        print(f"Figure 13: abrupt 256->4096 scaling at epoch {switch}: "
              f"loss {data['scaled_batch'][switch - 1]:.2f} -> {data['scaled_batch'][switch]:.2f}")
        print()
    if wanted in ("fig14", "all"):
        data = figures.figure14_gradual_scaling()
        print(f"Figure 14: gradual scaling keeps the loss monotone "
              f"(largest epoch-to-epoch increase: "
              f"{max(float(b - a) for a, b in zip(data['loss'], data['loss'][1:])):.4f})")
        print()
    if wanted in ("fig16", "all"):
        table = figures.figure16_overheads()
        print("Figure 16: re-configuration overhead (seconds)")
        print(format_table([
            {"model": name, "elastic": round(row["elastic"], 2),
             "checkpoint": round(row["checkpoint"], 2)}
            for name, row in table.items()
        ]))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the console script and ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "trace": cmd_trace,
        "run": cmd_run,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "worker": cmd_worker,
        "queue-status": cmd_queue_status,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "service-status": cmd_service_status,
        "schedulers": cmd_schedulers,
        "fault-profiles": cmd_fault_profiles,
        "figures": cmd_figures,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
