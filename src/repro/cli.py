"""Command-line interface for the ONES reproduction.

Installed as the ``repro-ones`` console script (also runnable as
``python -m repro.cli``).  Sub-commands:

``trace``
    Generate a Table-2 workload trace and write it to JSON.
``run``
    Replay a trace (or a freshly generated one) under one scheduler and
    print / export the resulting metrics.
``compare``
    Run the Fig. 15 comparison (ONES vs DRL / Tiresias / Optimus) on a
    shared trace and print averages, improvements and Wilcoxon tests.
``sweep``
    Run the Fig. 17/18 scalability sweep over several cluster sizes.
``figures``
    Regenerate the analytic figures (2, 3, 13, 14, 16) without running
    cluster simulations.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.export import (
    export_comparison_csv,
    export_comparison_json,
    export_result_csv,
    export_result_json,
    export_sweep_json,
)
from repro.analysis.reporting import ascii_bar_chart, ascii_series, format_table
from repro.analysis.stats import significance_table
from repro.baselines.drl import DRLScheduler
from repro.baselines.fifo import FIFOScheduler
from repro.baselines.gandiva import GandivaScheduler
from repro.baselines.optimus import OptimusScheduler
from repro.baselines.srtf import SRTFScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    generate_trace,
    run_comparison,
    run_scalability_sweep,
    run_single,
)
from repro.workload.replay import load_trace, save_trace, trace_statistics
from repro.workload.trace import TraceConfig, TraceGenerator

#: CLI name → scheduler factory.
SCHEDULERS = {
    "ones": lambda seed: ONESScheduler(seed=seed),
    "drl": lambda seed: DRLScheduler(seed=seed),
    "tiresias": lambda seed: TiresiasScheduler(),
    "optimus": lambda seed: OptimusScheduler(),
    "gandiva": lambda seed: GandivaScheduler(),
    "fifo": lambda seed: FIFOScheduler(),
    "srtf": lambda seed: SRTFScheduler(),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ones",
        description="Reproduction of ONES (SC'21): online evolutionary batch size orchestration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="generate a workload trace")
    trace.add_argument("--jobs", type=int, default=50)
    trace.add_argument("--arrival-interval", type=float, default=30.0,
                       help="mean seconds between arrivals")
    trace.add_argument("--seed", type=int, default=2021)
    trace.add_argument("--output", type=Path, required=True, help="JSON file to write")

    run = sub.add_parser("run", help="run one scheduler over a trace")
    run.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="ones")
    run.add_argument("--gpus", type=int, default=64, help="cluster size (multiple of 4)")
    run.add_argument("--jobs", type=int, default=50, help="trace size when generating")
    run.add_argument("--arrival-interval", type=float, default=30.0)
    run.add_argument("--trace", type=Path, default=None, help="replay an existing trace JSON")
    run.add_argument("--seed", type=int, default=2021)
    run.add_argument("--csv", type=Path, default=None, help="export per-job metrics to CSV")
    run.add_argument("--json", type=Path, default=None, help="export run summary to JSON")

    compare = sub.add_parser("compare", help="compare ONES against the paper baselines")
    compare.add_argument("--gpus", type=int, default=64)
    compare.add_argument("--jobs", type=int, default=50)
    compare.add_argument("--arrival-interval", type=float, default=30.0)
    compare.add_argument("--seed", type=int, default=2021)
    compare.add_argument("--csv", type=Path, default=None)
    compare.add_argument("--json", type=Path, default=None)
    compare.add_argument("--report", type=Path, default=None,
                         help="write a Markdown report of the comparison")

    sweep = sub.add_parser("sweep", help="scalability sweep over cluster capacities")
    sweep.add_argument("--capacities", type=int, nargs="+", default=[16, 32, 48, 64])
    sweep.add_argument("--jobs", type=int, default=50)
    sweep.add_argument("--arrival-interval", type=float, default=30.0)
    sweep.add_argument("--seed", type=int, default=2021)
    sweep.add_argument("--json", type=Path, default=None)

    figs = sub.add_parser("figures", help="regenerate the analytic figures (2, 3, 13, 14, 16)")
    figs.add_argument("--which", choices=["fig2", "fig3", "fig13", "fig14", "fig16", "all"],
                      default="all")

    return parser


def _experiment_config(args) -> ExperimentConfig:
    return ExperimentConfig(
        num_gpus=args.gpus,
        trace=TraceConfig(num_jobs=args.jobs, arrival_rate=1.0 / args.arrival_interval),
        seed=args.seed,
    )


# --- sub-command implementations ---------------------------------------------------------------


def cmd_trace(args) -> int:
    config = TraceConfig(num_jobs=args.jobs, arrival_rate=1.0 / args.arrival_interval)
    trace = TraceGenerator(config, seed=args.seed).generate()
    save_trace(trace, args.output)
    stats = trace_statistics(trace)
    print(f"Wrote {len(trace)} jobs to {args.output}")
    print(format_table([{"statistic": k, "value": round(v, 2)} for k, v in stats.items()]))
    return 0


def cmd_run(args) -> int:
    config = _experiment_config(args)
    trace = load_trace(args.trace) if args.trace else generate_trace(config)
    scheduler = SCHEDULERS[args.scheduler](args.seed)
    result = run_single(scheduler, trace, config)
    summary = result.summary()
    print(format_table([{"metric": k, "value": v} for k, v in summary.items()]))
    if result.incomplete:
        print(f"WARNING: {len(result.incomplete)} jobs did not finish: {result.incomplete}")
    if args.csv:
        print(f"per-job metrics written to {export_result_csv(result, args.csv)}")
    if args.json:
        print(f"summary written to {export_result_json(result, args.json)}")
    return 0 if not result.incomplete else 1


def cmd_compare(args) -> int:
    config = _experiment_config(args)
    comparison = run_comparison(config)
    print("Average JCT (s)")
    print(ascii_bar_chart(comparison.averages("jct"), unit="s"))
    print()
    print("Average execution time (s)")
    print(ascii_bar_chart(comparison.averages("execution_time"), unit="s"))
    print()
    print("Average queuing time (s)")
    print(ascii_bar_chart(comparison.averages("queuing_time"), unit="s"))
    print()
    print("ONES improvement over baselines (average JCT):")
    for name, value in comparison.improvements("ONES").items():
        print(f"  vs {name:10s}: {100 * value:5.1f}%")
    ones = comparison.results["ONES"]
    baselines = [r for n, r in comparison.results.items() if n != "ONES"]
    print()
    print("Wilcoxon tests (Table 4):")
    print(format_table([r.as_row() for r in significance_table(ones, baselines).values()]))
    if args.csv:
        print(f"per-job metrics written to {export_comparison_csv(comparison, args.csv)}")
    if args.json:
        print(f"summary written to {export_comparison_json(comparison, args.json)}")
    if args.report:
        from repro.experiments.report import write_comparison_report

        print(f"markdown report written to {write_comparison_report(comparison, args.report)}")
    return 0


def cmd_sweep(args) -> int:
    base = ExperimentConfig(
        num_gpus=max(args.capacities),
        trace=TraceConfig(num_jobs=args.jobs, arrival_rate=1.0 / args.arrival_interval),
        seed=args.seed,
    )
    sweep = run_scalability_sweep(capacities=args.capacities, base_config=base)
    capacities = sorted(sweep)
    series: Dict[str, List[float]] = {}
    for capacity in capacities:
        for name, value in sweep[capacity].averages("jct").items():
            series.setdefault(name, []).append(round(value, 1))
    print("Average JCT (s) vs cluster capacity (Fig. 17)")
    print(ascii_series(capacities, series, x_label="# GPUs"))
    relative: Dict[str, List[float]] = {}
    for capacity in capacities:
        for name, value in sweep[capacity].relative_jct("ONES").items():
            relative.setdefault(name, []).append(round(value, 2))
    print()
    print("Relative JCT, ONES = 1.0 (Fig. 18)")
    print(ascii_series(capacities, relative, x_label="# GPUs"))
    if args.json:
        print(f"sweep written to {export_sweep_json(sweep, args.json)}")
    return 0


def cmd_figures(args) -> int:
    wanted = args.which

    if wanted in ("fig2", "all"):
        data = figures.figure2_throughput_scaling()
        print("Figure 2: throughput vs workers (images/s)")
        print(ascii_series(
            [int(w) for w in data["workers"]],
            {"fixed": [round(v) for v in data["fixed_batch"]],
             "elastic": [round(v) for v in data["elastic_batch"]]},
            x_label="# workers",
        ))
        print()
    if wanted in ("fig3", "all"):
        data = figures.figure3_convergence_vs_gpus(epochs=120)
        checkpoints = [29, 59, 119]
        print("Figure 3: accuracy vs epochs (fixed local batch 256)")
        print(ascii_series(
            [c + 1 for c in checkpoints],
            {k: [round(float(data[k][c]), 3) for c in checkpoints]
             for k in ("1_gpus", "2_gpus", "4_gpus", "8_gpus")},
            x_label="epoch",
        ))
        print()
    if wanted in ("fig13", "all"):
        data = figures.figure13_abrupt_scaling()
        switch = int(data["switch_epoch"][0])
        print(f"Figure 13: abrupt 256->4096 scaling at epoch {switch}: "
              f"loss {data['scaled_batch'][switch - 1]:.2f} -> {data['scaled_batch'][switch]:.2f}")
        print()
    if wanted in ("fig14", "all"):
        data = figures.figure14_gradual_scaling()
        print(f"Figure 14: gradual scaling keeps the loss monotone "
              f"(largest epoch-to-epoch increase: "
              f"{max(float(b - a) for a, b in zip(data['loss'], data['loss'][1:])):.4f})")
        print()
    if wanted in ("fig16", "all"):
        table = figures.figure16_overheads()
        print("Figure 16: re-configuration overhead (seconds)")
        print(format_table([
            {"model": name, "elastic": round(row["elastic"], 2),
             "checkpoint": round(row["checkpoint"], 2)}
            for name, row in table.items()
        ]))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the console script and ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "trace": cmd_trace,
        "run": cmd_run,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "figures": cmd_figures,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
