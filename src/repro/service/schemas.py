"""Typed request/response schemas of the scheduler service.

The submission contract follows the shape of typed cluster job APIs
(job type + replicas + resources + tenant), adapted to the Table-2
workload catalogue: a :class:`JobSubmission` names either a concrete
catalogue workload or just a job-type family (the service then draws a
template deterministically), how many replicas it wants, and which
tenant it bills to.  Everything is a plain dataclass with an exact JSON
round-trip — like :class:`~repro.experiments.spec.RunSpec`, a schema
object can cross a socket, live in a log, and be rebuilt bit-identically.

Validation happens *at the boundary*: :meth:`JobSubmission.validate`
raises :class:`SchemaValidationError` naming the offending field before
the submission touches the engine, and the engine's admission layer
raises :class:`AdmissionError` for policy rejections (unknown tenant,
oversubscribed quota).  Both are turned into ``status="rejected"``
:class:`PlacementDecision` responses by the service, never tracebacks.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.utils.validation import check_positive, check_positive_int

#: Decision latency SLO statuses a submission can resolve to.
DECISION_STATUSES = ("placed", "queued", "rejected")


class SchemaValidationError(ValueError):
    """A submission failed boundary validation; ``field`` names the culprit."""

    def __init__(self, field_name: str, message: str) -> None:
        super().__init__(f"{field_name}: {message}")
        self.field = field_name


class AdmissionError(ValueError):
    """A structurally valid submission was rejected by admission policy."""


class JobType(str, enum.Enum):
    """Coarse job families a submission may request instead of a workload.

    ``CV`` / ``NLP`` map onto the Table-2 catalogue's task families;
    ``ANY`` lets the service draw from the whole catalogue.
    """

    CV = "cv"
    NLP = "nlp"
    ANY = "any"


@dataclass(frozen=True)
class JobSubmission:
    """One tenant's request to run a training job.

    Parameters
    ----------
    tenant:
        The submitting tenant (must be registered with the service).
    job_type:
        Job family used to draw a workload template when ``workload`` is
        empty.
    replicas:
        Requested data-parallel replicas.
    gpus_per_replica:
        GPUs per replica; total GPU demand is ``replicas * gpus_per_replica``.
    workload:
        Optional concrete Table-2 template name (e.g.
        ``cifar10-resnet18-20k``); overrides ``job_type``.
    name:
        Free-form client label echoed back in decisions.
    arrival_time:
        Optional explicit *virtual* arrival timestamp (trace replay);
        ``None`` lets the service assign one (now in virtual mode, the
        scaled wall clock in wall mode).
    spec:
        Optional full job-spec payload (the
        :func:`~repro.workload.replay.jobspec_to_dict` layout).  This is
        the trusted replay path: it bypasses template drawing so a
        recorded trace replays through the service bit-identically.
    """

    tenant: str
    job_type: str = JobType.ANY.value
    replicas: int = 1
    gpus_per_replica: int = 1
    workload: str = ""
    name: str = ""
    arrival_time: Optional[float] = None
    spec: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "job_type", str(self.job_type).lower())
        if self.spec is not None:
            object.__setattr__(self, "spec", dict(self.spec))

    @property
    def gpu_demand(self) -> int:
        """Total requested GPUs (``replicas * gpus_per_replica``)."""
        return int(self.replicas) * int(self.gpus_per_replica)

    # -- boundary validation ------------------------------------------------------------

    def validate(self, num_gpus: int, workload_names: Tuple[str, ...]) -> None:
        """Check every field against the service's cluster and catalogue.

        Raises :class:`SchemaValidationError` on the first violation; a
        submission that passes is safe to hand to the engine (admission
        policy — tenant existence, quotas — is checked separately).
        """
        if not isinstance(self.tenant, str) or not self.tenant.strip():
            raise SchemaValidationError("tenant", "must be a non-empty string")
        try:
            JobType(self.job_type)
        except ValueError:
            raise SchemaValidationError(
                "job_type",
                f"unknown job type {self.job_type!r}; expected one of "
                f"{[t.value for t in JobType]}",
            ) from None
        if not isinstance(self.replicas, int) or self.replicas < 1:
            raise SchemaValidationError("replicas", "must be a positive integer")
        if not isinstance(self.gpus_per_replica, int) or self.gpus_per_replica < 1:
            raise SchemaValidationError("gpus_per_replica", "must be a positive integer")
        if self.gpu_demand > num_gpus:
            raise SchemaValidationError(
                "replicas",
                f"GPU demand {self.gpu_demand} exceeds the cluster size {num_gpus}",
            )
        if self.workload and self.workload not in workload_names:
            raise SchemaValidationError(
                "workload", f"unknown workload template {self.workload!r}"
            )
        if self.arrival_time is not None and self.arrival_time < 0:
            raise SchemaValidationError("arrival_time", "must be >= 0")

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        payload: Dict[str, object] = {
            "tenant": str(self.tenant),
            "job_type": str(self.job_type),
            "replicas": int(self.replicas),
            "gpus_per_replica": int(self.gpus_per_replica),
            "workload": str(self.workload),
            "name": str(self.name),
        }
        if self.arrival_time is not None:
            payload["arrival_time"] = float(self.arrival_time)
        if self.spec is not None:
            payload["spec"] = dict(self.spec)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "JobSubmission":
        """Rebuild a :class:`JobSubmission` from :meth:`to_dict` output."""
        arrival = payload.get("arrival_time")
        return cls(
            tenant=str(payload.get("tenant", "")),
            job_type=str(payload.get("job_type", JobType.ANY.value)),
            replicas=int(payload.get("replicas", 1)),
            gpus_per_replica=int(payload.get("gpus_per_replica", 1)),
            workload=str(payload.get("workload", "")),
            name=str(payload.get("name", "")),
            arrival_time=float(arrival) if arrival is not None else None,
            spec=payload.get("spec"),
        )


@dataclass(frozen=True)
class PlacementDecision:
    """The service's answer to one submission.

    ``status`` is one of ``placed`` (GPUs assigned immediately),
    ``queued`` (admitted, waiting for capacity) or ``rejected``
    (validation / admission failure, ``reason`` says why).
    ``decision_latency_ms`` is the *wall-clock* time the scheduler took
    to decide — the quantity the service's SLOs are stated over.
    """

    submission_id: str
    job_id: str
    tenant: str
    status: str
    virtual_time: float
    decision_latency_ms: float = 0.0
    gpu_ids: Tuple[int, ...] = ()
    local_batches: Tuple[int, ...] = ()
    queue_depth: int = 0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.status not in DECISION_STATUSES:
            raise ValueError(
                f"status must be one of {DECISION_STATUSES}, got {self.status!r}"
            )
        object.__setattr__(self, "gpu_ids", tuple(int(g) for g in self.gpu_ids))
        object.__setattr__(
            self, "local_batches", tuple(int(b) for b in self.local_batches)
        )

    @property
    def num_gpus(self) -> int:
        """GPUs granted by this decision (0 when queued / rejected)."""
        return len(self.gpu_ids)

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {
            "submission_id": str(self.submission_id),
            "job_id": str(self.job_id),
            "tenant": str(self.tenant),
            "status": str(self.status),
            "virtual_time": float(self.virtual_time),
            "decision_latency_ms": float(self.decision_latency_ms),
            "gpu_ids": [int(g) for g in self.gpu_ids],
            "local_batches": [int(b) for b in self.local_batches],
            "queue_depth": int(self.queue_depth),
            "reason": str(self.reason),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PlacementDecision":
        """Rebuild a :class:`PlacementDecision` from :meth:`to_dict` output."""
        return cls(
            submission_id=str(payload["submission_id"]),
            job_id=str(payload["job_id"]),
            tenant=str(payload["tenant"]),
            status=str(payload["status"]),
            virtual_time=float(payload["virtual_time"]),
            decision_latency_ms=float(payload.get("decision_latency_ms", 0.0)),
            gpu_ids=tuple(payload.get("gpu_ids", ())),
            local_batches=tuple(payload.get("local_batches", ())),
            queue_depth=int(payload.get("queue_depth", 0)),
            reason=str(payload.get("reason", "")),
        )


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits of one tenant.

    ``max_gpus`` caps the tenant's *outstanding requested* GPU demand
    (demand of admitted-but-incomplete jobs); ``max_active`` caps its
    concurrent incomplete jobs.  ``weight`` drives weighted-share
    admission: when any registered tenant has a non-default weight and
    the cluster is contended, each tenant's concurrent jobs are capped
    at its proportional share ``ceil((active + 1) * w_i / sum(w))``
    (floored at one job).  With every weight at the default 1.0 the
    policy is inert and admission behaves as if weights did not exist.
    """

    tenant: str
    max_gpus: int = 1 << 30
    max_active: int = 1 << 30
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenant or not str(self.tenant).strip():
            raise ValueError("tenant must be a non-empty string")
        check_positive_int(self.max_gpus, "max_gpus")
        check_positive_int(self.max_active, "max_active")
        check_positive(self.weight, "weight")

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {
            "tenant": str(self.tenant),
            "max_gpus": int(self.max_gpus),
            "max_active": int(self.max_active),
            "weight": float(self.weight),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TenantQuota":
        """Rebuild a :class:`TenantQuota` from :meth:`to_dict` output."""
        return cls(
            tenant=str(payload["tenant"]),
            max_gpus=int(payload.get("max_gpus", 1 << 30)),
            max_active=int(payload.get("max_active", 1 << 30)),
            weight=float(payload.get("weight", 1.0)),
        )


@dataclass(frozen=True)
class ServiceConfig:
    """Everything needed to stand up one scheduler service.

    ``mode="virtual"`` advances simulated time only when events are
    processed — submissions drive the clock, and a replayed trace is
    bit-identical to an offline run.  ``mode="wall"`` maps wall-clock
    time onto virtual time at ``time_scale`` virtual seconds per wall
    second, so the simulator "lives" in real time.
    """

    num_gpus: int = 64
    scheduler: str = "ONES"
    seed: int = 2021
    mode: str = "virtual"
    time_scale: float = 60.0
    max_time: float = 14 * 24 * 3600.0
    max_events: int = 10_000_000
    convergence_jitter: bool = True
    tenants: Tuple[TenantQuota, ...] = field(default_factory=tuple)
    scheduler_options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int(self.num_gpus, "num_gpus")
        if not self.scheduler or not str(self.scheduler).strip():
            raise ValueError("scheduler must be a non-empty registry name")
        check_positive_int(self.seed, "seed")
        if self.mode not in ("virtual", "wall"):
            raise ValueError(f"mode must be 'virtual' or 'wall', got {self.mode!r}")
        check_positive(self.time_scale, "time_scale")
        check_positive(self.max_time, "max_time")
        check_positive_int(self.max_events, "max_events")
        object.__setattr__(self, "tenants", tuple(self.tenants))
        object.__setattr__(self, "scheduler_options", dict(self.scheduler_options))
        names = [quota.tenant for quota in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenants contains duplicate names")

    def quota_of(self, tenant: str) -> Optional[TenantQuota]:
        """The quota registered for ``tenant`` (``None`` when unknown)."""
        for quota in self.tenants:
            if quota.tenant == tenant:
                return quota
        return None

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {
            "num_gpus": int(self.num_gpus),
            "scheduler": str(self.scheduler),
            "seed": int(self.seed),
            "mode": str(self.mode),
            "time_scale": float(self.time_scale),
            "max_time": float(self.max_time),
            "max_events": int(self.max_events),
            "convergence_jitter": bool(self.convergence_jitter),
            "tenants": [quota.to_dict() for quota in self.tenants],
            "scheduler_options": dict(self.scheduler_options),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ServiceConfig":
        """Rebuild a :class:`ServiceConfig` from :meth:`to_dict` output."""
        return cls(
            num_gpus=int(payload.get("num_gpus", 64)),
            scheduler=str(payload.get("scheduler", "ONES")),
            seed=int(payload.get("seed", 2021)),
            mode=str(payload.get("mode", "virtual")),
            time_scale=float(payload.get("time_scale", 60.0)),
            max_time=float(payload.get("max_time", 14 * 24 * 3600.0)),
            max_events=int(payload.get("max_events", 10_000_000)),
            convergence_jitter=bool(payload.get("convergence_jitter", True)),
            tenants=tuple(
                TenantQuota.from_dict(entry) for entry in payload.get("tenants", ())
            ),
            scheduler_options=dict(payload.get("scheduler_options", {})),
        )

    def config_key(self) -> str:
        """Content hash of the service configuration (provenance key)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
