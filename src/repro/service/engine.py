"""The scheduler service engine: a live simulator behind a submission API.

:class:`SchedulerService` wraps an *online* :class:`ClusterSimulator`
(kernel stepped incrementally, arrivals injected mid-run) with the
boundary layers a service needs:

* schema validation and per-tenant quota admission
  (:mod:`repro.service.schemas`),
* deterministic workload instantiation — a submission names a job type
  or a Table-2 template, the engine draws the spec with the service's
  seeded RNG, so a given submission sequence always produces the same
  jobs,
* decision-latency accounting: every kernel step is timed, and the step
  that processes a submission's ``JOB_ARRIVAL`` *is* that submission's
  decision latency — the quantity the service's SLOs are stated over,
* per-tenant telemetry (goodput, queue depth, decision stream) published
  through a :class:`~repro.service.streams.StreamHub`.

Time modes.  In ``virtual`` mode the clock only moves when events are
processed: submissions arrive back-to-back at the current virtual time
(or at explicit timestamps during trace replay), which is what makes a
replayed trace bit-identical to an offline
:meth:`~repro.sim.simulator.ClusterSimulator.run`.  In ``wall`` mode the
engine maps elapsed wall-clock onto virtual seconds at ``time_scale``×,
so the simulated cluster "lives" alongside its clients.

The engine itself is synchronous and single-threaded; the asyncio
transport (:mod:`repro.service.http`) serialises calls into it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.events import Event, EventKind
from repro.cluster.topology import make_longhorn_cluster
from repro.experiments.registry import create_scheduler
from repro.jobs.job import JobSpec
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.trace import active_tracer
from repro.service.schemas import (
    AdmissionError,
    JobSubmission,
    JobType,
    PlacementDecision,
    SchemaValidationError,
    ServiceConfig,
    TenantQuota,
)
from repro.service.streams import StreamHub
from repro.sim.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.workload.replay import jobspec_from_dict
from repro.workload.tasks import TaskFamily, build_workload_catalog, make_job_spec


@dataclass
class TenantState:
    """Live accounting of one tenant."""

    quota: TenantQuota
    submitted: int = 0
    rejected: int = 0
    placed: int = 0
    queued: int = 0
    completed: int = 0
    active_jobs: List[str] = field(default_factory=list)
    outstanding_gpus: int = 0
    #: Σ attained service (GPU-agnostic samples-side seconds) of completed jobs.
    service_seconds: float = 0.0
    #: Σ JCT over completed jobs (for mean-JCT-per-tenant telemetry).
    jct_seconds: float = 0.0
    decision_latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def as_dict(self) -> Dict[str, object]:
        """Telemetry snapshot of this tenant."""
        return {
            "tenant": self.quota.tenant,
            "weight": float(self.quota.weight),
            "submitted": int(self.submitted),
            "rejected": int(self.rejected),
            "placed": int(self.placed),
            "queued": int(self.queued),
            "completed": int(self.completed),
            "active_jobs": int(len(self.active_jobs)),
            "outstanding_gpus": int(self.outstanding_gpus),
            "goodput_service_seconds": float(self.service_seconds),
            "mean_jct": (
                self.jct_seconds / self.completed if self.completed else 0.0
            ),
            "decision_latency": self.decision_latency.as_dict(),
        }


class SchedulerService:
    """Online job-submission front end over a live :class:`ClusterSimulator`."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        stream_capacity: int = 4096,
    ) -> None:
        self.config = config
        self.topology = make_longhorn_cluster(config.num_gpus)
        self.scheduler = create_scheduler(
            config.scheduler, seed=config.seed, **dict(config.scheduler_options)
        )
        self.sim = ClusterSimulator(
            self.topology,
            self.scheduler,
            trace=[],
            config=SimulationConfig(
                max_time=config.max_time, max_events=config.max_events
            ),
            online=True,
        )
        self.sim.start()
        self.streams = StreamHub(capacity=stream_capacity)
        self.catalog = build_workload_catalog()
        self._catalog_by_name = {t.name: t for t in self.catalog}
        self._catalog_names: Tuple[str, ...] = tuple(self._catalog_by_name)
        self._by_family = {
            JobType.CV.value: [t for t in self.catalog if t.family is TaskFamily.CV],
            JobType.NLP.value: [t for t in self.catalog if t.family is TaskFamily.NLP],
            JobType.ANY.value: list(self.catalog),
        }
        # One seeded generator drives template draws and convergence
        # jitter in submission order: same submissions in, same jobs out.
        self._rng = np.random.Generator(np.random.PCG64(int(config.seed)))
        self.tenants: Dict[str, TenantState] = {
            quota.tenant: TenantState(quota=quota) for quota in config.tenants
        }
        self._open_admission = not config.tenants
        # Weighted-share admission only activates when some registered
        # tenant carries a non-default weight; with all weights at 1.0
        # the policy is inert and admission behaves exactly as before.
        self._weighted_admission = any(
            float(quota.weight) != 1.0 for quota in config.tenants
        )
        self._submission_counter = 0
        self._tenant_of_job: Dict[str, str] = {}
        self._completed_seen: set = set()
        self.decision_latency = LatencyHistogram()
        self.step_latency: Dict[str, LatencyHistogram] = {}
        self._started_wall = perf_counter()
        self._decision_wall_total = 0.0
        self.draining = False

    # -- time ---------------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time of the live simulator."""
        return self.sim.now

    def wall_virtual_target(self) -> float:
        """Where the virtual clock *should* be in wall mode (capped at the horizon)."""
        elapsed = perf_counter() - self._started_wall
        return min(elapsed * self.config.time_scale, self.config.max_time)

    def _assign_arrival(self, submission: JobSubmission, last_arrival: float) -> float:
        if submission.arrival_time is not None:
            return max(float(submission.arrival_time), self.sim.kernel.now, last_arrival)
        if self.config.mode == "wall":
            return max(self.wall_virtual_target(), self.sim.kernel.now, last_arrival)
        return max(self.sim.kernel.now, last_arrival)

    # -- kernel stepping (all steps are timed) ------------------------------------------

    def _timed_step(self) -> Optional[Event]:
        start = perf_counter()
        event = self.sim.kernel.step()
        if event is None:
            return None
        elapsed = perf_counter() - start
        kind_name = event.kind.name
        hist = self.step_latency.get(kind_name)
        if hist is None:
            hist = LatencyHistogram()
            self.step_latency[kind_name] = hist
        hist.record(elapsed)
        self._after_step(event)
        return event

    def _after_step(self, event: Event) -> None:
        # Completions only happen inside the completing job's own
        # EPOCH_END, so a constant-time check after that kind suffices.
        if event.kind is not EventKind.EPOCH_END or event.job_id is None:
            return
        job = self.sim.jobs.get(event.job_id)
        if job is None or not job.is_completed:
            return
        if event.job_id in self._completed_seen:
            return
        self._completed_seen.add(event.job_id)
        tenant_name = self._tenant_of_job.get(event.job_id)
        state = self.tenants.get(tenant_name) if tenant_name else None
        metrics = job.completion_metrics()
        if state is not None:
            state.completed += 1
            if event.job_id in state.active_jobs:
                state.active_jobs.remove(event.job_id)
            state.outstanding_gpus = max(
                0, state.outstanding_gpus - int(job.spec.requested_gpus)
            )
            state.service_seconds += float(metrics.get("attained_service", 0.0))
            state.jct_seconds += float(metrics.get("jct", 0.0))
        self.streams.publish(
            tenant_name or "unknown",
            {
                "type": "completion",
                "job_id": event.job_id,
                "tenant": tenant_name or "unknown",
                "virtual_time": float(self.sim.now),
                "jct": float(metrics.get("jct", 0.0)),
                "queuing_time": float(metrics.get("queuing_time", 0.0)),
            },
        )

    def advance_to(self, to_time: float) -> int:
        """Process every event strictly before ``to_time``; returns the count."""
        processed = 0
        target = min(float(to_time), self.config.max_time + 1.0)
        while True:
            queue = self.sim.kernel.events
            if not queue or queue.peek().time >= target:
                break
            if self._timed_step() is None:
                break
            processed += 1
        return processed

    # -- submission path ----------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> PlacementDecision:
        """Validate, admit, inject and decide one submission.

        Never raises for a bad submission — validation and admission
        failures come back as ``status="rejected"`` decisions so a
        remote client always gets a structured answer.
        """
        self._submission_counter += 1
        submission_id = f"sub-{self._submission_counter:06d}"
        try:
            submission.validate(self.config.num_gpus, self._catalog_names)
            state = self._admit(submission)
        except (SchemaValidationError, AdmissionError) as exc:
            decision = PlacementDecision(
                submission_id=submission_id,
                job_id="",
                tenant=submission.tenant,
                status="rejected",
                virtual_time=float(self.sim.now),
                queue_depth=self.queue_depth(),
                reason=str(exc),
            )
            tenant_state = self.tenants.get(submission.tenant)
            if tenant_state is not None:
                tenant_state.submitted += 1
                tenant_state.rejected += 1
            self.streams.publish(submission.tenant or "unknown", decision.to_dict())
            self._trace_decision(decision)
            return decision

        last_arrival = (
            self.sim.trace[-1].arrival_time if self.sim.trace else 0.0
        )
        arrival_time = self._assign_arrival(submission, last_arrival)
        spec = self._build_spec(submission, arrival_time)
        state.submitted += 1

        if spec.arrival_time > self.config.max_time:
            state.rejected += 1
            decision = PlacementDecision(
                submission_id=submission_id,
                job_id=spec.job_id,
                tenant=submission.tenant,
                status="rejected",
                virtual_time=float(self.sim.now),
                queue_depth=self.queue_depth(),
                reason=(
                    f"arrival t={spec.arrival_time:.1f} is beyond the service "
                    f"horizon max_time={self.config.max_time:.1f}"
                ),
            )
            self.streams.publish(submission.tenant, decision.to_dict())
            self._trace_decision(decision)
            return decision

        # Catch up on everything scheduled before the arrival, then let
        # the deterministic queue order the arrival against same-time
        # events exactly as an offline replay would.
        self.advance_to(spec.arrival_time)
        self.sim.submit(spec)
        self._tenant_of_job[spec.job_id] = submission.tenant

        decide_start = perf_counter()
        arrival_seen = False
        while not arrival_seen:
            event = self._timed_step()
            if event is None:
                raise RuntimeError(
                    f"kernel stalled before processing arrival of {spec.job_id!r} "
                    f"(max_events={self.config.max_events} exhausted?)"
                )
            arrival_seen = (
                event.kind is EventKind.JOB_ARRIVAL and event.job_id == spec.job_id
            )
        latency = perf_counter() - decide_start
        self._decision_wall_total += latency
        self.decision_latency.record(latency)
        state.decision_latency.record(latency)

        config = self.sim.allocation.config_of(spec.job_id)
        state.active_jobs.append(spec.job_id)
        state.outstanding_gpus += int(spec.requested_gpus)
        if config is not None:
            state.placed += 1
            status = "placed"
            gpu_ids: Tuple[int, ...] = config.gpu_ids
            local_batches: Tuple[int, ...] = config.local_batches
        else:
            state.queued += 1
            status = "queued"
            gpu_ids = ()
            local_batches = ()
        decision = PlacementDecision(
            submission_id=submission_id,
            job_id=spec.job_id,
            tenant=submission.tenant,
            status=status,
            virtual_time=float(self.sim.now),
            decision_latency_ms=latency * 1e3,
            gpu_ids=gpu_ids,
            local_batches=local_batches,
            queue_depth=self.queue_depth(),
        )
        self.streams.publish(submission.tenant, decision.to_dict())
        self._trace_decision(decision)
        return decision

    def _trace_decision(self, decision: PlacementDecision) -> None:
        """Record one admit/reject outcome when tracing is active."""
        tracer = active_tracer()
        if tracer is None:
            return
        tracer.event(
            "admit" if decision.status in ("placed", "queued") else "reject",
            "service",
            float(self.sim.now),
            tenant=decision.tenant,
            job=decision.job_id,
            status=decision.status,
            queue_depth=decision.queue_depth,
        )

    def _admit(self, submission: JobSubmission) -> TenantState:
        state = self.tenants.get(submission.tenant)
        if state is None:
            if not self._open_admission:
                raise AdmissionError(
                    f"unknown tenant {submission.tenant!r}; registered tenants: "
                    f"{sorted(self.tenants)}"
                )
            state = TenantState(quota=TenantQuota(tenant=submission.tenant))
            self.tenants[submission.tenant] = state
        quota = state.quota
        if len(state.active_jobs) + 1 > quota.max_active:
            raise AdmissionError(
                f"tenant {submission.tenant!r} already has {len(state.active_jobs)} "
                f"active jobs (max_active={quota.max_active})"
            )
        if state.outstanding_gpus + submission.gpu_demand > quota.max_gpus:
            raise AdmissionError(
                f"tenant {submission.tenant!r} quota oversubscribed: outstanding "
                f"{state.outstanding_gpus} + requested {submission.gpu_demand} GPUs "
                f"exceeds max_gpus={quota.max_gpus}"
            )
        if self._weighted_admission:
            self._check_weighted_share(state)
        return state

    def _check_weighted_share(self, state: TenantState) -> None:
        """Proportional concurrency under contention, driven by quota weights.

        Only consulted when some registered tenant carries a non-default
        ``weight`` (the flag is computed once at startup); with every
        weight at 1.0, admission is bit-for-bit what it was before this
        policy existed.  The check binds only while the cluster is
        contended — some admitted job is waiting for GPUs.  A tenant may
        then hold at most ``ceil((A + 1) * w_i / W)`` concurrent
        incomplete jobs, where ``A`` is the number of active jobs across
        all tenants and ``W`` the sum of all tenants' weights.  The
        ``max(1, ...)`` floor guarantees a tiny weight never means
        outright starvation: every tenant can always run one job.
        """
        if self.queue_depth() == 0:
            return
        total_weight = sum(float(t.quota.weight) for t in self.tenants.values())
        if total_weight <= 0.0:  # pragma: no cover - weights validate positive
            return
        total_active = sum(len(t.active_jobs) for t in self.tenants.values())
        share = max(
            1,
            math.ceil((total_active + 1) * float(state.quota.weight) / total_weight),
        )
        if len(state.active_jobs) + 1 > share:
            raise AdmissionError(
                f"tenant {state.quota.tenant!r} exceeds its weighted share under "
                f"contention: holds {len(state.active_jobs)} active jobs but its "
                f"share of {total_active + 1} is {share} "
                f"(weight {state.quota.weight:g} of {total_weight:g})"
            )

    def _build_spec(self, submission: JobSubmission, arrival_time: float) -> JobSpec:
        if submission.spec is not None:
            # Trusted replay path: the payload *is* the job spec (its own
            # arrival time included), so a recorded trace pushed through
            # the service reproduces the offline run bit-for-bit.
            return jobspec_from_dict(dict(submission.spec))
        if submission.workload:
            template = self._catalog_by_name[submission.workload]
        else:
            family = self._by_family[submission.job_type]
            template = family[int(self._rng.integers(0, len(family)))]
        job_id = f"svc-{self._submission_counter:06d}"
        return make_job_spec(
            template,
            job_id=job_id,
            arrival_time=arrival_time,
            requested_gpus=submission.gpu_demand,
            rng=self._rng if self.config.convergence_jitter else None,
        )

    # -- replay & drain -----------------------------------------------------------------

    def replay_trace(
        self, trace: Sequence[JobSpec], *, tenant: str
    ) -> List[PlacementDecision]:
        """Push a recorded trace through the service in virtual time.

        Each spec travels through the full submission path (validation,
        admission, injection) with its recorded arrival time; combined
        with :meth:`drain` the end state is bit-identical to an offline
        :meth:`~repro.sim.simulator.ClusterSimulator.run` of the trace.
        """
        from repro.workload.replay import jobspec_to_dict

        decisions = []
        for spec in trace:
            decisions.append(
                self.submit(
                    JobSubmission(
                        tenant=tenant,
                        replicas=int(spec.requested_gpus),
                        gpus_per_replica=1,
                        arrival_time=float(spec.arrival_time),
                        spec=jobspec_to_dict(spec),
                    )
                )
            )
        return decisions

    def drain(self) -> SimulationResult:
        """Close the submission stream and run the cluster to completion."""
        self.draining = True
        self.sim.close()
        while True:
            if self.sim._all_done():
                break
            if self._timed_step() is None:
                break
        return self.sim.build_result()

    def result(self) -> SimulationResult:
        """Snapshot result of the run so far (without closing the stream)."""
        return self.sim.build_result()

    # -- telemetry ----------------------------------------------------------------------

    def queue_depth(self) -> int:
        """Admitted, incomplete jobs currently holding no GPUs."""
        depth = 0
        for job_id, job in self.sim.jobs.items():
            if job.is_completed:
                continue
            if self.sim.allocation.config_of(job_id) is None:
                depth += 1
        return depth

    def submissions_per_second(self) -> float:
        """Accepted submissions per wall-clock second of *decision* time."""
        if self._decision_wall_total <= 0.0:
            return 0.0
        return self.decision_latency.count / self._decision_wall_total

    def status(self) -> Dict[str, object]:
        """Control-plane snapshot: clocks, counters, tenants, queue depth."""
        return {
            "scheduler": self.config.scheduler,
            "num_gpus": int(self.config.num_gpus),
            "mode": self.config.mode,
            "virtual_time": float(self.sim.now),
            "wall_uptime_s": perf_counter() - self._started_wall,
            "events_processed": int(self.sim.kernel.events_processed),
            "events_pending": len(self.sim.kernel.events),
            "submissions": int(self._submission_counter),
            "jobs_total": len(self.sim.jobs),
            "jobs_completed": len(self._completed_seen),
            "queue_depth": self.queue_depth(),
            "gpus_busy": len(self.sim.allocation.used_gpus()),
            "draining": bool(self.draining),
            "tenants": {
                name: state.as_dict() for name, state in sorted(self.tenants.items())
            },
        }

    def metrics_registry(self) -> MetricsRegistry:
        """The service's live telemetry as a metrics registry.

        Histograms are *adopted* (not copied): the registry renders the
        same :class:`LatencyHistogram` instances the engine records
        into.  Scheduler counters come from the scheduler's own
        registry, re-registered under a ``scheduler_`` prefix — this is
        how the scoring-cache and table-reuse counters reach the
        ``/metrics`` transport op and ``service-status --metrics``.
        """
        registry = MetricsRegistry()
        registry.histogram(
            "service_decision_latency_seconds", help="end-to-end decision latency"
        ).attach(self.decision_latency)
        tenant_hist = registry.histogram(
            "service_tenant_decision_latency_seconds",
            help="decision latency per tenant",
            labels=("tenant",),
        )
        for name, state in sorted(self.tenants.items()):
            tenant_hist.attach(state.decision_latency, tenant=name)
        step_hist = registry.histogram(
            "service_step_latency_seconds",
            help="kernel step latency per event kind",
            labels=("kind",),
        )
        for kind, hist in sorted(self.step_latency.items()):
            step_hist.attach(hist, kind=kind)
        registry.set_gauges(
            {
                "service_queue_depth": self.queue_depth(),
                "service_submissions_per_second": self.submissions_per_second(),
                "service_virtual_time_seconds": float(self.sim.now),
                "service_events_processed": int(self.sim.kernel.events_processed),
            },
            help="service engine state",
        )
        goodput = registry.counter(
            "service_completed_jobs", help="completed jobs per tenant", labels=("tenant",)
        )
        for name, state in sorted(self.tenants.items()):
            goodput.labels(tenant=name).inc(int(state.completed))
        scheduler_registry = getattr(self.sim.scheduler, "metrics_registry", None)
        if scheduler_registry is not None:
            for name, value in scheduler_registry().values().items():
                registry.gauge(
                    f"scheduler_{name}", help="scheduler counter"
                ).set(value)
        return registry

    def metrics(self) -> Dict[str, object]:
        """Observability snapshot: latency histograms, throughput, goodput."""
        scheduler_registry = getattr(self.sim.scheduler, "metrics_registry", None)
        scheduler_metrics: Dict[str, object] = (
            dict(scheduler_registry().values()) if scheduler_registry else {}
        )
        return {
            "scheduler": scheduler_metrics,
            "decision_latency": self.decision_latency.as_dict(),
            "decision_latency_by_tenant": {
                name: state.decision_latency.as_dict()
                for name, state in sorted(self.tenants.items())
            },
            "step_latency_by_kind": {
                kind: hist.as_dict()
                for kind, hist in sorted(self.step_latency.items())
            },
            "submissions_per_second": self.submissions_per_second(),
            "queue_depth": self.queue_depth(),
            "goodput_by_tenant": {
                name: {
                    "completed": int(state.completed),
                    "service_seconds": float(state.service_seconds),
                    "mean_jct": (
                        state.jct_seconds / state.completed if state.completed else 0.0
                    ),
                }
                for name, state in sorted(self.tenants.items())
            },
            "streams": self.streams.stats(),
        }
