"""JSONL-over-TCP transport of the scheduler service (stdlib only).

One request per line, one JSON object per response line — the simplest
protocol that still gives remote clients typed request/response framing,
works with ``nc``/``socket``/``asyncio`` alike, and needs no third-party
dependency.  The asyncio server serialises all operations into the
single-threaded :class:`~repro.service.engine.SchedulerService` through
one lock, so the engine never sees concurrent mutation; in ``wall`` mode
a background task additionally ticks the virtual clock forward at the
configured ``time_scale``.

Wire format (requests)::

    {"op": "submit", "submission": {...JobSubmission.to_dict()...}}
    {"op": "submit_batch", "submissions": [...]}
    {"op": "status"} | {"op": "metrics"} | {"op": "ping"}
    {"op": "stream", "tenant": "*", "cursor": 0, "limit": 512}
    {"op": "advance", "to_time": 3600.0}
    {"op": "drain"} | {"op": "shutdown"}

Responses are ``{"ok": true, ...payload...}`` or
``{"ok": false, "error": "..."}`` — protocol errors are reported, never
raised across the socket.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
from typing import Any, Dict, List, Mapping, Optional

from repro.service.engine import SchedulerService
from repro.service.schemas import JobSubmission, ServiceConfig

#: Default TCP port (0 = ephemeral, reported on stdout after binding).
DEFAULT_PORT = 7061
_MAX_LINE = 1 << 22  # 4 MiB: far above any legal request line.


class ServiceServer:
    """Asyncio JSONL server around one :class:`SchedulerService`."""

    def __init__(
        self,
        service: SchedulerService,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        tick_interval: float = 0.05,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.tick_interval = float(tick_interval)
        self._server: Optional[asyncio.AbstractServer] = None
        self._lock = asyncio.Lock()
        self._stop = asyncio.Event()
        self._tick_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and (in wall mode) start the clock tick."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=_MAX_LINE
        )
        bound = self._server.sockets[0].getsockname()
        self.port = int(bound[1])
        if self.service.config.mode == "wall":
            self._tick_task = asyncio.create_task(self._tick_clock())

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or a shutdown op) fires."""
        await self._stop.wait()
        await self.aclose()

    def request_stop(self) -> None:
        """Ask the serve loop to exit (signal-handler safe)."""
        self._stop.set()

    async def aclose(self) -> None:
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
            self._tick_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _tick_clock(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval)
            async with self._lock:
                self.service.advance_to(self.service.wall_virtual_target())

    # -- request handling ---------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {"ok": False, "error": "line too long"})
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                response = await self._dispatch(text)
                await self._send(writer, response)
                if response.get("_shutdown"):
                    self.request_stop()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: Mapping[str, Any]) -> None:
        body = {key: value for key, value in payload.items() if not key.startswith("_")}
        writer.write(json.dumps(body).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, text: str) -> Dict[str, Any]:
        try:
            request = json.loads(text)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"malformed JSON: {exc}"}
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "request must be an object with an 'op' key"}
        op = str(request["op"])
        async with self._lock:
            try:
                return self._handle_op(op, request)
            except Exception as exc:  # protocol boundary: report, never crash
                return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _handle_op(self, op: str, request: Mapping[str, Any]) -> Dict[str, Any]:
        service = self.service
        if op == "ping":
            return {"ok": True, "virtual_time": service.now}
        if op == "submit":
            submission = JobSubmission.from_dict(request.get("submission", {}))
            decision = service.submit(submission)
            return {"ok": True, "decision": decision.to_dict()}
        if op == "submit_batch":
            decisions = [
                service.submit(JobSubmission.from_dict(entry)).to_dict()
                for entry in request.get("submissions", [])
            ]
            return {"ok": True, "decisions": decisions}
        if op == "status":
            return {"ok": True, "status": service.status()}
        if op == "metrics":
            return {"ok": True, "metrics": service.metrics()}
        if op == "metrics_text":
            # Prometheus text exposition — the transport's /metrics
            # equivalent, rendered from the service's live registry.
            return {"ok": True, "text": service.metrics_registry().render_text()}
        if op == "stream":
            tenant = str(request.get("tenant", "*"))
            cursor = int(request.get("cursor", 0))
            limit = request.get("limit")
            records, next_cursor = service.streams.read(
                tenant, cursor, limit=int(limit) if limit is not None else None
            )
            return {
                "ok": True,
                "records": [dict(r) for r in records],
                "cursor": next_cursor,
                "dropped": service.streams.dropped(tenant),
            }
        if op == "advance":
            to_time = float(request.get("to_time", service.now))
            processed = service.advance_to(to_time)
            return {"ok": True, "processed": processed, "virtual_time": service.now}
        if op == "drain":
            result = service.drain()
            return {"ok": True, "result": result.summary()}
        if op == "shutdown":
            return {"ok": True, "stopping": True, "_shutdown": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


def run_server(
    config: ServiceConfig,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    announce=print,
) -> int:
    """Stand up a service and serve until SIGTERM/SIGINT; returns exit code 0.

    The readiness line ``repro-ones service listening on HOST:PORT`` is
    emitted through ``announce`` once the socket is bound, so wrappers
    (the CI smoke job) can wait for it before submitting.
    """

    async def _main() -> None:
        service = SchedulerService(config)
        server = ServiceServer(service, host=host, port=port)
        await server.start()
        announce(
            f"repro-ones service listening on {server.host}:{server.port} "
            f"(scheduler={config.scheduler}, gpus={config.num_gpus}, "
            f"mode={config.mode})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-POSIX loops, or serving from a non-main thread
                # (tests): signals stay with the embedding application.
                pass
        await server.serve_until_stopped()

    asyncio.run(_main())
    return 0


class ServiceClient:
    """Blocking JSONL client (tests, CLI verbs, load drivers)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw protocol -------------------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op; returns the decoded response object.

        Raises ``RuntimeError`` when the server reports ``ok: false`` —
        rejected *submissions* are not errors (they come back as
        decisions), only protocol failures are.
        """
        payload = {"op": op, **fields}
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line.decode())
        if not response.get("ok", False):
            raise RuntimeError(f"service error for op {op!r}: {response.get('error')}")
        return response

    # -- convenience verbs --------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> Dict[str, Any]:
        """Submit one job; returns the placement-decision dict."""
        return self.request("submit", submission=submission.to_dict())["decision"]

    def submit_batch(self, submissions: List[JobSubmission]) -> List[Dict[str, Any]]:
        """Submit many jobs in one round trip; returns their decisions."""
        return self.request(
            "submit_batch", submissions=[s.to_dict() for s in submissions]
        )["decisions"]

    def status(self) -> Dict[str, Any]:
        """Control-plane snapshot (see ``SchedulerService.status``)."""
        return self.request("status")["status"]

    def metrics(self) -> Dict[str, Any]:
        """Observability snapshot (see ``SchedulerService.metrics``)."""
        return self.request("metrics")["metrics"]

    def metrics_text(self) -> str:
        """Prometheus text exposition of the service registry."""
        return self.request("metrics_text")["text"]

    def stream(
        self, tenant: str = "*", cursor: int = 0, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        """Poll a tenant's decision stream from ``cursor``."""
        fields: Dict[str, Any] = {"tenant": tenant, "cursor": cursor}
        if limit is not None:
            fields["limit"] = int(limit)
        return self.request("stream", **fields)

    def advance(self, to_time: float) -> Dict[str, Any]:
        """Advance the virtual clock (virtual-mode runs)."""
        return self.request("advance", to_time=float(to_time))

    def drain(self) -> Dict[str, Any]:
        """Close the stream and run the cluster dry; returns the summary."""
        return self.request("drain")["result"]

    def shutdown(self) -> None:
        """Ask the server to exit its serve loop."""
        self.request("shutdown")
