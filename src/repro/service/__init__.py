"""Scheduler-as-a-service: an online submission API over a live simulator.

The offline pipeline replays a complete trace through
:class:`~repro.sim.simulator.ClusterSimulator`; this subpackage turns the
same simulator into a *service* — a long-running process that accepts
job submissions while the simulated cluster is live, decides placements
with any registered scheduler, and reports decision latency as a
first-class SLO metric:

* :mod:`repro.service.schemas` — typed request/response dataclasses
  (submission, decision, tenant quota, service config) with exact JSON
  round-trips and boundary validation;
* :mod:`repro.service.engine` — :class:`SchedulerService`: admission,
  deterministic workload instantiation, kernel stepping, latency
  histograms and per-tenant telemetry;
* :mod:`repro.service.streams` — bounded per-tenant decision/completion
  pub/sub;
* :mod:`repro.service.http` — stdlib JSONL-over-TCP transport (asyncio
  server + blocking client) behind the ``repro-ones serve`` /
  ``submit`` / ``service-status`` CLI verbs;
* :mod:`repro.service.load` — deterministic multi-tenant load
  generation from the seeded arrival-profile registry.

Determinism contract: in ``virtual`` time mode, a recorded trace pushed
through the service produces *bit-identical* placement decisions and
final metrics to an offline ``ClusterSimulator.run`` of the same trace —
enforced by the golden-parity test in ``tests/test_service_parity.py``.
"""

from repro.service.schemas import (
    AdmissionError,
    JobSubmission,
    JobType,
    PlacementDecision,
    SchemaValidationError,
    ServiceConfig,
    TenantQuota,
)
from repro.service.engine import LatencyHistogram, SchedulerService, TenantState
from repro.service.streams import ALL_TENANTS, StreamHub
from repro.service.http import DEFAULT_PORT, ServiceClient, ServiceServer, run_server
from repro.service.load import (
    arrival_summary,
    generate_submissions,
    tenant_seed,
)

__all__ = [
    "AdmissionError",
    "JobSubmission",
    "JobType",
    "PlacementDecision",
    "SchemaValidationError",
    "ServiceConfig",
    "TenantQuota",
    "LatencyHistogram",
    "SchedulerService",
    "TenantState",
    "ALL_TENANTS",
    "StreamHub",
    "DEFAULT_PORT",
    "ServiceClient",
    "ServiceServer",
    "run_server",
    "arrival_summary",
    "generate_submissions",
    "tenant_seed",
]
