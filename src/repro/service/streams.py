"""Per-tenant decision/telemetry streams.

The engine publishes every :class:`~repro.service.schemas.PlacementDecision`
(and job-completion notice) into a :class:`StreamHub`; transports and
tests subscribe with a cursor and poll/await new records.  The hub is a
bounded ring per tenant — a slow consumer loses the *oldest* records
(tracked in ``dropped``), never blocks the scheduler's event loop.  That
back-pressure stance is what keeps decision latency independent of how
many clients are watching.

The hub is transport-agnostic: it never imports asyncio.  Async servers
register a plain callable via :meth:`add_waiter` and get poked once per
publish; pull-based consumers just call :meth:`read` with their cursor.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

#: Wildcard tenant: subscribes to every tenant's records.
ALL_TENANTS = "*"


class StreamHub:
    """Bounded multi-tenant pub/sub of JSON-serialisable records."""

    def __init__(self, *, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be a positive integer")
        self.capacity = int(capacity)
        self._rings: Dict[str, Deque[Tuple[int, Mapping[str, object]]]] = {}
        self._next_seq: Dict[str, int] = {}
        self._dropped: Dict[str, int] = {}
        self._waiters: List[Callable[[], None]] = []

    # -- publishing (engine side) -------------------------------------------------------

    def publish(self, tenant: str, record: Mapping[str, object]) -> int:
        """Append ``record`` to ``tenant``'s ring; returns its sequence number.

        Records are also mirrored into the ``*`` ring so firehose
        consumers (the CI smoke test, ``service-status --follow``) see a
        single totally-ordered feed across tenants.
        """
        seq = self._append(tenant, record)
        if tenant != ALL_TENANTS:
            self._append(ALL_TENANTS, record)
        for waiter in list(self._waiters):
            waiter()
        return seq

    def _append(self, tenant: str, record: Mapping[str, object]) -> int:
        ring = self._rings.get(tenant)
        if ring is None:
            ring = deque()
            self._rings[tenant] = ring
            self._next_seq[tenant] = 0
            self._dropped[tenant] = 0
        seq = self._next_seq[tenant]
        self._next_seq[tenant] = seq + 1
        ring.append((seq, dict(record)))
        if len(ring) > self.capacity:
            ring.popleft()
            self._dropped[tenant] += 1
        return seq

    # -- consuming (transport side) -----------------------------------------------------

    def read(
        self,
        tenant: str,
        cursor: int = 0,
        *,
        limit: Optional[int] = None,
    ) -> Tuple[List[Mapping[str, object]], int]:
        """Records with sequence >= ``cursor``; returns ``(records, next_cursor)``.

        A consumer loops ``records, cursor = hub.read(tenant, cursor)``;
        an empty list means it is caught up.  If the ring already evicted
        part of the requested range the consumer silently resumes at the
        oldest retained record (the gap is visible via :meth:`dropped`).
        """
        ring = self._rings.get(tenant)
        if not ring:
            return [], cursor
        out: List[Mapping[str, object]] = []
        next_cursor = cursor
        for seq, record in ring:
            if seq < cursor:
                continue
            out.append(record)
            next_cursor = seq + 1
            if limit is not None and len(out) >= limit:
                break
        return out, next_cursor

    def latest_cursor(self, tenant: str) -> int:
        """The cursor positioned *after* the newest record (empty read next)."""
        return self._next_seq.get(tenant, 0)

    def dropped(self, tenant: str) -> int:
        """Records evicted from ``tenant``'s ring before any read caught up."""
        return self._dropped.get(tenant, 0)

    def depth(self, tenant: str) -> int:
        """Records currently retained in ``tenant``'s ring."""
        ring = self._rings.get(tenant)
        return len(ring) if ring else 0

    # -- wakeup plumbing ----------------------------------------------------------------

    def add_waiter(self, waiter: Callable[[], None]) -> None:
        """Register a zero-arg callable poked after every publish."""
        self._waiters.append(waiter)

    def remove_waiter(self, waiter: Callable[[], None]) -> None:
        """Unregister a waiter previously added with :meth:`add_waiter`."""
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass

    # -- introspection ------------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant ring statistics (published / retained / dropped)."""
        return {
            tenant: {
                "published": self._next_seq.get(tenant, 0),
                "retained": self.depth(tenant),
                "dropped": self.dropped(tenant),
            }
            for tenant in sorted(self._rings)
        }
