"""Deterministic multi-tenant load generation for the scheduler service.

Bridges the seeded arrival-profile registry
(:class:`~repro.workload.arrivals.ArrivalConfig`) to the service's
submission schema: each tenant gets its own arrival stream (seed derived
by content hash from the base seed and the tenant name, so adding a
tenant never perturbs another tenant's stream) and its own seeded draw
of job types and GPU demands.  The merged, arrival-ordered submission
list is a pure function of the arguments — benchmark runs, the CI smoke
job and the demo all replay identical load for identical parameters.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.service.schemas import JobSubmission, JobType
from repro.workload.arrivals import ArrivalConfig

#: GPU demands drawn for generated submissions (weights mirror the
#: small-job-heavy mix of the paper's trace).
DEFAULT_GPU_CHOICES: Tuple[int, ...] = (1, 2, 4, 8)
DEFAULT_GPU_WEIGHTS: Tuple[float, ...] = (0.4, 0.3, 0.2, 0.1)


def tenant_seed(base_seed: int, tenant: str) -> int:
    """Derive a tenant's stream seed from the base seed by content hash.

    Stable across processes and python versions (sha256, not ``hash``),
    and independent between tenants: each tenant's load is unchanged
    when other tenants come and go.
    """
    digest = hashlib.sha256(f"{int(base_seed)}:{tenant}".encode()).hexdigest()
    return int(digest[:12], 16) + 1  # +1: seeds are validated positive


def generate_submissions(
    tenants: Sequence[str],
    jobs_per_tenant: int,
    *,
    arrivals: ArrivalConfig,
    gpu_choices: Sequence[int] = DEFAULT_GPU_CHOICES,
    gpu_weights: Sequence[float] = DEFAULT_GPU_WEIGHTS,
    job_types: Sequence[str] = (JobType.CV.value, JobType.NLP.value),
) -> List[JobSubmission]:
    """Deterministic merged submission list over ``tenants``.

    Every tenant draws ``jobs_per_tenant`` arrivals from ``arrivals``
    re-seeded with its :func:`tenant_seed`, plus per-submission job
    types and GPU demands from an independent generator with the same
    seed.  Submissions are merged in arrival order (ties broken by
    tenant name then index — total and deterministic), with explicit
    ``arrival_time`` stamps so the service's monotone-arrival contract
    holds regardless of wall-clock pacing.
    """
    if jobs_per_tenant < 1:
        raise ValueError("jobs_per_tenant must be a positive integer")
    if len(gpu_choices) != len(gpu_weights):
        raise ValueError("gpu_choices and gpu_weights must have equal length")
    weights = np.asarray(gpu_weights, dtype=float)
    weights = weights / weights.sum()
    tagged: List[Tuple[float, str, int, JobSubmission]] = []
    for tenant in tenants:
        seed = tenant_seed(arrivals.seed, tenant)
        times = replace(arrivals, seed=seed).generate(jobs_per_tenant)
        rng = np.random.Generator(np.random.PCG64(seed))
        kinds = rng.choice(list(job_types), size=jobs_per_tenant)
        demands = rng.choice(list(gpu_choices), size=jobs_per_tenant, p=weights)
        for index in range(jobs_per_tenant):
            submission = JobSubmission(
                tenant=tenant,
                job_type=str(kinds[index]),
                replicas=int(demands[index]),
                gpus_per_replica=1,
                name=f"{tenant}-load-{index:05d}",
                arrival_time=float(times[index]),
            )
            tagged.append((float(times[index]), tenant, index, submission))
    tagged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    return [entry[3] for entry in tagged]


def arrival_summary(submissions: Sequence[JobSubmission]) -> Dict[str, object]:
    """Headline numbers of a generated load (for logs and benchmark payloads)."""
    if not submissions:
        return {"submissions": 0}
    times = np.asarray(
        [s.arrival_time for s in submissions if s.arrival_time is not None], dtype=float
    )
    per_tenant: Dict[str, int] = {}
    for submission in submissions:
        per_tenant[submission.tenant] = per_tenant.get(submission.tenant, 0) + 1
    return {
        "submissions": len(submissions),
        "tenants": per_tenant,
        "span_hours": float((times.max() - times.min()) / 3600.0) if times.size else 0.0,
        "total_gpu_demand": int(sum(s.gpu_demand for s in submissions)),
    }
