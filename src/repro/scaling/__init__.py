"""Elastic batch-size scaling (§3.3 of the paper).

Executing a new schedule may change a job's batch size and worker set.
The common practice — checkpoint, kill, restart — costs tens of seconds;
ONES instead pauses each affected worker at a step boundary, resizes its
buffers, reconnects the communication topology and resumes, at a cost of
roughly one second (Fig. 16).

* :mod:`repro.scaling.messages` — the control-plane messages exchanged
  between the scheduler, worker managers and scaling agents.
* :mod:`repro.scaling.agent` — the per-worker scaling-agent state machine
  (pause → resize → reconnect → broadcast → resume, Fig. 11).
* :mod:`repro.scaling.worker_manager` — the per-GPU worker manager that
  receives configurations from the scheduler and drives its agent.
* :mod:`repro.scaling.coordinator` — the checkpoint-free migration
  workflow for adding/removing workers (Fig. 12).
* :mod:`repro.scaling.overhead` — the overhead model comparing elastic
  scaling against checkpoint-based migration (Fig. 16).
"""

from repro.scaling.messages import (
    MessageType,
    ScalingMessage,
    make_scale_command,
    make_start_command,
    make_stop_command,
)
from repro.scaling.agent import AgentState, ScalingAgent
from repro.scaling.worker_manager import WorkerManager
from repro.scaling.coordinator import MigrationCoordinator, MigrationStep, MigrationPlan
from repro.scaling.overhead import OverheadModel, ReconfigurationKind

__all__ = [
    "MessageType",
    "ScalingMessage",
    "make_scale_command",
    "make_start_command",
    "make_stop_command",
    "AgentState",
    "ScalingAgent",
    "WorkerManager",
    "MigrationCoordinator",
    "MigrationStep",
    "MigrationPlan",
    "OverheadModel",
    "ReconfigurationKind",
]
