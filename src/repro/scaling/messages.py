"""Control-plane messages of the elastic scaling mechanism.

The central scheduler "sends messages to specific nodes to execute
scaling at only necessary workers" (§1).  The message vocabulary below
covers the interactions of Figs. 11 and 12: starting a job on a worker,
re-configuring its batch size / topology, stopping it, and the
acknowledgements the workers send back.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

_message_counter = itertools.count()


class MessageType(enum.Enum):
    """Kinds of messages exchanged between scheduler and worker managers."""

    START_JOB = "start_job"
    SCALE_BATCH = "scale_batch"
    STOP_JOB = "stop_job"
    PAUSE = "pause"
    PAUSE_ACK = "pause_ack"
    TOPOLOGY = "topology"
    WORKER_READY = "worker_ready"
    BROADCAST_PARAMS = "broadcast_params"
    RESUME = "resume"
    PROGRESS_REPORT = "progress_report"


@dataclass(frozen=True)
class ScalingMessage:
    """A single message on the control plane.

    Attributes
    ----------
    msg_type:
        The :class:`MessageType`.
    job_id:
        Job the message concerns.
    sender / receiver:
        Logical endpoints: ``"scheduler"``, ``"manager:<gpu>"`` or
        ``"agent:<gpu>"``.
    payload:
        Message-specific data (new local batch size, topology, …).
    sequence:
        Monotonic id used to assert ordering in tests.
    """

    msg_type: MessageType
    job_id: str
    sender: str
    receiver: str
    payload: Dict[str, Any] = field(default_factory=dict)
    sequence: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if not self.sender or not self.receiver:
            raise ValueError("sender and receiver must be non-empty")


def make_start_command(
    job_id: str,
    gpu_id: int,
    local_batch: int,
    peer_gpus: Sequence[int],
    learning_rate: float,
) -> ScalingMessage:
    """Scheduler → worker manager: start a worker of ``job_id`` on ``gpu_id``."""
    if local_batch < 1:
        raise ValueError("local_batch must be >= 1")
    return ScalingMessage(
        msg_type=MessageType.START_JOB,
        job_id=job_id,
        sender="scheduler",
        receiver=f"manager:{gpu_id}",
        payload={
            "gpu_id": int(gpu_id),
            "local_batch": int(local_batch),
            "peer_gpus": tuple(int(g) for g in peer_gpus),
            "learning_rate": float(learning_rate),
        },
    )


def make_scale_command(
    job_id: str,
    gpu_id: int,
    new_local_batch: int,
    new_peer_gpus: Sequence[int],
    new_learning_rate: float,
) -> ScalingMessage:
    """Scheduler → worker manager: re-configure an already-running worker."""
    if new_local_batch < 0:
        raise ValueError("new_local_batch must be >= 0 (0 removes the worker)")
    return ScalingMessage(
        msg_type=MessageType.SCALE_BATCH,
        job_id=job_id,
        sender="scheduler",
        receiver=f"manager:{gpu_id}",
        payload={
            "gpu_id": int(gpu_id),
            "local_batch": int(new_local_batch),
            "peer_gpus": tuple(int(g) for g in new_peer_gpus),
            "learning_rate": float(new_learning_rate),
        },
    )


def make_stop_command(job_id: str, gpu_id: int) -> ScalingMessage:
    """Scheduler → worker manager: stop the worker of ``job_id`` on ``gpu_id``."""
    return ScalingMessage(
        msg_type=MessageType.STOP_JOB,
        job_id=job_id,
        sender="scheduler",
        receiver=f"manager:{gpu_id}",
        payload={"gpu_id": int(gpu_id)},
    )


def make_progress_report(
    job_id: str,
    gpu_id: int,
    samples_processed: float,
    loss: float,
    accuracy: float,
    epoch: int,
) -> ScalingMessage:
    """Worker manager → scheduler: end-of-epoch progress upload (§3.1)."""
    return ScalingMessage(
        msg_type=MessageType.PROGRESS_REPORT,
        job_id=job_id,
        sender=f"manager:{gpu_id}",
        receiver="scheduler",
        payload={
            "samples_processed": float(samples_processed),
            "loss": float(loss),
            "accuracy": float(accuracy),
            "epoch": int(epoch),
        },
    )
