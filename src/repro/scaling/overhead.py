"""Re-configuration overhead model (Fig. 16).

Two ways of applying a new configuration to a running job:

* **Elastic batch-size scaling** (ONES): the scaling agent pauses the
  user script at the end of a training step, resizes the input tensors
  and buffers on the GPU, reconnects the communication topology and
  (when workers were added) broadcasts the parameters.  The paper
  measures ≈0.3–1.1 s per model.
* **Checkpoint-based migration** (the common practice, used by the
  baselines that resize jobs): stop training, write a checkpoint to the
  shared filesystem, restart the processes, re-prepare the input
  pipeline, reload the checkpoint onto the GPUs.  The paper measures
  ≈10–22 s per model.

The components below are derived from the hardware description
(:class:`repro.cluster.devices.NodeSpec`) and the model description
(:class:`repro.jobs.model_zoo.ModelSpec`); per-family data-preparation
costs are calibration constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.devices import LONGHORN_NODE, NodeSpec
from repro.jobs.model_zoo import ModelSpec
from repro.utils.units import GB
from repro.utils.validation import check_non_negative, check_positive


class ReconfigurationKind(enum.Enum):
    """How a new configuration is applied to a running job."""

    ELASTIC = "elastic"
    CHECKPOINT = "checkpoint"


#: Seconds spent re-preparing the input pipeline after a cold restart,
#: by dataset family.  Sequence workloads (the LSTM / BERT jobs) pay the
#: most, which is why the LSTM bar of Fig. 16 is the tallest checkpoint bar.
DATA_PREPARATION_SECONDS: Dict[str, float] = {
    "vision": 4.0,
    "sequence": 12.0,
    "default": 5.0,
}

#: Model-name → data family used to pick a data-preparation cost.
_MODEL_FAMILY: Dict[str, str] = {
    "alexnet": "vision",
    "resnet18": "vision",
    "resnet50": "vision",
    "vgg16": "vision",
    "googlenet": "vision",
    "inceptionv3": "vision",
    "bert": "sequence",
    "lstm": "sequence",
}


@dataclass(frozen=True)
class OverheadBreakdown:
    """Per-phase decomposition of one re-configuration."""

    kind: ReconfigurationKind
    step_drain: float = 0.0
    communicator_reinit: float = 0.0
    buffer_resize: float = 0.0
    parameter_broadcast: float = 0.0
    checkpoint_save: float = 0.0
    process_restart: float = 0.0
    data_preparation: float = 0.0
    checkpoint_load: float = 0.0

    @property
    def total(self) -> float:
        """Total overhead in seconds."""
        return (
            self.step_drain
            + self.communicator_reinit
            + self.buffer_resize
            + self.parameter_broadcast
            + self.checkpoint_save
            + self.process_restart
            + self.data_preparation
            + self.checkpoint_load
        )


@dataclass(frozen=True)
class OverheadModel:
    """Computes elastic and checkpoint-based re-configuration overheads.

    Parameters
    ----------
    node:
        Hardware description (bandwidths come from here).
    coordination_overhead:
        Fixed cost of the scheduler/manager/agent handshake during an
        elastic re-configuration.
    communicator_setup_per_worker:
        NCCL communicator re-initialisation cost per participating worker.
    allocator_bandwidth:
        Effective rate at which GPU buffers are re-allocated/re-shaped.
    framework_restart:
        Process + framework (PyTorch) cold-start cost for the
        checkpoint-based path.
    storage_bandwidth:
        Effective read/write bandwidth to the shared filesystem for
        checkpoints (HDFS over 1 Gb/s Ethernet, with caching).
    """

    node: NodeSpec = LONGHORN_NODE
    coordination_overhead: float = 0.20
    communicator_setup_per_worker: float = 0.02
    allocator_bandwidth: float = 2.5 * GB
    reference_local_batch: int = 64
    framework_restart: float = 4.0
    storage_bandwidth: float = 0.25 * GB

    def __post_init__(self) -> None:
        check_non_negative(self.coordination_overhead, "coordination_overhead")
        check_non_negative(self.communicator_setup_per_worker, "communicator_setup_per_worker")
        check_positive(self.allocator_bandwidth, "allocator_bandwidth")
        check_positive(self.framework_restart, "framework_restart")
        check_positive(self.storage_bandwidth, "storage_bandwidth")

    # -- elastic path -----------------------------------------------------------------

    def elastic_breakdown(
        self,
        model: ModelSpec,
        num_workers: int = 2,
        workers_added: bool = True,
        local_batch: Optional[int] = None,
    ) -> OverheadBreakdown:
        """Breakdown of an elastic re-configuration of ``model``."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        local_batch = int(local_batch or self.reference_local_batch)
        gpu = self.node.gpu
        # Drain: on average half a step is outstanding when the pause lands.
        step_time = (
            model.flops_per_sample * local_batch / gpu.effective_flops(local_batch)
            + gpu.kernel_overhead
        )
        step_drain = 0.5 * step_time
        communicator = self.coordination_overhead + (
            self.communicator_setup_per_worker * num_workers
        )
        buffer_resize = model.checkpoint_bytes / self.allocator_bandwidth
        broadcast = 0.0
        if workers_added and num_workers > 1:
            broadcast = model.gradient_bytes / (0.7 * self.node.intra_node_bandwidth)
        return OverheadBreakdown(
            kind=ReconfigurationKind.ELASTIC,
            step_drain=step_drain,
            communicator_reinit=communicator,
            buffer_resize=buffer_resize,
            parameter_broadcast=broadcast,
        )

    def elastic_overhead(
        self,
        model: ModelSpec,
        num_workers: int = 2,
        workers_added: bool = True,
        local_batch: Optional[int] = None,
    ) -> float:
        """Total elastic re-configuration overhead in seconds."""
        return self.elastic_breakdown(model, num_workers, workers_added, local_batch).total

    # -- checkpoint path ------------------------------------------------------------------

    def checkpoint_breakdown(self, model: ModelSpec) -> OverheadBreakdown:
        """Breakdown of a checkpoint-stop-restart migration of ``model``."""
        family = _MODEL_FAMILY.get(model.name.split("@")[0], "default")
        data_prep = DATA_PREPARATION_SECONDS.get(family, DATA_PREPARATION_SECONDS["default"])
        save = model.checkpoint_bytes / self.storage_bandwidth
        load = model.checkpoint_bytes / self.storage_bandwidth
        return OverheadBreakdown(
            kind=ReconfigurationKind.CHECKPOINT,
            checkpoint_save=save,
            process_restart=self.framework_restart,
            data_preparation=data_prep,
            checkpoint_load=load,
        )

    def checkpoint_overhead(self, model: ModelSpec) -> float:
        """Total checkpoint-based migration overhead in seconds."""
        return self.checkpoint_breakdown(model).total

    # -- generic entry point used by the simulator ----------------------------------------------

    def reconfiguration_overhead(
        self,
        model: ModelSpec,
        kind: ReconfigurationKind,
        num_workers: int = 2,
        workers_added: bool = True,
    ) -> float:
        """Overhead of one re-configuration of the given kind."""
        if kind is ReconfigurationKind.ELASTIC:
            return self.elastic_overhead(model, num_workers, workers_added)
        return self.checkpoint_overhead(model)

    def comparison_table(self, models: Dict[str, ModelSpec]) -> Dict[str, Dict[str, float]]:
        """Per-model elastic vs checkpoint overheads (the data behind Fig. 16)."""
        table: Dict[str, Dict[str, float]] = {}
        for name, model in models.items():
            table[name] = {
                "elastic": self.elastic_overhead(model),
                "checkpoint": self.checkpoint_overhead(model),
            }
        return table
