"""The per-worker scaling agent (Fig. 11).

Each worker manager "invokes a scaling agent to automatically adjust the
execution configurations of its worker in the background".  The agent is
a small state machine:

``IDLE → LOADING → TRAINING`` on job start, and on a scaling request
``TRAINING → PAUSED → RESIZING → RECONNECTING → (BROADCASTING) →
TRAINING`` — the training process itself is never torn down.

The agent records every transition with a timestamp so tests (and the
migration coordinator) can assert the protocol ordering of Fig. 12.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class AgentState(enum.Enum):
    """States of the scaling-agent state machine."""

    IDLE = "idle"
    LOADING = "loading"
    TRAINING = "training"
    PAUSED = "paused"
    RESIZING = "resizing"
    RECONNECTING = "reconnecting"
    BROADCASTING = "broadcasting"
    STOPPED = "stopped"


#: Legal transitions of the state machine.
_ALLOWED_TRANSITIONS = {
    AgentState.IDLE: {AgentState.LOADING},
    AgentState.LOADING: {AgentState.TRAINING, AgentState.STOPPED},
    AgentState.TRAINING: {AgentState.PAUSED, AgentState.STOPPED},
    AgentState.PAUSED: {AgentState.RESIZING, AgentState.STOPPED},
    AgentState.RESIZING: {AgentState.RECONNECTING},
    AgentState.RECONNECTING: {AgentState.BROADCASTING, AgentState.TRAINING},
    AgentState.BROADCASTING: {AgentState.TRAINING},
    AgentState.STOPPED: set(),
}


@dataclass(frozen=True)
class Transition:
    """One recorded state transition."""

    time: float
    from_state: AgentState
    to_state: AgentState
    detail: str = ""


@dataclass
class ScalingAgent:
    """State machine controlling one worker's execution configuration.

    Parameters
    ----------
    gpu_id:
        GPU this agent's worker occupies.
    job_id:
        Job the worker belongs to.
    """

    gpu_id: int
    job_id: str
    state: AgentState = AgentState.IDLE
    local_batch: int = 0
    learning_rate: float = 0.0
    peer_gpus: Tuple[int, ...] = ()
    transitions: List[Transition] = field(default_factory=list)

    # -- state machine core ---------------------------------------------------------------

    def _move(self, new_state: AgentState, time: float, detail: str = "") -> None:
        allowed = _ALLOWED_TRANSITIONS[self.state]
        if new_state not in allowed:
            raise RuntimeError(
                f"illegal agent transition {self.state.value} → {new_state.value} "
                f"for job {self.job_id} on GPU {self.gpu_id}"
            )
        self.transitions.append(
            Transition(time=time, from_state=self.state, to_state=new_state, detail=detail)
        )
        self.state = new_state

    # -- lifecycle -------------------------------------------------------------------------

    def load_job(
        self,
        time: float,
        local_batch: int,
        learning_rate: float,
        peer_gpus: Sequence[int],
    ) -> None:
        """Load the model/dataset/optimizer onto the GPU (Fig. 11a)."""
        if local_batch < 1:
            raise ValueError("local_batch must be >= 1 to load a worker")
        self._move(AgentState.LOADING, time, "load modules on GPU")
        self.local_batch = int(local_batch)
        self.learning_rate = float(learning_rate)
        self.peer_gpus = tuple(int(g) for g in peer_gpus)

    def start_training(self, time: float) -> None:
        """User script begins training (Fig. 11b)."""
        self._move(AgentState.TRAINING, time, "user script resumed")

    def pause(self, time: float) -> None:
        """Pause the user script at the end of a training step (Fig. 11c)."""
        self._move(AgentState.PAUSED, time, "paused at step boundary")

    def resize(
        self, time: float, new_local_batch: int, new_learning_rate: float
    ) -> None:
        """Resize the input tensors / modules for a new local batch size."""
        if new_local_batch < 1:
            raise ValueError("new_local_batch must be >= 1; use stop() to remove a worker")
        self._move(AgentState.RESIZING, time, f"resize to local batch {new_local_batch}")
        self.local_batch = int(new_local_batch)
        self.learning_rate = float(new_learning_rate)

    def reconnect(self, time: float, new_peer_gpus: Sequence[int]) -> None:
        """Reconnect the collective-communication topology."""
        self._move(AgentState.RECONNECTING, time, f"reconnect to {list(new_peer_gpus)}")
        self.peer_gpus = tuple(int(g) for g in new_peer_gpus)

    def broadcast_parameters(self, time: float) -> None:
        """Broadcast parameters to newly added workers (Fig. 12)."""
        self._move(AgentState.BROADCASTING, time, "broadcast parameters")

    def resume(self, time: float) -> None:
        """Resume training with the new configuration (Fig. 11d)."""
        self._move(AgentState.TRAINING, time, "resume training")

    def stop(self, time: float) -> None:
        """Tear the worker down (job completed or preempted)."""
        if self.state is AgentState.STOPPED:
            return
        if self.state not in (AgentState.TRAINING, AgentState.PAUSED, AgentState.LOADING):
            raise RuntimeError(
                f"cannot stop agent in state {self.state.value}; finish the scaling first"
            )
        self._move(AgentState.STOPPED, time, "worker stopped")
        self.local_batch = 0
        self.peer_gpus = ()

    # -- queries ------------------------------------------------------------------------------

    @property
    def is_training(self) -> bool:
        """Whether the worker is actively training."""
        return self.state is AgentState.TRAINING

    @property
    def is_stopped(self) -> bool:
        """Whether the worker has been torn down."""
        return self.state is AgentState.STOPPED

    def state_sequence(self) -> List[AgentState]:
        """The visited states in order (including the initial IDLE)."""
        if not self.transitions:
            return [self.state]
        return [self.transitions[0].from_state] + [t.to_state for t in self.transitions]

    def training_was_stopped_during_scaling(self) -> bool:
        """True if the worker process was ever torn down mid-scaling.

        The defining property of elastic scaling is that this is always
        False: the worker pauses but never stops while being re-configured.
        """
        seq = self.state_sequence()
        for i, state in enumerate(seq[:-1]):
            if state in (AgentState.PAUSED, AgentState.RESIZING, AgentState.RECONNECTING):
                if seq[i + 1] is AgentState.STOPPED:
                    return True
        return False
