"""Worker managers: the per-GPU control-plane endpoints (§3.1).

"A worker manager is bound to each GPU device, which receives the new
configuration from the scheduler, and invokes a scaling agent to
automatically adjust the execution configurations of its worker in the
background."

A :class:`WorkerManager` therefore owns at most one :class:`ScalingAgent`
at a time, translates scheduler messages into agent transitions, and
emits progress reports back to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.scaling.agent import AgentState, ScalingAgent
from repro.scaling.messages import (
    MessageType,
    ScalingMessage,
    make_progress_report,
)


@dataclass
class WorkerManager:
    """The control-plane endpoint bound to one GPU."""

    gpu_id: int
    agent: Optional[ScalingAgent] = None
    inbox: List[ScalingMessage] = field(default_factory=list)
    outbox: List[ScalingMessage] = field(default_factory=list)

    # -- message handling --------------------------------------------------------------------

    def handle(self, message: ScalingMessage, now: float) -> None:
        """Process one scheduler message at simulation time ``now``."""
        expected_receiver = f"manager:{self.gpu_id}"
        if message.receiver != expected_receiver:
            raise ValueError(
                f"message for {message.receiver} delivered to {expected_receiver}"
            )
        self.inbox.append(message)
        if message.msg_type is MessageType.START_JOB:
            self._handle_start(message, now)
        elif message.msg_type is MessageType.SCALE_BATCH:
            self._handle_scale(message, now)
        elif message.msg_type is MessageType.STOP_JOB:
            self._handle_stop(message, now)
        else:
            raise ValueError(f"worker manager cannot handle {message.msg_type}")

    def _handle_start(self, message: ScalingMessage, now: float) -> None:
        if self.agent is not None and not self.agent.is_stopped:
            raise RuntimeError(
                f"GPU {self.gpu_id} already runs job {self.agent.job_id}; "
                f"cannot start {message.job_id}"
            )
        payload = message.payload
        self.agent = ScalingAgent(gpu_id=self.gpu_id, job_id=message.job_id)
        self.agent.load_job(
            time=now,
            local_batch=payload["local_batch"],
            learning_rate=payload["learning_rate"],
            peer_gpus=payload["peer_gpus"],
        )
        self.agent.start_training(now)

    def _handle_scale(self, message: ScalingMessage, now: float) -> None:
        if self.agent is None or self.agent.is_stopped:
            raise RuntimeError(f"GPU {self.gpu_id} has no active worker to scale")
        if self.agent.job_id != message.job_id:
            raise RuntimeError(
                f"GPU {self.gpu_id} runs {self.agent.job_id}, got scale for {message.job_id}"
            )
        payload = message.payload
        new_batch = payload["local_batch"]
        if new_batch == 0:
            # The worker is being removed from the job.
            self.agent.pause(now)
            self.agent.stop(now)
            return
        new_peers = payload["peer_gpus"]
        workers_added = len(new_peers) > len(self.agent.peer_gpus)
        self.agent.pause(now)
        self.agent.resize(now, new_batch, payload["learning_rate"])
        self.agent.reconnect(now, new_peers)
        if workers_added:
            self.agent.broadcast_parameters(now)
        self.agent.resume(now)

    def _handle_stop(self, message: ScalingMessage, now: float) -> None:
        if self.agent is None or self.agent.is_stopped:
            return
        if self.agent.job_id != message.job_id:
            raise RuntimeError(
                f"GPU {self.gpu_id} runs {self.agent.job_id}, got stop for {message.job_id}"
            )
        self.agent.stop(now)

    # -- progress reporting -----------------------------------------------------------------------

    def report_progress(
        self,
        now: float,
        samples_processed: float,
        loss: float,
        accuracy: float,
        epoch: int,
    ) -> ScalingMessage:
        """Emit the end-of-epoch progress upload for the current worker."""
        if self.agent is None or self.agent.is_stopped:
            raise RuntimeError(f"GPU {self.gpu_id} has no active worker to report for")
        message = make_progress_report(
            job_id=self.agent.job_id,
            gpu_id=self.gpu_id,
            samples_processed=samples_processed,
            loss=loss,
            accuracy=accuracy,
            epoch=epoch,
        )
        self.outbox.append(message)
        return message

    # -- queries ----------------------------------------------------------------------------------

    @property
    def is_busy(self) -> bool:
        """Whether this GPU currently hosts an active worker."""
        return self.agent is not None and not self.agent.is_stopped

    @property
    def current_job(self) -> Optional[str]:
        """Id of the job currently running on this GPU, if any."""
        if self.is_busy:
            return self.agent.job_id
        return None


class WorkerManagerPool:
    """All worker managers of a cluster, keyed by GPU id."""

    def __init__(self, num_gpus: int) -> None:
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        self._managers: Dict[int, WorkerManager] = {
            gpu: WorkerManager(gpu_id=gpu) for gpu in range(num_gpus)
        }

    def __getitem__(self, gpu_id: int) -> WorkerManager:
        return self._managers[int(gpu_id)]

    def __len__(self) -> int:
        return len(self._managers)

    def busy_gpus(self) -> List[int]:
        """GPUs that currently host an active worker."""
        return sorted(g for g, m in self._managers.items() if m.is_busy)

    def idle_gpus(self) -> List[int]:
        """GPUs with no active worker."""
        return sorted(g for g, m in self._managers.items() if not m.is_busy)

    def jobs_running(self) -> Dict[str, List[int]]:
        """Mapping of job id → GPUs it currently occupies."""
        running: Dict[str, List[int]] = {}
        for gpu, manager in self._managers.items():
            job = manager.current_job
            if job is not None:
                running.setdefault(job, []).append(gpu)
        return {job: sorted(gpus) for job, gpus in running.items()}
