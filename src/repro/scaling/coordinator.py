"""Checkpoint-free migration workflow (Fig. 12).

Adding workers to a running job without a checkpoint requires the
sequence:

1. start the new workers and let them initialise *in parallel with the
   ongoing training* (overlap),
2. once ready, notify the previous workers (via the controller),
3. previous workers finish their current step and quit the old topology,
4. all workers connect to the new topology,
5. parameters are broadcast from one of the previous workers,
6. training resumes.

The :class:`MigrationCoordinator` builds a :class:`MigrationPlan` — the
timed sequence of those steps — and drives the per-worker scaling agents
through it, so both the ordering and the total overhead are testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.devices import LONGHORN_NODE, NodeSpec
from repro.jobs.model_zoo import ModelSpec
from repro.scaling.agent import ScalingAgent
from repro.scaling.overhead import OverheadModel


@dataclass(frozen=True)
class MigrationStep:
    """One timed step of the checkpoint-free migration workflow."""

    name: str
    start: float
    duration: float
    workers: Tuple[int, ...]
    overlapped: bool = False

    @property
    def end(self) -> float:
        """Completion time of the step."""
        return self.start + self.duration


@dataclass(frozen=True)
class MigrationPlan:
    """The full timed plan of one re-configuration."""

    job_id: str
    steps: Tuple[MigrationStep, ...]
    training_paused_at: float
    training_resumed_at: float

    @property
    def total_pause(self) -> float:
        """Time the *previous* workers spend not training.

        This is the cost visible to the job; work done by new workers
        while the previous ones keep training is overlapped and free.
        """
        return max(0.0, self.training_resumed_at - self.training_paused_at)

    @property
    def makespan(self) -> float:
        """End-to-end duration of the migration including overlapped work."""
        if not self.steps:
            return 0.0
        start = min(step.start for step in self.steps)
        end = max(step.end for step in self.steps)
        return end - start


class MigrationCoordinator:
    """Plans and executes checkpoint-free worker-set changes."""

    def __init__(
        self,
        overhead_model: Optional[OverheadModel] = None,
        node: NodeSpec = LONGHORN_NODE,
    ) -> None:
        self.overheads = overhead_model or OverheadModel(node=node)
        self.node = node

    # -- planning -------------------------------------------------------------------------

    def plan_add_workers(
        self,
        job_id: str,
        model: ModelSpec,
        previous_gpus: Sequence[int],
        new_gpus: Sequence[int],
        start_time: float = 0.0,
        local_batch: int = 64,
    ) -> MigrationPlan:
        """Plan the Fig. 12 workflow for adding ``new_gpus`` to a job."""
        previous_gpus = tuple(int(g) for g in previous_gpus)
        new_gpus = tuple(int(g) for g in new_gpus)
        if not previous_gpus:
            raise ValueError("plan_add_workers requires at least one previous worker")
        if not new_gpus:
            raise ValueError("no new workers to add; use plan_resize instead")
        overlap = set(previous_gpus) & set(new_gpus)
        if overlap:
            raise ValueError(f"GPUs {sorted(overlap)} appear as both previous and new workers")

        breakdown = self.overheads.elastic_breakdown(
            model,
            num_workers=len(previous_gpus) + len(new_gpus),
            workers_added=True,
            local_batch=local_batch,
        )
        steps: List[MigrationStep] = []
        # 1. New workers initialise, overlapped with ongoing training.
        init_duration = self.overheads.framework_restart * 0.5 + (
            model.checkpoint_bytes / self.overheads.allocator_bandwidth
        )
        steps.append(
            MigrationStep(
                name="initialize_new_workers",
                start=start_time,
                duration=init_duration,
                workers=new_gpus,
                overlapped=True,
            )
        )
        ready_time = start_time + init_duration
        # 2. Previous workers drain their current step.
        pause_time = ready_time
        steps.append(
            MigrationStep(
                name="drain_current_step",
                start=pause_time,
                duration=breakdown.step_drain,
                workers=previous_gpus,
            )
        )
        cursor = pause_time + breakdown.step_drain
        # 3. Quit old topology / connect to new topology.
        steps.append(
            MigrationStep(
                name="reconnect_topology",
                start=cursor,
                duration=breakdown.communicator_reinit,
                workers=previous_gpus + new_gpus,
            )
        )
        cursor += breakdown.communicator_reinit
        # 4. Resize buffers for the new local batch sizes.
        steps.append(
            MigrationStep(
                name="resize_buffers",
                start=cursor,
                duration=breakdown.buffer_resize,
                workers=previous_gpus + new_gpus,
            )
        )
        cursor += breakdown.buffer_resize
        # 5. Broadcast parameters from one previous worker.
        steps.append(
            MigrationStep(
                name="broadcast_parameters",
                start=cursor,
                duration=breakdown.parameter_broadcast,
                workers=previous_gpus + new_gpus,
            )
        )
        cursor += breakdown.parameter_broadcast
        return MigrationPlan(
            job_id=job_id,
            steps=tuple(steps),
            training_paused_at=pause_time,
            training_resumed_at=cursor,
        )

    def plan_resize(
        self,
        job_id: str,
        model: ModelSpec,
        gpus: Sequence[int],
        start_time: float = 0.0,
        local_batch: int = 64,
    ) -> MigrationPlan:
        """Plan a pure batch-size change (no workers added or removed)."""
        gpus = tuple(int(g) for g in gpus)
        if not gpus:
            raise ValueError("plan_resize requires at least one worker")
        breakdown = self.overheads.elastic_breakdown(
            model, num_workers=len(gpus), workers_added=False, local_batch=local_batch
        )
        cursor = start_time
        steps = [
            MigrationStep("drain_current_step", cursor, breakdown.step_drain, gpus),
        ]
        cursor += breakdown.step_drain
        steps.append(
            MigrationStep("resize_buffers", cursor, breakdown.buffer_resize, gpus)
        )
        cursor += breakdown.buffer_resize
        steps.append(
            MigrationStep(
                "reconnect_topology", cursor, breakdown.communicator_reinit, gpus
            )
        )
        cursor += breakdown.communicator_reinit
        return MigrationPlan(
            job_id=job_id,
            steps=tuple(steps),
            training_paused_at=start_time,
            training_resumed_at=cursor,
        )

    # -- execution against scaling agents ------------------------------------------------------

    def execute_plan(
        self,
        plan: MigrationPlan,
        agents: Dict[int, ScalingAgent],
        new_local_batches: Dict[int, int],
        new_learning_rate: float,
        new_topology: Sequence[int],
    ) -> None:
        """Drive the per-worker agents through an add-workers plan.

        ``agents`` must contain an agent per previous worker (in TRAINING
        state) and per new worker (freshly constructed, IDLE).
        """
        new_topology = tuple(int(g) for g in new_topology)
        previous = [g for g in new_topology if agents[g].is_training]
        added = [g for g in new_topology if not agents[g].is_training]
        # New workers load and connect first (overlapped with training).
        for gpu in added:
            agents[gpu].load_job(
                time=plan.steps[0].start,
                local_batch=new_local_batches[gpu],
                learning_rate=new_learning_rate,
                peer_gpus=new_topology,
            )
        # Previous workers pause at the step boundary, then everyone
        # reconnects, previous workers broadcast, and training resumes.
        for gpu in previous:
            agents[gpu].pause(plan.training_paused_at)
            agents[gpu].resize(
                plan.training_paused_at, new_local_batches[gpu], new_learning_rate
            )
            agents[gpu].reconnect(plan.training_paused_at, new_topology)
            agents[gpu].broadcast_parameters(plan.training_paused_at)
            agents[gpu].resume(plan.training_resumed_at)
        for gpu in added:
            agents[gpu].start_training(plan.training_resumed_at)
