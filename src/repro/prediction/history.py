"""Bounded training-log history used to fit the progress predictor.

§3.2.1: *"we maintain a limited size of training dataset where the data
points are uniformly sampled from training logs of completed jobs.  By
doing so, we can control a reasonable training time and prevent
overfitting."*

Each completed job contributes one example per logged epoch: the feature
vector observed at that epoch paired with the number of epochs the job
still needed after that point (the quantity ``β`` approximates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.jobs.job import Job
from repro.prediction.features import NUM_FEATURES, feature_vector
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TrainingExample:
    """One supervised example: features at some epoch → epochs remaining."""

    features: Tuple[float, ...]
    epochs_remaining: float
    job_id: str = ""

    def __post_init__(self) -> None:
        if len(self.features) != NUM_FEATURES:
            raise ValueError(
                f"expected {NUM_FEATURES} features, got {len(self.features)}"
            )
        if self.epochs_remaining < 0:
            raise ValueError("epochs_remaining must be >= 0")


def examples_from_job(job: Job) -> List[TrainingExample]:
    """Turn a *completed* job's epoch log into training examples.

    For the record written at epoch ``k`` (out of ``E`` total epochs) the
    label is ``E - k`` — the epochs the job still had to run at that point.
    """
    if not job.is_completed:
        raise ValueError(f"job {job.job_id} has not completed; cannot harvest its log")
    total_epochs = job.epochs_completed
    examples: List[TrainingExample] = []
    for record in job.epoch_records:
        feats = feature_vector(
            dataset_size=job.dataset_size,
            initial_loss=job.initial_loss,
            samples_processed=record.samples_processed,
            loss_improvement_ratio=1.0 - record.loss / job.initial_loss,
            accuracy=record.accuracy,
        )
        examples.append(
            TrainingExample(
                features=tuple(float(v) for v in feats),
                epochs_remaining=float(max(0, total_epochs - record.epoch_index)),
                job_id=job.job_id,
            )
        )
    return examples


class HistoryStore:
    """A bounded pool of :class:`TrainingExample` objects.

    When the pool exceeds ``max_size`` it is thinned by uniform sampling
    (without replacement) so old and new jobs stay represented and fitting
    cost stays bounded.
    """

    def __init__(self, max_size: int = 512, seed: SeedLike = None) -> None:
        check_positive_int(max_size, "max_size")
        self.max_size = int(max_size)
        self._rng = as_generator(seed)
        self._examples: List[TrainingExample] = []
        self._completed_jobs: int = 0

    def __len__(self) -> int:
        return len(self._examples)

    @property
    def completed_jobs(self) -> int:
        """Number of completed jobs folded into the store."""
        return self._completed_jobs

    @property
    def examples(self) -> Sequence[TrainingExample]:
        """Read-only view of the stored examples."""
        return tuple(self._examples)

    def add_examples(self, examples: Sequence[TrainingExample]) -> None:
        """Add pre-built examples and re-thin if the pool overflows."""
        self._examples.extend(examples)
        self._thin()

    def add_completed_job(self, job: Job) -> int:
        """Harvest a completed job's log; returns the number of examples added."""
        return self.add_completed_examples(examples_from_job(job))

    def add_completed_examples(self, examples: Sequence[TrainingExample]) -> int:
        """Fold one completed job's pre-harvested examples into the pool.

        Split out from :meth:`add_completed_job` so callers that also
        need the raw examples (the predictor's incremental GPR update)
        harvest the job log exactly once.
        """
        self._completed_jobs += 1
        self.add_examples(examples)
        return len(examples)

    def _thin(self) -> None:
        if len(self._examples) <= self.max_size:
            return
        keep = self._rng.choice(
            len(self._examples), size=self.max_size, replace=False
        )
        keep.sort()
        self._examples = [self._examples[int(i)] for i in keep]

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the pool as ``(X, y)`` numpy arrays for regression."""
        if not self._examples:
            return (
                np.empty((0, NUM_FEATURES), dtype=float),
                np.empty((0,), dtype=float),
            )
        X = np.asarray([e.features for e in self._examples], dtype=float)
        y = np.asarray([e.epochs_remaining for e in self._examples], dtype=float)
        return X, y

    def clear(self) -> None:
        """Drop everything (used between independent experiments)."""
        self._examples.clear()
        self._completed_jobs = 0
