"""Beta distributions for modelling training-progress uncertainty.

The paper chooses Beta distributions because progress lives in (0, 1),
the shape is flexible, and ``Be(α, β)`` is unimodal when ``α, β > 1``
(which the threshold functions in Eq. 6 guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np
from scipy import stats

from repro.utils.rng import SeedLike, as_generator

#: Clip samples away from exactly 0 and 1 so downstream uses of
#: ``1/ρ - 1`` (Eq. 7) stay finite.
SAMPLE_EPS = 1e-9


@dataclass(frozen=True)
class BetaDistribution:
    """A Beta distribution with shape parameters clamped to ``>= 1``.

    Eq. 6 applies a threshold so that ``α, β >= 1``; we enforce the same
    guard at construction.  All the usual queries (mean, variance,
    quantiles, sampling, log-pdf) are provided.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        alpha = float(self.alpha)
        beta = float(self.beta)
        if not np.isfinite(alpha) or not np.isfinite(beta):
            raise ValueError(f"Beta parameters must be finite, got ({alpha}, {beta})")
        object.__setattr__(self, "alpha", max(1.0, alpha))
        object.__setattr__(self, "beta", max(1.0, beta))

    # -- moments ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Expected progress ``α / (α + β)``."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def variance(self) -> float:
        """Variance of the distribution."""
        a, b = self.alpha, self.beta
        return (a * b) / ((a + b) ** 2 * (a + b + 1.0))

    @property
    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def mode(self) -> Optional[float]:
        """Mode of the distribution (None when it is not unique)."""
        a, b = self.alpha, self.beta
        if a > 1.0 and b > 1.0:
            return (a - 1.0) / (a + b - 2.0)
        if a == 1.0 and b == 1.0:
            return None  # uniform: every point is a mode
        if a <= 1.0 < b:
            return 0.0
        if b <= 1.0 < a:
            return 1.0
        return None

    # -- quantiles / intervals ---------------------------------------------------------

    def quantile(self, q: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Inverse CDF at probability ``q``."""
        result = stats.beta.ppf(q, self.alpha, self.beta)
        if np.isscalar(q):
            return float(result)
        return np.asarray(result)

    def confidence_interval(self, level: float = 0.9) -> Tuple[float, float]:
        """Central credible interval at the given level (Fig. 6's band)."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        tail = (1.0 - level) / 2.0
        return (float(self.quantile(tail)), float(self.quantile(1.0 - tail)))

    # -- sampling / densities -----------------------------------------------------------

    def sample(self, rng: SeedLike = None, size: Optional[int] = None):
        """Draw one sample (or ``size`` samples) of the progress ρ.

        Samples are clipped away from exactly 0 and 1 so downstream uses
        of ``1/ρ - 1`` (Eq. 7) stay finite.
        """
        rng = as_generator(rng)
        draw = rng.beta(self.alpha, self.beta, size=size)
        draw = np.clip(draw, SAMPLE_EPS, 1.0 - SAMPLE_EPS)
        if size is None:
            return float(draw)
        return draw

    def logpdf(self, x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Log density at ``x``."""
        result = stats.beta.logpdf(x, self.alpha, self.beta)
        if np.isscalar(x):
            return float(result)
        return np.asarray(result)

    def pdf(self, x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Density at ``x``."""
        result = stats.beta.pdf(x, self.alpha, self.beta)
        if np.isscalar(x):
            return float(result)
        return np.asarray(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BetaDistribution(alpha={self.alpha:.3f}, beta={self.beta:.3f})"


#: The uniform ``Be(1, 1)`` prior used for jobs without a fitted
#: distribution.  Hoisted to module level so hot paths do not allocate a
#: fresh distribution per unseen job per call.
UNIFORM_PRIOR = BetaDistribution(1.0, 1.0)


def sample_many(
    distributions: Sequence[BetaDistribution], rng: SeedLike = None
) -> np.ndarray:
    """Draw one sample from each distribution with a single RNG call.

    ``rng.beta`` with array parameters consumes the underlying bit
    stream element by element, so the result is bit-identical to calling
    :meth:`BetaDistribution.sample` sequentially on the same generator —
    just without the per-call Python overhead.
    """
    rng = as_generator(rng)
    n = len(distributions)
    if n == 0:
        return np.empty(0, dtype=float)
    alphas = np.fromiter((d.alpha for d in distributions), dtype=float, count=n)
    betas = np.fromiter((d.beta for d in distributions), dtype=float, count=n)
    draws = rng.beta(alphas, betas)
    return np.clip(draws, SAMPLE_EPS, 1.0 - SAMPLE_EPS)
