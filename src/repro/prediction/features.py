"""Feature extraction for the progress predictor.

Footnote 1 of the paper lists the input features of the predictor:

``x = { ‖D‖, L_initial, Y_processed, r_loss, A }``

where ``‖D‖`` is the epoch size (samples per epoch), ``L_initial`` the
loss before training, ``Y_processed`` the samples processed so far,
``r_loss = 1 - current loss / initial loss`` the loss-improvement ratio,
and ``A`` the current validation accuracy.  All of these are observable
online from the per-epoch progress uploads.

Sizes span several orders of magnitude, so ``‖D‖`` and ``Y_processed``
enter in log space and everything is standardised by a
:class:`FeatureScaler` before regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.jobs.job import Job

#: Names of the predictor features, in the order produced by the extractors.
FEATURE_NAMES = (
    "log_dataset_size",
    "initial_loss",
    "log_samples_processed",
    "loss_improvement_ratio",
    "accuracy",
)

NUM_FEATURES = len(FEATURE_NAMES)


def feature_vector(
    dataset_size: float,
    initial_loss: float,
    samples_processed: float,
    loss_improvement_ratio: float,
    accuracy: float,
) -> np.ndarray:
    """Assemble a raw feature vector from observable quantities."""
    return np.array(
        [
            np.log1p(max(0.0, float(dataset_size))),
            float(initial_loss),
            np.log1p(max(0.0, float(samples_processed))),
            float(np.clip(loss_improvement_ratio, -1.0, 1.0)),
            float(np.clip(accuracy, 0.0, 1.0)),
        ],
        dtype=float,
    )


def job_features(job: Job) -> np.ndarray:
    """Extract the predictor features from a live :class:`Job`."""
    return feature_vector(
        dataset_size=job.dataset_size,
        initial_loss=job.initial_loss,
        samples_processed=job.samples_processed,
        loss_improvement_ratio=job.loss_improvement_ratio,
        accuracy=job.current_accuracy,
    )


@dataclass
class FeatureScaler:
    """Standardise features to zero mean / unit variance.

    Constant features keep a unit scale so they pass through unchanged
    (avoids division by ~0 for e.g. a trace where every job has the same
    dataset size).
    """

    mean_: Optional[np.ndarray] = field(default=None, repr=False)
    scale_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray) -> "FeatureScaler":
        """Learn per-feature mean and scale from the rows of ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            raise ValueError("cannot fit a FeatureScaler on an empty matrix")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation (row-wise)."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("FeatureScaler.transform called before fit")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        X = np.atleast_2d(X)
        out = (X - self.mean_) / self.scale_
        return out[0] if single else out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its transformation."""
        return self.fit(X).transform(X)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.mean_ is not None
