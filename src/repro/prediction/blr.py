"""Bayesian linear regression for the epochs-to-process predictor.

Eq. 6 of the paper writes the predicted shape parameter literally as
``β = max(Ax + b, 1)`` — a linear model in the features — fitted by
*"maximizing the log marginal likelihood"*.  Bayesian linear regression
with the evidence approximation does exactly that: the weight-prior
precision ``α`` and noise precision ``β_noise`` are chosen to maximise
the marginal likelihood of the data, and predictions come with a
predictive variance.

This is the lightweight alternative backend to the Gaussian-process
regressor in :mod:`repro.prediction.gpr`; the ablation benchmark
compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive, check_positive_int


@dataclass
class BayesianLinearRegression:
    """Evidence-maximising Bayesian linear regression.

    Parameters
    ----------
    max_evidence_iterations:
        Iterations of the fixed-point updates for the prior precision
        ``alpha`` and the noise precision ``beta``.
    tolerance:
        Convergence threshold on the change of the hyper-parameters.
    """

    max_evidence_iterations: int = 100
    tolerance: float = 1e-5
    alpha_: float = field(default=1.0, init=False)
    beta_: float = field(default=1.0, init=False)
    mean_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    covariance_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    log_marginal_likelihood_: float = field(default=float("-inf"), init=False)

    def __post_init__(self) -> None:
        check_positive_int(self.max_evidence_iterations, "max_evidence_iterations")
        check_positive(self.tolerance, "tolerance")

    # -- fitting --------------------------------------------------------------------

    @staticmethod
    def _design(X: np.ndarray) -> np.ndarray:
        """Prepend a bias column to the feature matrix."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.hstack([np.ones((X.shape[0], 1)), X])

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BayesianLinearRegression":
        """Fit to ``(X, y)`` by maximising the log marginal likelihood."""
        Phi = self._design(X)
        y = np.asarray(y, dtype=float).ravel()
        if Phi.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {Phi.shape[0]} rows but y has {y.shape[0]} targets"
            )
        if Phi.shape[0] == 0:
            raise ValueError("cannot fit BayesianLinearRegression on no data")
        n, d = Phi.shape
        eigvals = np.linalg.eigvalsh(Phi.T @ Phi)
        alpha, beta = self.alpha_, self.beta_
        mean = np.zeros(d)
        cov = np.eye(d)
        for _ in range(self.max_evidence_iterations):
            # Posterior over the weights given current hyper-parameters.
            precision = alpha * np.eye(d) + beta * Phi.T @ Phi
            cov = np.linalg.inv(precision)
            mean = beta * cov @ Phi.T @ y
            # Evidence (MacKay) fixed-point updates.
            lam = beta * eigvals
            gamma = float(np.sum(lam / (lam + alpha)))
            new_alpha = gamma / max(float(mean @ mean), 1e-12)
            residual = y - Phi @ mean
            denom = max(n - gamma, 1e-12)
            new_beta = denom / max(float(residual @ residual), 1e-12)
            if abs(new_alpha - alpha) < self.tolerance and abs(new_beta - beta) < self.tolerance:
                alpha, beta = new_alpha, new_beta
                break
            alpha, beta = new_alpha, new_beta
        self.alpha_, self.beta_ = float(alpha), float(beta)
        self.mean_, self.covariance_ = mean, cov
        self.log_marginal_likelihood_ = self._log_marginal_likelihood(Phi, y)
        return self

    def _log_marginal_likelihood(self, Phi: np.ndarray, y: np.ndarray) -> float:
        n, d = Phi.shape
        alpha, beta = self.alpha_, self.beta_
        precision = alpha * np.eye(d) + beta * Phi.T @ Phi
        mean = self.mean_
        residual = y - Phi @ mean
        e_mn = 0.5 * beta * float(residual @ residual) + 0.5 * alpha * float(mean @ mean)
        sign, logdet = np.linalg.slogdet(precision)
        if sign <= 0:
            return float("-inf")
        return float(
            0.5 * d * np.log(alpha)
            + 0.5 * n * np.log(beta)
            - e_mn
            - 0.5 * logdet
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    # -- prediction -----------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has succeeded at least once."""
        return self.mean_ is not None

    @property
    def weights(self) -> np.ndarray:
        """Posterior-mean weights ``[b, A_1, ..., A_d]`` (bias first)."""
        if self.mean_ is None:
            raise RuntimeError("model is not fitted")
        return self.mean_.copy()

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | Tuple[np.ndarray, np.ndarray]:
        """Predictive mean (and optionally standard deviation) at ``X``."""
        if self.mean_ is None or self.covariance_ is None:
            raise RuntimeError("model is not fitted")
        Phi = self._design(X)
        mean = Phi @ self.mean_
        if not return_std:
            return mean
        var = 1.0 / self.beta_ + np.einsum("ij,jk,ik->i", Phi, self.covariance_, Phi)
        return mean, np.sqrt(np.maximum(var, 1e-12))

    def predict_one(self, x: np.ndarray) -> Tuple[float, float]:
        """Predict mean and std for a single feature vector."""
        mean, std = self.predict(np.atleast_2d(x), return_std=True)
        return float(mean[0]), float(std[0])

    def predict_mean_one(self, x: np.ndarray) -> float:
        """Predictive mean only for a single feature vector.

        Skips the posterior-covariance contraction the variance needs —
        hot-path callers that never read the uncertainty use this.
        """
        return float(self.predict(np.atleast_2d(x))[0])
