"""The online progress predictor (Eq. 6–7, Fig. 6).

For every job ``j`` the predictor produces a Beta distribution over its
training progress

``ρ_j ~ Be(α_j, β_j)``  with  ``α_j = Y_processed / ‖D‖``  and
``β_j = max(f(x_j), 1)``

where ``f`` is a regression model (Gaussian-process or Bayesian linear)
over the observable features of footnote 1, re-fitted every time a job
completes.  From a progress value ρ the remaining workload follows
Eq. 7: ``Y = Y_processed (1/ρ − 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Literal, Optional, Tuple

import numpy as np

from repro.jobs.job import Job
from repro.prediction.beta import BetaDistribution
from repro.prediction.blr import BayesianLinearRegression
from repro.prediction.features import FeatureScaler, job_features
from repro.prediction.gpr import GaussianProcessRegression
from repro.prediction.history import HistoryStore, TrainingExample, examples_from_job
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class PredictorConfig:
    """Configuration of the online progress predictor.

    Parameters
    ----------
    backend:
        ``"gpr"`` (the paper's footnote-1 choice) or ``"blr"`` (the
        literal linear model of Eq. 6); the ablation bench compares them.
    history_size:
        Bound on the training-log pool (§3.2.1 keeps it "limited").
    refit_every:
        Re-fit the regression after this many completed jobs (1 = the
        paper's "each time when a job is completed").
    prior_epochs_remaining:
        Epochs-to-process assumed before any job has completed (cold
        start) or for a job with no measurable progress yet.
    min_completed_jobs_to_fit:
        Do not fit a regression until this many jobs have completed.
    refit_policy:
        ``"always"`` (the paper-faithful default) rebuilds the regression
        from scratch — subsample, L-BFGS-B hyper-parameter search, O(n³)
        factorisation — at every due completion.  ``"incremental"``
        folds new completions into a fitted GPR by a rank-1 Cholesky row
        append (O(n²), no hyper-parameter search) and only runs the full
        refit every ``refit_interval``-th update, when the per-point log
        marginal likelihood degrades by more than ``refit_lml_drop``
        nats since the last full fit, or when the rank-1 update is not
        applicable (unfitted model, BLR backend, training-set cap hit).
    refit_interval:
        Full-refit cadence (in model updates) under the incremental
        policy.
    refit_lml_drop:
        Per-point log-marginal-likelihood degradation (nats) that
        triggers an early full refit under the incremental policy.
    """

    backend: Literal["gpr", "blr"] = "gpr"
    history_size: int = 256
    refit_every: int = 1
    prior_epochs_remaining: float = 15.0
    min_completed_jobs_to_fit: int = 2
    refit_policy: Literal["always", "incremental"] = "always"
    refit_interval: int = 8
    refit_lml_drop: float = 1.0

    def __post_init__(self) -> None:
        if self.backend not in ("gpr", "blr"):
            raise ValueError(f"backend must be 'gpr' or 'blr', got {self.backend!r}")
        check_positive_int(self.history_size, "history_size")
        check_positive_int(self.refit_every, "refit_every")
        check_positive(self.prior_epochs_remaining, "prior_epochs_remaining")
        check_positive_int(self.min_completed_jobs_to_fit, "min_completed_jobs_to_fit")
        if self.refit_policy not in ("always", "incremental"):
            raise ValueError(
                f"refit_policy must be 'always' or 'incremental', got {self.refit_policy!r}"
            )
        check_positive_int(self.refit_interval, "refit_interval")
        check_positive(self.refit_lml_drop, "refit_lml_drop")


class ProgressPredictor:
    """Online predictor of per-job progress distributions."""

    def __init__(self, config: Optional[PredictorConfig] = None, seed: SeedLike = None) -> None:
        self.config = config or PredictorConfig()
        self._rng = as_generator(seed)
        self.history = HistoryStore(max_size=self.config.history_size, seed=self._rng)
        self._scaler = FeatureScaler()
        self._model = self._make_model()
        self._fitted = False
        self._completions_since_fit = 0
        self.fit_count = 0
        self.partial_fit_count = 0
        self._updates_since_full_fit = 0
        #: Examples observed since the model last changed (fed to the
        #: next rank-1 append so non-due completions are not dropped).
        self._pending_examples: List[TrainingExample] = []
        self._lml_per_point_at_fit: Optional[float] = None
        #: Cumulative wall-clock spent in full refits / rank-1 updates
        #: (read by profiling: ``ONESScheduler.profile_phases``).
        self.refit_seconds = 0.0
        self.partial_fit_seconds = 0.0

    def _make_model(self):
        if self.config.backend == "gpr":
            return GaussianProcessRegression(random_state=int(self._rng.integers(2**31)))
        return BayesianLinearRegression()

    # -- online updates -----------------------------------------------------------------

    def observe_completion(self, job: Job) -> None:
        """Fold a completed job's training log into the history and maybe re-fit.

        Under ``refit_policy="always"`` every due completion triggers a
        full :meth:`refit`.  Under ``"incremental"`` due completions are
        folded into the fitted GPR by :meth:`~repro.prediction.gpr.
        GaussianProcessRegression.partial_fit`; the full refit runs on
        the ``refit_interval`` cadence, when the per-point log marginal
        likelihood degraded past ``refit_lml_drop``, or whenever the
        rank-1 update is not applicable.
        """
        examples = examples_from_job(job)
        self.history.add_completed_examples(examples)
        self._pending_examples.extend(examples)
        self._completions_since_fit += 1
        enough_jobs = self.history.completed_jobs >= self.config.min_completed_jobs_to_fit
        due = self._completions_since_fit >= self.config.refit_every
        if not (enough_jobs and due):
            return
        if self.config.refit_policy == "always" or not self._fitted:
            self.refit()
            return
        if self._updates_since_full_fit + 1 >= self.config.refit_interval:
            self.refit()
            return
        if not self._partial_update(self._pending_examples) or self._lml_degraded():
            self.refit()

    def refit(self) -> bool:
        """Re-fit the regression on the current history; returns success."""
        X, y = self.history.as_arrays()
        if X.shape[0] < 2:
            return False
        start = perf_counter()
        X_std = self._scaler.fit_transform(X)
        self._model = self._make_model()
        self._model.fit(X_std, y)
        self.refit_seconds += perf_counter() - start
        self._fitted = True
        self._completions_since_fit = 0
        self._updates_since_full_fit = 0
        self._pending_examples.clear()
        self.fit_count += 1
        lml = getattr(self._model, "log_marginal_likelihood_", None)
        points = getattr(self._model, "num_training_points", 0)
        self._lml_per_point_at_fit = (
            float(lml) / points if lml is not None and points else None
        )
        return True

    def _partial_update(self, examples: List[TrainingExample]) -> bool:
        """Rank-1-append the pending examples; returns success.

        ``examples`` is everything observed since the model last changed
        (with ``refit_every > 1`` that spans several completions), so the
        appended stream tracks the observed stream.  When the model's
        training set is at (or near) its ``max_training_points`` cap,
        only the examples that still fit are appended — a saturated model
        simply coasts until the next scheduled full refit re-subsamples
        the whole history pool (which still holds everything, appended or
        not).  Returns ``False`` (caller runs a full refit) only when the
        backend has no rank-1 update at all or the append is numerically
        degenerate.
        """
        partial_fit = getattr(self._model, "partial_fit", None)
        if partial_fit is None or not examples:
            return False
        capacity = int(
            getattr(self._model, "max_training_points", 0)
            - getattr(self._model, "num_training_points", 0)
        )
        if capacity <= 0:
            # Saturated: count the update and coast until the next full
            # refit folds the (still history-pooled) new data back in.
            self._completions_since_fit = 0
            self._updates_since_full_fit += 1
            self._pending_examples.clear()
            return True
        examples = examples[:capacity]
        X = np.asarray([e.features for e in examples], dtype=float)
        y = np.asarray([e.epochs_remaining for e in examples], dtype=float)
        start = perf_counter()
        ok = bool(partial_fit(self._scaler.transform(X), y))
        self.partial_fit_seconds += perf_counter() - start
        if ok:
            self._completions_since_fit = 0
            self._updates_since_full_fit += 1
            self.partial_fit_count += 1
            self._pending_examples.clear()
        return ok

    def _lml_degraded(self) -> bool:
        """Whether the incremental posterior's evidence fell too far."""
        if self._lml_per_point_at_fit is None:
            return False
        lml = getattr(self._model, "log_marginal_likelihood_", None)
        points = getattr(self._model, "num_training_points", 0)
        if lml is None or not points:
            return False
        return (
            float(lml) / points
            < self._lml_per_point_at_fit - self.config.refit_lml_drop
        )

    @property
    def is_fitted(self) -> bool:
        """Whether a regression model is available (otherwise the prior is used)."""
        return self._fitted

    # -- per-job predictions ---------------------------------------------------------------

    def predict_epochs_remaining(self, job: Job) -> Tuple[float, float]:
        """Predict (mean, std) of the epochs the job still needs."""
        if not self._fitted:
            return float(self.config.prior_epochs_remaining), float(
                self.config.prior_epochs_remaining
            )
        x = self._scaler.transform(job_features(job))
        mean, std = self._model.predict_one(x)
        return float(max(mean, 0.0)), float(max(std, 0.0))

    def mean_epochs_remaining(self, job: Job) -> float:
        """Predictive mean of the epochs the job still needs.

        The uncertainty-free sibling of :meth:`predict_epochs_remaining`:
        identical mean (same kernel row, same ``alpha``), but skips the
        O(n²) variance solve — this is what the per-event Beta progress
        distributions call.
        """
        if not self._fitted:
            return float(self.config.prior_epochs_remaining)
        x = self._scaler.transform(job_features(job))
        return float(max(self._model.predict_mean_one(x), 0.0))

    def progress_distribution(self, job: Job) -> BetaDistribution:
        """The Beta distribution of the job's training progress (Eq. 6)."""
        alpha = max(1.0, job.processed_epochs())
        beta = max(1.0, self.mean_epochs_remaining(job))
        return BetaDistribution(alpha=alpha, beta=beta)

    def progress_distributions(self, jobs: Dict[str, Job]) -> Dict[str, BetaDistribution]:
        """Progress distributions for a collection of jobs keyed by job id."""
        return {job_id: self.progress_distribution(job) for job_id, job in jobs.items()}

    # -- remaining workload / time (Eq. 5 and 7) ----------------------------------------------

    def remaining_workload(self, job: Job, progress: Optional[float] = None) -> float:
        """Estimated remaining samples ``Y_j`` (Eq. 7).

        If ``progress`` is omitted the mean of the progress distribution
        is used.  Jobs that have not processed a single sample yet fall
        back to ``prior_epochs_remaining`` full epochs, so that placement
        decisions still see a non-zero cost for brand-new jobs.
        """
        dist = self.progress_distribution(job)
        rho = float(progress) if progress is not None else dist.mean
        rho = float(np.clip(rho, 1e-9, 1.0 - 1e-9))
        processed = job.samples_processed
        if processed <= 0:
            return float(self.config.prior_epochs_remaining * job.dataset_size)
        return float(processed * (1.0 / rho - 1.0))

    def remaining_time(
        self, job: Job, throughput: float, progress: Optional[float] = None
    ) -> float:
        """Estimated remaining time ``T_j = Y_j / X_j`` (Eq. 5)."""
        check_positive(throughput, "throughput")
        return self.remaining_workload(job, progress) / throughput

    def sample_progress(self, job: Job) -> float:
        """Draw one progress sample ρ_j (used by Algorithm 1)."""
        return self.progress_distribution(job).sample(self._rng)

    # -- introspection for Fig. 6 ------------------------------------------------------------

    def prediction_curve(
        self, job: Job, sample_points: int = 50, ci_level: float = 0.9
    ) -> Dict[str, np.ndarray]:
        """Predicted progress (mean and CI) as a function of processed samples.

        Reproduces the structure of Fig. 6: for a grid of "samples
        processed" values we report the mean of the predictive Beta
        distribution and its central credible interval.
        """
        check_positive_int(sample_points, "sample_points")
        grid = np.linspace(0.0, max(job.samples_processed, job.dataset_size), sample_points)
        means, lows, highs = [], [], []
        for processed in grid:
            alpha = max(1.0, processed / job.dataset_size)
            if self._fitted:
                # Evaluate the regression at the hypothetical progress point.
                from repro.prediction.features import feature_vector

                x = feature_vector(
                    dataset_size=job.dataset_size,
                    initial_loss=job.initial_loss,
                    samples_processed=processed,
                    loss_improvement_ratio=job.loss_improvement_ratio,
                    accuracy=job.current_accuracy,
                )
                mean_remaining = self._model.predict_mean_one(self._scaler.transform(x))
                beta = max(1.0, mean_remaining)
            else:
                beta = max(1.0, self.config.prior_epochs_remaining)
            dist = BetaDistribution(alpha=alpha, beta=beta)
            low, high = dist.confidence_interval(ci_level)
            means.append(dist.mean)
            lows.append(low)
            highs.append(high)
        return {
            "samples_processed": grid,
            "mean": np.asarray(means),
            "ci_low": np.asarray(lows),
            "ci_high": np.asarray(highs),
        }
