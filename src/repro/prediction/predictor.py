"""The online progress predictor (Eq. 6–7, Fig. 6).

For every job ``j`` the predictor produces a Beta distribution over its
training progress

``ρ_j ~ Be(α_j, β_j)``  with  ``α_j = Y_processed / ‖D‖``  and
``β_j = max(f(x_j), 1)``

where ``f`` is a regression model (Gaussian-process or Bayesian linear)
over the observable features of footnote 1, re-fitted every time a job
completes.  From a progress value ρ the remaining workload follows
Eq. 7: ``Y = Y_processed (1/ρ − 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional, Tuple

import numpy as np

from repro.jobs.job import Job
from repro.prediction.beta import BetaDistribution
from repro.prediction.blr import BayesianLinearRegression
from repro.prediction.features import FeatureScaler, job_features
from repro.prediction.gpr import GaussianProcessRegression
from repro.prediction.history import HistoryStore
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class PredictorConfig:
    """Configuration of the online progress predictor.

    Parameters
    ----------
    backend:
        ``"gpr"`` (the paper's footnote-1 choice) or ``"blr"`` (the
        literal linear model of Eq. 6); the ablation bench compares them.
    history_size:
        Bound on the training-log pool (§3.2.1 keeps it "limited").
    refit_every:
        Re-fit the regression after this many completed jobs (1 = the
        paper's "each time when a job is completed").
    prior_epochs_remaining:
        Epochs-to-process assumed before any job has completed (cold
        start) or for a job with no measurable progress yet.
    min_completed_jobs_to_fit:
        Do not fit a regression until this many jobs have completed.
    """

    backend: Literal["gpr", "blr"] = "gpr"
    history_size: int = 256
    refit_every: int = 1
    prior_epochs_remaining: float = 15.0
    min_completed_jobs_to_fit: int = 2

    def __post_init__(self) -> None:
        if self.backend not in ("gpr", "blr"):
            raise ValueError(f"backend must be 'gpr' or 'blr', got {self.backend!r}")
        check_positive_int(self.history_size, "history_size")
        check_positive_int(self.refit_every, "refit_every")
        check_positive(self.prior_epochs_remaining, "prior_epochs_remaining")
        check_positive_int(self.min_completed_jobs_to_fit, "min_completed_jobs_to_fit")


class ProgressPredictor:
    """Online predictor of per-job progress distributions."""

    def __init__(self, config: Optional[PredictorConfig] = None, seed: SeedLike = None) -> None:
        self.config = config or PredictorConfig()
        self._rng = as_generator(seed)
        self.history = HistoryStore(max_size=self.config.history_size, seed=self._rng)
        self._scaler = FeatureScaler()
        self._model = self._make_model()
        self._fitted = False
        self._completions_since_fit = 0
        self.fit_count = 0

    def _make_model(self):
        if self.config.backend == "gpr":
            return GaussianProcessRegression(random_state=int(self._rng.integers(2**31)))
        return BayesianLinearRegression()

    # -- online updates -----------------------------------------------------------------

    def observe_completion(self, job: Job) -> None:
        """Fold a completed job's training log into the history and maybe re-fit."""
        self.history.add_completed_job(job)
        self._completions_since_fit += 1
        enough_jobs = self.history.completed_jobs >= self.config.min_completed_jobs_to_fit
        due = self._completions_since_fit >= self.config.refit_every
        if enough_jobs and due:
            self.refit()

    def refit(self) -> bool:
        """Re-fit the regression on the current history; returns success."""
        X, y = self.history.as_arrays()
        if X.shape[0] < 2:
            return False
        X_std = self._scaler.fit_transform(X)
        self._model = self._make_model()
        self._model.fit(X_std, y)
        self._fitted = True
        self._completions_since_fit = 0
        self.fit_count += 1
        return True

    @property
    def is_fitted(self) -> bool:
        """Whether a regression model is available (otherwise the prior is used)."""
        return self._fitted

    # -- per-job predictions ---------------------------------------------------------------

    def predict_epochs_remaining(self, job: Job) -> Tuple[float, float]:
        """Predict (mean, std) of the epochs the job still needs."""
        if not self._fitted:
            return float(self.config.prior_epochs_remaining), float(
                self.config.prior_epochs_remaining
            )
        x = self._scaler.transform(job_features(job))
        mean, std = self._model.predict_one(x)
        return float(max(mean, 0.0)), float(max(std, 0.0))

    def progress_distribution(self, job: Job) -> BetaDistribution:
        """The Beta distribution of the job's training progress (Eq. 6)."""
        alpha = max(1.0, job.processed_epochs())
        mean_remaining, _ = self.predict_epochs_remaining(job)
        beta = max(1.0, mean_remaining)
        return BetaDistribution(alpha=alpha, beta=beta)

    def progress_distributions(self, jobs: Dict[str, Job]) -> Dict[str, BetaDistribution]:
        """Progress distributions for a collection of jobs keyed by job id."""
        return {job_id: self.progress_distribution(job) for job_id, job in jobs.items()}

    # -- remaining workload / time (Eq. 5 and 7) ----------------------------------------------

    def remaining_workload(self, job: Job, progress: Optional[float] = None) -> float:
        """Estimated remaining samples ``Y_j`` (Eq. 7).

        If ``progress`` is omitted the mean of the progress distribution
        is used.  Jobs that have not processed a single sample yet fall
        back to ``prior_epochs_remaining`` full epochs, so that placement
        decisions still see a non-zero cost for brand-new jobs.
        """
        dist = self.progress_distribution(job)
        rho = float(progress) if progress is not None else dist.mean
        rho = float(np.clip(rho, 1e-9, 1.0 - 1e-9))
        processed = job.samples_processed
        if processed <= 0:
            return float(self.config.prior_epochs_remaining * job.dataset_size)
        return float(processed * (1.0 / rho - 1.0))

    def remaining_time(
        self, job: Job, throughput: float, progress: Optional[float] = None
    ) -> float:
        """Estimated remaining time ``T_j = Y_j / X_j`` (Eq. 5)."""
        check_positive(throughput, "throughput")
        return self.remaining_workload(job, progress) / throughput

    def sample_progress(self, job: Job) -> float:
        """Draw one progress sample ρ_j (used by Algorithm 1)."""
        return self.progress_distribution(job).sample(self._rng)

    # -- introspection for Fig. 6 ------------------------------------------------------------

    def prediction_curve(
        self, job: Job, sample_points: int = 50, ci_level: float = 0.9
    ) -> Dict[str, np.ndarray]:
        """Predicted progress (mean and CI) as a function of processed samples.

        Reproduces the structure of Fig. 6: for a grid of "samples
        processed" values we report the mean of the predictive Beta
        distribution and its central credible interval.
        """
        check_positive_int(sample_points, "sample_points")
        grid = np.linspace(0.0, max(job.samples_processed, job.dataset_size), sample_points)
        means, lows, highs = [], [], []
        for processed in grid:
            alpha = max(1.0, processed / job.dataset_size)
            if self._fitted:
                # Evaluate the regression at the hypothetical progress point.
                from repro.prediction.features import feature_vector

                x = feature_vector(
                    dataset_size=job.dataset_size,
                    initial_loss=job.initial_loss,
                    samples_processed=processed,
                    loss_improvement_ratio=job.loss_improvement_ratio,
                    accuracy=job.current_accuracy,
                )
                mean_remaining, _ = self._model.predict_one(self._scaler.transform(x))
                beta = max(1.0, mean_remaining)
            else:
                beta = max(1.0, self.config.prior_epochs_remaining)
            dist = BetaDistribution(alpha=alpha, beta=beta)
            low, high = dist.confidence_interval(ci_level)
            means.append(dist.mean)
            lows.append(low)
            highs.append(high)
        return {
            "samples_processed": grid,
            "mean": np.asarray(means),
            "ci_low": np.asarray(lows),
            "ci_high": np.asarray(highs),
        }
