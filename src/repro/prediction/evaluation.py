"""Evaluation utilities for the progress predictor.

§3.2.1 motivates the predictor but the paper never reports its raw
accuracy; to make the ablation between the GPR and Bayesian-linear
backends quantitative, these helpers compute standard regression and
calibration metrics on held-out completed jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.jobs.job import Job
from repro.prediction.beta import BetaDistribution
from repro.prediction.features import feature_vector
from repro.prediction.history import examples_from_job
from repro.prediction.predictor import PredictorConfig, ProgressPredictor
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive_int


@dataclass(frozen=True)
class PredictorEvaluation:
    """Accuracy / calibration metrics of a fitted predictor on held-out jobs."""

    backend: str
    num_train_jobs: int
    num_eval_points: int
    mae_epochs_remaining: float
    rmse_epochs_remaining: float
    mean_interval_width: float
    interval_coverage: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for tabular reports."""
        return {
            "backend": self.backend,
            "train_jobs": self.num_train_jobs,
            "eval_points": self.num_eval_points,
            "mae_epochs_remaining": self.mae_epochs_remaining,
            "rmse_epochs_remaining": self.rmse_epochs_remaining,
            "mean_90ci_width": self.mean_interval_width,
            "coverage_90ci": self.interval_coverage,
        }


def _true_progress_points(job: Job) -> List[Tuple[np.ndarray, float, float]]:
    """(features, epochs_remaining, true_progress) for every logged epoch."""
    points = []
    total_samples = job.samples_processed
    for example in examples_from_job(job):
        processed = float(np.expm1(example.features[2]))
        progress = processed / max(total_samples, 1.0)
        points.append(
            (np.asarray(example.features, dtype=float), example.epochs_remaining, progress)
        )
    return points


def evaluate_predictor(
    train_jobs: Sequence[Job],
    eval_jobs: Sequence[Job],
    backend: str = "gpr",
    confidence: float = 0.9,
    seed: SeedLike = 0,
) -> PredictorEvaluation:
    """Fit on ``train_jobs`` and score predictions on ``eval_jobs``.

    Two aspects are scored:

    * **epochs-remaining regression** — MAE/RMSE of the regression target
      ``β``-approximates (Eq. 6),
    * **progress calibration** — the width of the central credible
      interval of the predicted Beta progress distribution and the
      fraction of true progress values it covers.
    """
    check_in_range(confidence, "confidence", 0.0, 1.0, inclusive=False)
    if not train_jobs:
        raise ValueError("evaluate_predictor requires at least one training job")
    if not eval_jobs:
        raise ValueError("evaluate_predictor requires at least one evaluation job")

    predictor = ProgressPredictor(
        PredictorConfig(backend=backend, min_completed_jobs_to_fit=1), seed=seed
    )
    for job in train_jobs:
        predictor.observe_completion(job)
    if not predictor.is_fitted:
        predictor.refit()

    abs_errors: List[float] = []
    sq_errors: List[float] = []
    widths: List[float] = []
    covered: List[bool] = []
    for job in eval_jobs:
        for features, epochs_remaining, progress in _true_progress_points(job):
            x = predictor._scaler.transform(features)
            mean_remaining, _ = predictor._model.predict_one(x)
            mean_remaining = max(mean_remaining, 0.0)
            abs_errors.append(abs(mean_remaining - epochs_remaining))
            sq_errors.append((mean_remaining - epochs_remaining) ** 2)
            processed_epochs = float(np.expm1(features[2])) / max(job.dataset_size, 1)
            dist = BetaDistribution(max(1.0, processed_epochs), max(1.0, mean_remaining))
            low, high = dist.confidence_interval(confidence)
            widths.append(high - low)
            covered.append(bool(low - 1e-9 <= progress <= high + 1e-9))

    return PredictorEvaluation(
        backend=backend,
        num_train_jobs=len(train_jobs),
        num_eval_points=len(abs_errors),
        mae_epochs_remaining=float(np.mean(abs_errors)),
        rmse_epochs_remaining=float(np.sqrt(np.mean(sq_errors))),
        mean_interval_width=float(np.mean(widths)),
        interval_coverage=float(np.mean(covered)),
    )


def cross_validate_backends(
    jobs: Sequence[Job],
    backends: Sequence[str] = ("gpr", "blr"),
    folds: int = 3,
    seed: SeedLike = 0,
) -> Dict[str, PredictorEvaluation]:
    """K-fold comparison of predictor backends over a pool of completed jobs.

    Returns the evaluation of each backend averaged over folds (the fold
    with the most evaluation points breaks ties for the reported object).
    """
    check_positive_int(folds, "folds")
    jobs = [job for job in jobs if job.is_completed]
    if len(jobs) < max(2, folds):
        raise ValueError(
            f"need at least {max(2, folds)} completed jobs for {folds}-fold evaluation"
        )
    rng = as_generator(seed)
    order = list(rng.permutation(len(jobs)))
    fold_assignment = [order[i::folds] for i in range(folds)]

    results: Dict[str, PredictorEvaluation] = {}
    for backend in backends:
        maes, rmses, widths, coverages, points = [], [], [], [], []
        for fold in range(folds):
            eval_idx = set(fold_assignment[fold])
            train = [jobs[i] for i in range(len(jobs)) if i not in eval_idx]
            evaluate = [jobs[i] for i in sorted(eval_idx)]
            if not train or not evaluate:
                continue
            evaluation = evaluate_predictor(train, evaluate, backend=backend, seed=rng)
            maes.append(evaluation.mae_epochs_remaining)
            rmses.append(evaluation.rmse_epochs_remaining)
            widths.append(evaluation.mean_interval_width)
            coverages.append(evaluation.interval_coverage)
            points.append(evaluation.num_eval_points)
        results[backend] = PredictorEvaluation(
            backend=backend,
            num_train_jobs=len(jobs),
            num_eval_points=int(np.sum(points)) if points else 0,
            mae_epochs_remaining=float(np.mean(maes)) if maes else float("nan"),
            rmse_epochs_remaining=float(np.mean(rmses)) if rmses else float("nan"),
            mean_interval_width=float(np.mean(widths)) if widths else float("nan"),
            interval_coverage=float(np.mean(coverages)) if coverages else float("nan"),
        )
    return results
