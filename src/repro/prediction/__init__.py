"""Online training-progress prediction (§3.2.1 of the paper).

ONES cannot know a job's remaining workload ``Y_j`` in advance, so it
models each job's *training progress* ``ρ ∈ (0, 1)`` as a Beta random
variable ``Be(α, β)`` whose shape parameters approximate the epochs
already processed (``α``) and the epochs still to process (``β``).  The
``β`` parameter is predicted by a regression model fitted online to the
training logs of completed jobs (footnote 1 describes a GPR predictor).

* :mod:`repro.prediction.beta` — guarded Beta distributions.
* :mod:`repro.prediction.features` — the feature vector
  ``x = {‖D‖, L_initial, Y_processed, r_loss, A}``.
* :mod:`repro.prediction.history` — the bounded, uniformly-subsampled
  training-log dataset built from completed jobs.
* :mod:`repro.prediction.blr` — Bayesian linear regression (the literal
  ``β = max(Ax + b, 1)`` model of Eq. 6).
* :mod:`repro.prediction.gpr` — Gaussian-process regression fitted by
  maximising the log marginal likelihood.
* :mod:`repro.prediction.predictor` — the online predictor that ties the
  pieces together and produces per-job Beta distributions and remaining
  workload estimates (Eq. 7).
"""

from repro.prediction.beta import BetaDistribution
from repro.prediction.features import FEATURE_NAMES, FeatureScaler, job_features
from repro.prediction.history import HistoryStore, TrainingExample
from repro.prediction.blr import BayesianLinearRegression
from repro.prediction.gpr import GaussianProcessRegression
from repro.prediction.predictor import ProgressPredictor, PredictorConfig
from repro.prediction.evaluation import (
    PredictorEvaluation,
    cross_validate_backends,
    evaluate_predictor,
)

__all__ = [
    "PredictorEvaluation",
    "cross_validate_backends",
    "evaluate_predictor",
    "BetaDistribution",
    "FEATURE_NAMES",
    "FeatureScaler",
    "job_features",
    "HistoryStore",
    "TrainingExample",
    "BayesianLinearRegression",
    "GaussianProcessRegression",
    "ProgressPredictor",
    "PredictorConfig",
]
