"""Gaussian-process regression for the epochs-to-process predictor.

Footnote 1 of the paper calls the progress model a *GPR predictor*, and
§3.2.1 says it is trained *"by maximizing the log marginal likelihood"*
each time a job completes.  This module implements a standard GP
regressor from scratch with

* an RBF (squared-exponential) kernel with a per-dataset signal variance
  and length scale,
* a Gaussian noise term,
* hyper-parameter fitting by L-BFGS-B on the negative log marginal
  likelihood (with analytic gradients),
* predictive mean and variance via the Cholesky factorisation,
* an incremental :meth:`~GaussianProcessRegression.partial_fit` that
  appends training points by a rank-1 (block) Cholesky row update in
  O(n²·m) instead of re-factorising in O(n³) — the fast path behind the
  predictor's ``refit_policy="incremental"``.

Only numpy/scipy are used; no external ML framework is required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import optimize
from scipy.linalg import solve_triangular

from repro.utils.validation import check_positive, check_positive_int


def squared_distances(X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between the rows of X1 and X2."""
    X1 = np.atleast_2d(np.asarray(X1, dtype=float))
    X2 = np.atleast_2d(np.asarray(X2, dtype=float))
    sq_dists = (
        np.sum(X1**2, axis=1)[:, None]
        + np.sum(X2**2, axis=1)[None, :]
        - 2.0 * X1 @ X2.T
    )
    return np.maximum(sq_dists, 0.0)


def rbf_from_sq_dists(
    sq_dists: np.ndarray, signal_variance: float, length_scale: float
) -> np.ndarray:
    """Squared-exponential kernel from precomputed squared distances."""
    return signal_variance * np.exp(-0.5 * sq_dists / (length_scale**2))


def rbf_kernel(
    X1: np.ndarray, X2: np.ndarray, signal_variance: float, length_scale: float
) -> np.ndarray:
    """Squared-exponential kernel matrix between the rows of X1 and X2."""
    return rbf_from_sq_dists(squared_distances(X1, X2), signal_variance, length_scale)


@dataclass
class GaussianProcessRegression:
    """GP regression with an RBF kernel and evidence-maximised hyper-parameters.

    Parameters
    ----------
    length_scale / signal_variance / noise_variance:
        Initial kernel hyper-parameters (optimised during :meth:`fit`
        unless ``optimize_hyperparameters`` is False).
    optimize_hyperparameters:
        Whether to run L-BFGS-B on the negative log marginal likelihood.
    max_training_points:
        GP fitting is O(n³); larger history pools are subsampled to this
        size (the HistoryStore already bounds the pool, this is a second
        safety net).
    normalize_y:
        Centre/scale the targets before fitting (restored at prediction).
    """

    length_scale: float = 1.0
    signal_variance: float = 1.0
    noise_variance: float = 0.1
    optimize_hyperparameters: bool = True
    max_training_points: int = 128
    max_optimizer_iterations: int = 30
    normalize_y: bool = True
    jitter: float = 1e-8
    random_state: Optional[int] = None

    X_train_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    y_train_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _alpha: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _chol: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _y_mean: float = field(default=0.0, init=False)
    _y_scale: float = field(default=1.0, init=False)
    log_marginal_likelihood_: float = field(default=float("-inf"), init=False)
    _fit_count: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.length_scale, "length_scale")
        check_positive(self.signal_variance, "signal_variance")
        check_positive(self.noise_variance, "noise_variance")
        check_positive_int(self.max_training_points, "max_training_points")
        check_positive_int(self.max_optimizer_iterations, "max_optimizer_iterations")
        check_positive(self.jitter, "jitter")

    # -- marginal likelihood --------------------------------------------------------------

    def _nll_terms(
        self, log_params: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[float, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Shared NLL prefix: ``(nll, L, alpha, sq_dists, K_rbf)``.

        Single implementation of the kernel build, Cholesky and alpha
        solve, so :meth:`_nll_value` is *structurally* the value
        :meth:`_nll_and_grad` computes rather than a hand-kept copy.
        Returns ``None`` when the kernel is not positive definite.
        """
        signal, length, noise = np.exp(log_params)
        n = X.shape[0]
        sq_dists = squared_distances(X, X)
        K_rbf = rbf_from_sq_dists(sq_dists, signal, length)
        K = K_rbf + (noise + self.jitter) * np.eye(n)
        try:
            L = np.linalg.cholesky(K)
        except np.linalg.LinAlgError:
            return None
        alpha = np.linalg.solve(L.T, np.linalg.solve(L, y))
        nll = (
            0.5 * float(y @ alpha)
            + float(np.sum(np.log(np.diag(L))))
            + 0.5 * n * np.log(2.0 * np.pi)
        )
        return float(nll), L, alpha, sq_dists, K_rbf

    def _nll_and_grad(
        self, log_params: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Negative log marginal likelihood and its gradient in log-space.

        The squared distances are computed once and reused for both the
        kernel and the length-scale gradient.  (They used to be recovered
        from the kernel itself via ``log(K_rbf / signal)`` clamped at
        1e-300, which silently zeroed — i.e. got *wrong* — the gradient
        contribution of point pairs distant enough for the kernel to
        underflow.)
        """
        terms = self._nll_terms(log_params, X, y)
        if terms is None:
            return 1e25, np.zeros(3)
        nll, L, alpha, sq_dists, K_rbf = terms
        _, length, noise = np.exp(log_params)
        n = X.shape[0]
        # Gradients: dNLL/dθ = -0.5 tr((αα^T - K^{-1}) dK/dθ)
        K_inv = np.linalg.solve(L.T, np.linalg.solve(L, np.eye(n)))
        outer = np.outer(alpha, alpha) - K_inv
        dK_dsignal = K_rbf  # d/d log(signal) since K ∝ signal
        dK_dlength = K_rbf * sq_dists / (length**2)  # d/d log(length)
        dK_dnoise = noise * np.eye(n)  # d/d log(noise)
        grad = -0.5 * np.array(
            [
                float(np.sum(outer * dK_dsignal)),
                float(np.sum(outer * dK_dlength)),
                float(np.sum(outer * dK_dnoise)),
            ]
        )
        return nll, grad

    def _nll_value(self, log_params: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """Negative log marginal likelihood only (no O(n³) gradient terms).

        Exactly the value :meth:`_nll_and_grad` returns (same code path)
        minus the ``K⁻¹`` computation the gradient needs, which is the
        single most expensive part of an evaluation.
        """
        terms = self._nll_terms(log_params, X, y)
        return 1e25 if terms is None else terms[0]

    # -- fitting --------------------------------------------------------------------------

    def _subsample_rng(self) -> np.random.Generator:
        """RNG for the training-pool subsample.

        The first fit reproduces the historical stream
        (``default_rng(random_state)``); later fits on the *same*
        instance mix the fit counter into the seed so successive refits
        see different subsamples instead of silently reusing identical
        ``rng.choice`` indices forever.
        """
        if self.random_state is None:
            return np.random.default_rng()
        if self._fit_count == 0:
            return np.random.default_rng(self.random_state)
        return np.random.default_rng((self.random_state, self._fit_count))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegression":
        """Fit to ``(X, y)``, optimising hyper-parameters by marginal likelihood."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} targets")
        if X.shape[0] == 0:
            raise ValueError("cannot fit GaussianProcessRegression on no data")
        if X.shape[0] > self.max_training_points:
            rng = self._subsample_rng()
            keep = rng.choice(X.shape[0], size=self.max_training_points, replace=False)
            X, y = X[keep], y[keep]
        self._fit_count += 1
        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            self._y_scale = float(np.std(y))
            if self._y_scale < 1e-12:
                self._y_scale = 1.0
        else:
            self._y_mean, self._y_scale = 0.0, 1.0
        y_std = (y - self._y_mean) / self._y_scale

        if self.optimize_hyperparameters and X.shape[0] >= 3:
            x0 = np.log([self.signal_variance, self.length_scale, self.noise_variance])
            result = optimize.minimize(
                self._nll_and_grad,
                x0,
                args=(X, y_std),
                jac=True,
                method="L-BFGS-B",
                bounds=[(-6.0, 6.0)] * 3,
                options={"maxiter": self.max_optimizer_iterations},
            )
            if np.all(np.isfinite(result.x)):
                self.signal_variance, self.length_scale, self.noise_variance = [
                    float(v) for v in np.exp(result.x)
                ]
        n = X.shape[0]
        K = rbf_kernel(X, X, self.signal_variance, self.length_scale)
        K += (self.noise_variance + self.jitter) * np.eye(n)
        self._chol = np.linalg.cholesky(K)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, y_std)
        )
        self.X_train_, self.y_train_ = X, y_std
        self.log_marginal_likelihood_ = -self._nll_value(
            np.log([self.signal_variance, self.length_scale, self.noise_variance]),
            X,
            y_std,
        )
        return self

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> bool:
        """Append training points via a rank-1 (block) Cholesky row update.

        With ``L`` the Cholesky factor of the current ``n×n`` kernel, the
        factor of the kernel extended by ``m`` new points is::

            [[L,    0  ],
             [W.T,  L_s]]   with  W = L⁻¹ K(X_old, X_new)
                            and   L_s = chol(K(X_new, X_new) + σ²I - W.T W)

        so appending costs O(n²·m) (two triangular solves dominate)
        instead of the O(n³) full re-factorisation, and the posterior
        ``alpha`` is refreshed by two O(n²) triangular solves.  The
        hyper-parameters (and the target normalisation) are *not*
        re-optimised — that is the caller's job on its full-refit cadence
        (see ``PredictorConfig.refit_policy``).

        Returns ``False`` — leaving the model untouched — when the update
        cannot be applied: the model is unfitted, the extended set would
        exceed ``max_training_points``, or the Schur complement is not
        positive definite (numerically degenerate batch).  Callers fall
        back to a full :meth:`fit`.
        """
        if self._alpha is None or self.X_train_ is None or self._chol is None:
            return False
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} targets")
        m = X.shape[0]
        if m == 0:
            return True
        n = self.X_train_.shape[0]
        if n + m > self.max_training_points:
            return False
        y_std_new = (y - self._y_mean) / self._y_scale
        K_cross = rbf_kernel(self.X_train_, X, self.signal_variance, self.length_scale)
        W = solve_triangular(self._chol, K_cross, lower=True)
        K_new = rbf_kernel(X, X, self.signal_variance, self.length_scale)
        K_new += (self.noise_variance + self.jitter) * np.eye(m)
        schur = K_new - W.T @ W
        try:
            L_s = np.linalg.cholesky(schur)
        except np.linalg.LinAlgError:
            return False
        chol = np.zeros((n + m, n + m))
        chol[:n, :n] = self._chol
        chol[n:, :n] = W.T
        chol[n:, n:] = L_s
        self._chol = chol
        self.X_train_ = np.vstack([self.X_train_, X])
        self.y_train_ = np.concatenate([self.y_train_, y_std_new])
        z = solve_triangular(self._chol, self.y_train_, lower=True)
        self._alpha = solve_triangular(self._chol.T, z, lower=False)
        total = n + m
        self.log_marginal_likelihood_ = -(
            0.5 * float(self.y_train_ @ self._alpha)
            + float(np.sum(np.log(np.diag(self._chol))))
            + 0.5 * total * math.log(2.0 * math.pi)
        )
        return True

    # -- prediction ------------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether the model has been fitted."""
        return self._alpha is not None

    @property
    def num_training_points(self) -> int:
        """Size of the (possibly incrementally grown) training set."""
        return 0 if self.X_train_ is None else int(self.X_train_.shape[0])

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | Tuple[np.ndarray, np.ndarray]:
        """Predictive mean (and optionally std) at the rows of ``X``."""
        if self._alpha is None or self.X_train_ is None or self._chol is None:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        K_star = rbf_kernel(X, self.X_train_, self.signal_variance, self.length_scale)
        mean = K_star @ self._alpha
        mean = mean * self._y_scale + self._y_mean
        if not return_std:
            return mean
        v = np.linalg.solve(self._chol, K_star.T)
        var = self.signal_variance + self.noise_variance - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12) * (self._y_scale**2)
        return mean, np.sqrt(var)

    def predict_one(self, x: np.ndarray) -> Tuple[float, float]:
        """Predict mean and std for a single feature vector."""
        mean, std = self.predict(np.atleast_2d(x), return_std=True)
        return float(mean[0]), float(std[0])

    def predict_mean_one(self, x: np.ndarray) -> float:
        """Predictive mean only for a single feature vector.

        Skips the triangular solve the predictive variance needs — the
        mean is one kernel row times the cached ``alpha`` — so hot-path
        callers that never look at the uncertainty (the per-event Beta
        progress distributions) do O(n·d) work instead of O(n²).
        """
        return float(self.predict(np.atleast_2d(x))[0])
