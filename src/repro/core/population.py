"""Population management for the evolutionary search.

The search keeps a population ``G_i`` of candidate schedules.  §3.2.2
suggests a population as large as the cluster, initialised by "running a
random job on each GPU" — i.e. each initial candidate assigns every GPU
an independently drawn random job, and the refresh/reorder operators
immediately clean the result up into something executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.operators import EvolutionContext, fill_idle_gpus, refresh, reorder
from repro.core.schedule import IDLE, Schedule, stack_genomes, unique_schedules
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


@dataclass
class Population:
    """A bag of candidate schedules with de-duplication helpers."""

    members: List[Schedule] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def add(self, candidate: Schedule) -> None:
        """Append a candidate (duplicates allowed; dedup happens at selection)."""
        self.members.append(candidate)

    def extend(self, candidates: Iterable[Schedule]) -> None:
        """Append several candidates."""
        self.members.extend(candidates)

    def unique(self) -> List[Schedule]:
        """Distinct genomes, preserving first-seen order."""
        return unique_schedules(self.members)

    def genome_matrix(self) -> np.ndarray:
        """The population's genomes stacked into a ``(K, num_gpus)`` matrix.

        This is the array the vectorised scoring engine consumes; it is
        also handy for bulk population analytics.
        """
        return stack_genomes(self.members)

    def reindexed(self, roster: Sequence[str]) -> "Population":
        """Re-express every member over a new roster (completed jobs vanish)."""
        return Population([member.reindexed(roster) for member in self.members])

    def diversity(self) -> float:
        """Fraction of members with distinct genomes (1.0 = all unique)."""
        if not self.members:
            return 0.0
        return len(self.unique()) / len(self.members)


def initial_population(
    ctx: EvolutionContext,
    size: int,
    current: Optional[Schedule] = None,
    seed: SeedLike = None,
) -> Population:
    """Build ``G_0``: random job-per-GPU candidates, refreshed and packed.

    When ``current`` (the currently deployed schedule) is given it is
    seeded into the population so the search can never regress below the
    status quo.

    The batched engine builds ``G_0`` directly as a genome matrix
    (:func:`repro.core.evolution_batched.initial_population_genomes`)
    with the exact same RNG draws; both initialisers are parity-tested
    to produce identical populations.
    """
    check_positive_int(size, "size")
    rng = as_generator(seed if seed is not None else ctx.rng)
    population = Population()
    num_jobs = len(ctx.roster)
    for _ in range(size):
        if num_jobs == 0:
            genome = np.full(ctx.num_gpus, IDLE, dtype=np.int64)
        else:
            genome = rng.integers(0, num_jobs, size=ctx.num_gpus).astype(np.int64)
        candidate = Schedule(roster=ctx.roster, genome=genome)
        candidate = reorder(refresh(candidate, ctx))
        population.add(candidate)
    if current is not None:
        population.add(reorder(refresh(current.reindexed(ctx.roster), ctx)))
    return population
