"""Batched evolution operators over the stacked genome matrix.

PR 1 vectorised Eq. 8 scoring; this module does the same for the
*operators* of §3.2.2, which dominated the per-event cost afterwards:
one generation of the search — refresh, idle-GPU fill, uniform
crossover + repair, uniform mutation, reorder, elitist selection — runs
as array expressions over the population's ``(K, num_gpus)`` int64
genome matrix (the same representation
:func:`repro.core.scoring.score_population` consumes).  No intermediate
:class:`~repro.core.schedule.Schedule` objects are materialised; the
single winning candidate per scheduler event is rebuilt through
:meth:`Schedule.from_validated_genome`, which skips ``__post_init__``
re-validation on internally-produced genomes.

**Differential contract.**  Every function here is *move-for-move and
bit-for-bit identical* to the scalar reference in
:mod:`repro.core.operators` / :mod:`repro.core.evolution`:

* identical genomes out of every operator for identical genomes in,
* identical RNG consumption — stochastic draws (crossover parent pairs
  and masks, mutation victim picks and per-job preemption coins, the
  shared progress samples of Algorithm 1) are issued in exactly the
  scalar call order, so a batched and a scalar run started from the
  same seed produce identical populations, scores, selection order and
  full simulation trajectories,
* identical tie-breaking — the greedy fill reproduces the scalar
  first-strictly-smaller scan (including its behaviour on ``inf`` and
  ``nan`` utilisation deltas).

``tests/test_core_evolution_batched.py`` asserts all of this per
operator and over multi-event simulations; the
``EvolutionConfig.batched_operators`` flag (default on) switches
:class:`~repro.core.evolution.EvolutionarySearch` between the two
implementations, and the scalar path remains the readable reference.

The batched path requires an :class:`EvolutionContext` with a
``throughput_table`` (the ONES scheduler always provides one); contexts
with only a generic ``throughput_fn`` fall back to the scalar
operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.operators import EvolutionContext
from repro.core.schedule import IDLE, Schedule
from repro.core.scoring import (
    population_gpu_counts,
    population_node_crossings,
    sample_progress,
    score_count_matrix,
)
from repro.core.scoring_incremental import (
    IncrementalScoringEngine,
    ScoreDecomposition,
    build_decomposition,
    fill_idle_decomposed,
    reorder_decomposed,
    score_decomposition,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


# --- context vectors -----------------------------------------------------------------------------


def _desired_vector(ctx: EvolutionContext) -> np.ndarray:
    """``desired_gpus`` per roster job (loop-invariant within an event)."""
    return np.array([ctx.desired_gpus(j) for j in ctx.roster], dtype=np.int64)


def _remaining_vector(ctx: EvolutionContext) -> np.ndarray:
    """Expected remaining samples ``Y_j`` per roster job."""
    return np.array(
        [
            ctx.remaining_workload.get(j, float(ctx.jobs[j].dataset_size))
            for j in ctx.roster
        ],
        dtype=float,
    )


def _require_table(ctx: EvolutionContext):
    table = ctx.throughput_table
    if table is None:
        raise ValueError(
            "the batched operators need an EvolutionContext with a "
            "throughput_table; use the scalar reference operators otherwise"
        )
    return table


# --- genome-matrix primitives --------------------------------------------------------------------


def reindex_genomes(
    genomes: np.ndarray, old_roster: Sequence[str], new_roster: Sequence[str]
) -> np.ndarray:
    """Re-express a genome matrix over ``new_roster``; missing jobs go idle.

    The batched equivalent of :meth:`Schedule.reindexed` applied to
    every row at once (completed jobs vanish from candidates).
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    old_roster = tuple(old_roster)
    new_index = {job_id: i for i, job_id in enumerate(new_roster)}
    # One extra slot so the IDLE gene (-1) maps to itself via end-indexing.
    mapping = np.full(len(old_roster) + 1, IDLE, dtype=np.int64)
    for i, job_id in enumerate(old_roster):
        mapping[i] = new_index.get(job_id, IDLE)
    return mapping[genomes]


def population_node_presence(
    genomes: np.ndarray, num_jobs: int, node_of: np.ndarray
) -> np.ndarray:
    """Per-(candidate, job) server-occupancy flags, ``(K, num_jobs, num_nodes)``.

    ``presence[k, j, n]`` is True when candidate ``k`` places job ``j``
    on at least one GPU of server ``n`` — the state the greedy fill
    tracks to price moves on the correct locality plane of the
    throughput table.
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    num_candidates, num_gpus = genomes.shape
    node_of = np.asarray(node_of, dtype=np.int64)
    num_nodes = int(node_of.max()) + 1 if node_of.size else 1
    presence = np.zeros((num_candidates, num_jobs, num_nodes), dtype=bool)
    if num_jobs == 0 or num_gpus == 0:
        return presence
    placed = genomes != IDLE
    rows = np.broadcast_to(
        np.arange(num_candidates, dtype=np.int64)[:, None], genomes.shape
    )
    nodes = np.broadcast_to(node_of[None, :], genomes.shape)
    presence[rows[placed], genomes[placed], nodes[placed]] = True
    return presence


def reorder_population(genomes: np.ndarray) -> np.ndarray:
    """Batched :func:`repro.core.operators.reorder` (Fig. 10).

    Each row's workers are packed contiguously in order of the job's
    first occurrence, idle genes at the end — implemented as one stable
    argsort per matrix on "first occurrence position of my gene" keys.
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    num_candidates, num_gpus = genomes.shape
    if num_candidates == 0 or num_gpus == 0 or not (genomes != IDLE).any():
        return genomes.copy()
    num_values = int(genomes.max()) + 1
    onehot = genomes[:, :, None] == np.arange(num_values)[None, None, :]
    present = onehot.any(axis=1)
    first_pos = np.where(present, onehot.argmax(axis=1), num_gpus)
    gene = np.where(genomes == IDLE, 0, genomes)
    keys = np.take_along_axis(first_pos, gene, axis=1)
    keys = np.where(genomes == IDLE, num_gpus, keys)
    order = np.argsort(keys, axis=1, kind="stable")
    return np.take_along_axis(genomes, order, axis=1)


def unique_rows(genomes: np.ndarray) -> np.ndarray:
    """Distinct genome rows, preserving first-seen order.

    The matrix counterpart of :func:`repro.core.schedule.unique_schedules`
    (selection de-duplicates the candidate pool the same way).
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    if genomes.shape[0] <= 1:
        return genomes.copy()
    _, first_seen = np.unique(genomes, axis=0, return_index=True)
    return genomes[np.sort(first_seen)]


# --- fill / refresh ------------------------------------------------------------------------------


def fill_idle_population(
    genomes: np.ndarray,
    ctx: EvolutionContext,
    desired: Optional[np.ndarray] = None,
    remaining: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched greedy idle-GPU fill (§3.2.2), all candidates in lockstep.

    Per round, every still-unfinished candidate evaluates every
    waiting/growable job's utilisation delta (``Δφ_j·Y_j``) in one
    ``(K_active, num_jobs)`` array expression — throughputs gathered
    from the context's :class:`~repro.jobs.throughput.ThroughputTable`,
    placement locality tracked through per-(candidate, job)
    server-occupancy flags — and applies its best move.  Candidates
    that run out of idle GPUs or eligible jobs drop out; rounds repeat
    until every candidate is done.

    Move-for-move identical to
    :func:`repro.core.operators.fill_idle_gpus` on a table-backed
    context, including the scalar scan's tie-breaking (first job in
    roster order wins ties; ``nan`` deltas — from ``inf − inf`` on
    zero-throughput curves — never displace an incumbent best).

    ``desired`` / ``remaining`` are the per-roster-job vectors of
    :func:`_desired_vector` / :func:`_remaining_vector`; callers running
    several operators per event pass them in to avoid recomputation.
    """
    table = _require_table(ctx)
    genomes = np.array(genomes, dtype=np.int64)
    num_candidates, num_gpus = genomes.shape
    num_jobs = len(ctx.roster)
    if num_candidates == 0 or num_gpus == 0 or num_jobs == 0:
        return genomes
    node_of = np.asarray(table.node_of, dtype=np.int64)
    num_nodes = int(node_of.max()) + 1 if node_of.size else 1
    if desired is None:
        desired = _desired_vector(ctx)
    if remaining is None:
        remaining = _remaining_vector(ctx)

    counts = population_gpu_counts(genomes, num_jobs)
    presence = population_node_presence(genomes, num_jobs, node_of)

    # Ragged per-row idle-GPU lists as a padded matrix: ascending
    # positions in the first n_idle[k] slots, sentinel num_gpus after.
    idle_mask = genomes == IDLE
    n_idle = idle_mask.sum(axis=1)
    slot_order = np.argsort(~idle_mask, axis=1, kind="stable")
    idle_pos = np.where(
        np.arange(num_gpus)[None, :] < n_idle[:, None], slot_order, num_gpus
    )
    node_ext = np.append(node_of, 0)  # sentinel slots masked out below

    rows = np.flatnonzero(n_idle > 0)
    while rows.size:
        # Every array below is sliced to the still-active rows, so late
        # rounds (few unfinished candidates) cost proportionally less.
        counts_a = counts[rows]
        n_idle_a = n_idle[rows]
        eligible = counts_a < desired[None, :]
        has_move = eligible.any(axis=1)
        if not has_move.all():
            rows = rows[has_move]
            if not rows.size:
                break
            counts_a = counts_a[has_move]
            n_idle_a = n_idle_a[has_move]
            eligible = eligible[has_move]
        active = rows.size
        sub_ids = np.arange(active)
        presence_a = presence[rows]
        take = np.minimum(n_idle_a[:, None], desired[None, :] - counts_a)
        take = np.where(eligible, take, 0)

        # Node sets of each row's first-t idle GPUs, for every needed t.
        max_idle = int(n_idle_a.max())
        slot_nodes = node_ext[idle_pos[rows, :max_idle]]
        slot_valid = np.arange(max_idle)[None, :] < n_idle_a[:, None]
        slot_onehot = (
            slot_nodes[:, :, None] == np.arange(num_nodes)[None, None, :]
        ) & slot_valid[:, :, None]
        prefix = np.concatenate(
            [
                np.zeros((active, 1, num_nodes), dtype=bool),
                slot_onehot.cumsum(axis=1) > 0,
            ],
            axis=1,
        )
        grown_nodes = prefix[sub_ids[:, None], take]  # (active, num_jobs, num_nodes)
        after_presence = presence_a | grown_nodes
        crosses_before = presence_a.sum(axis=2) > 1
        crosses_after = after_presence.sum(axis=2) > 1

        # Idle jobs and masked-out entries look up count 0 (prefilled,
        # zero model calls) so lazily-filled table entries match the
        # scalar path's exactly.
        before_counts = np.where(eligible & (counts_a > 0), counts_a, 0)
        after_counts = np.where(eligible, counts_a + take, 0)
        thr_before = table.lookup(before_counts, crosses_before)
        thr_after = table.lookup(after_counts, crosses_after)
        with np.errstate(divide="ignore", invalid="ignore"):
            util_before = np.where(
                before_counts > 0,
                np.where(
                    thr_before > 0,
                    remaining[None, :] * before_counts / thr_before,
                    np.inf,
                ),
                0.0,
            )
            util_after = np.where(
                after_counts > 0,
                np.where(
                    thr_after > 0,
                    remaining[None, :] * after_counts / thr_after,
                    np.inf,
                ),
                0.0,
            )
            delta = util_after - util_before

        # The scalar scan keeps the first strictly-smaller delta in
        # roster order; replicate it exactly, including that a nan first
        # candidate (or an all-inf round) pins the first eligible job.
        ranked = np.where(np.isnan(delta) | ~eligible, np.inf, delta)
        pick = np.argmin(ranked, axis=1)
        row_min = ranked[sub_ids, pick]
        first_eligible = np.argmax(eligible, axis=1)
        keep_first = np.isnan(delta[sub_ids, first_eligible]) | np.isposinf(row_min)
        pick = np.where(keep_first, first_eligible, pick)

        for sub, row in enumerate(rows):
            job = int(pick[sub])
            grabbed = int(take[sub, job])
            slots = idle_pos[row, :grabbed]
            genomes[row, slots] = job
            counts[row, job] += grabbed
            presence[row, job] |= grown_nodes[sub, job]
            left = int(n_idle[row]) - grabbed
            idle_pos[row, :left] = idle_pos[row, grabbed : grabbed + left]
            idle_pos[row, left:] = num_gpus
            n_idle[row] = left
        rows = rows[n_idle[rows] > 0]
    return genomes


def _place_new_jobs_row(row: np.ndarray, ctx: EvolutionContext) -> None:
    """Refresh step 3 for one genome row, in place (rare: arrival events).

    Mirrors the scalar operator exactly: every brand-new job gets one
    GPU in roster order, FIFO over the ascending idle list, stealing the
    last GPU of the longest-running victim when none are idle.
    """
    roster = ctx.roster
    counts = np.bincount(row[row != IDLE], minlength=len(roster))
    index = {job_id: i for i, job_id in enumerate(roster)}
    new_jobs = [
        job_id
        for job_id in roster
        if job_id in ctx.never_started and counts[index[job_id]] == 0
    ]
    if not new_jobs:
        return
    idle = [int(g) for g in np.flatnonzero(row == IDLE)]
    placed = [roster[int(i)] for i in np.unique(row[row != IDLE])]
    victims = sorted(
        (j for j in placed if j not in ctx.never_started),
        key=lambda j: ctx.executed_time.get(j, 0.0),
        reverse=True,
    )
    for job_id in new_jobs:
        if not idle:
            for victim in victims:
                victim_gpus = np.flatnonzero(row == index[victim])
                if victim_gpus.size:
                    idle.append(int(victim_gpus[-1]))
                    row[victim_gpus[-1]] = IDLE
                    break
        if not idle:
            break  # nothing left to take; remaining new jobs must wait
        row[idle.pop(0)] = index[job_id]


def refresh_population(
    genomes: np.ndarray,
    ctx: EvolutionContext,
    desired: Optional[np.ndarray] = None,
    remaining: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched :func:`repro.core.operators.refresh` over on-roster genomes.

    Shrinking every over-provisioned job to its ``desired_gpus`` (each
    job keeps its first ``desired`` GPUs, exactly like the scalar
    operator) is one occurrence-rank expression over the whole matrix;
    the rare new-job placement runs per affected row; the final idle
    fill is the batched lockstep fill.

    Rows must already index ``ctx.roster`` (use :func:`reindex_genomes`
    on roster changes — the search does this once per event instead of
    once per candidate).
    """
    _require_table(ctx)
    genomes = np.array(genomes, dtype=np.int64)
    num_candidates, num_gpus = genomes.shape
    num_jobs = len(ctx.roster)
    if num_jobs == 0 or num_candidates == 0 or num_gpus == 0:
        return np.full_like(genomes, IDLE)
    if desired is None:
        desired = _desired_vector(ctx)

    # Shrink: occurrence rank of each gene within its (row, job) group;
    # positions ranked past the job's desired count go idle.
    onehot = genomes[:, :, None] == np.arange(num_jobs)[None, None, :]
    occurrence = onehot.cumsum(axis=1)
    gene = np.where(genomes == IDLE, 0, genomes)
    rank = np.take_along_axis(occurrence, gene[:, :, None], axis=2)[:, :, 0] - 1
    genomes[(genomes != IDLE) & (rank >= desired[gene])] = IDLE

    never = np.array([j in ctx.never_started for j in ctx.roster], dtype=bool)
    if never.any():
        counts = population_gpu_counts(genomes, num_jobs)
        for row in np.flatnonzero((never[None, :] & (counts == 0)).any(axis=1)):
            _place_new_jobs_row(genomes[row], ctx)

    return fill_idle_population(genomes, ctx, desired=desired, remaining=remaining)


# --- one full generation -------------------------------------------------------------------------


def _charge(phases: Optional[Dict[str, float]], key: str, start: float) -> float:
    """Accrue ``perf_counter() - start`` onto ``phases[key]``; new mark.

    The per-operator attribution behind the ``--profile`` breakdown
    (``evo_fill`` / ``evo_crossover`` / ``evo_mutation`` /
    ``evo_selection`` plus ``rescore_full`` / ``rescore_delta``); a
    ``None`` phases dict keeps both generation paths timer-free.
    """
    now = perf_counter()
    if phases is not None:
        phases[key] = phases.get(key, 0.0) + (now - start)
    return now


@dataclass(frozen=True)
class GenerationResult:
    """Outcome of one batched generation (the matrix form of ``_iterate``)."""

    #: Surviving population, ordered best → worst, ``(<=K, num_gpus)``.
    population: np.ndarray
    #: Sampled Eq. 8 scores of the survivors (same order).
    scores: np.ndarray
    #: The winning genome ``S*`` (first survivor).
    best_genome: np.ndarray
    #: Its sampled score.
    best_score: float
    #: Distinct candidates scored this generation (after de-duplication).
    pool_size: int


def run_generation(
    genomes: np.ndarray,
    ctx: EvolutionContext,
    config,
    engine: Optional[IncrementalScoringEngine] = None,
    phases: Optional[Dict[str, float]] = None,
) -> GenerationResult:
    """One evolution generation as array ops over the genome matrix.

    Mirrors ``EvolutionarySearch._iterate`` — refresh, crossover pairs +
    repair, mutation, reorder, de-duplication, Algorithm-1 selection —
    consuming ``ctx.rng`` in exactly the scalar call order so batched
    and scalar searches stay on identical trajectories.  ``config`` is
    an :class:`~repro.core.evolution.EvolutionConfig`.

    With ``config.incremental_scoring`` on and an ``engine``
    (:class:`~repro.core.scoring_incremental.IncrementalScoringEngine`)
    supplied, the generation runs through the delta-scoring kernel: the
    per-candidate :class:`~repro.core.scoring_incremental.ScoreDecomposition`
    is maintained through every operator instead of re-derived, with
    bit-identical results (the fuzz parity suite pins this).  ``phases``
    optionally accrues per-operator wall-clock (see :func:`_charge`).
    """
    table = _require_table(ctx)
    if ctx.roster != table.roster:
        raise ValueError(
            "context and throughput table disagree on the roster: "
            f"{ctx.roster} vs {table.roster}"
        )
    genomes = np.asarray(genomes, dtype=np.int64)
    num_gpus = genomes.shape[1]
    num_jobs = len(ctx.roster)
    size = config.resolved_population_size(ctx.num_gpus)
    desired = _desired_vector(ctx) if num_jobs else None
    remaining = _remaining_vector(ctx) if num_jobs else None

    if (
        engine is not None
        and getattr(config, "incremental_scoring", False)
        and num_jobs > 0
        and num_gpus > 0
        and genomes.shape[0] > 0
    ):
        return _run_generation_incremental(
            genomes, ctx, config, engine, phases, table, size, desired, remaining
        )

    mark = perf_counter()
    refreshed = refresh_population(genomes, ctx, desired=desired, remaining=remaining)
    mark = _charge(phases, "evo_fill", mark)
    population_rows = refreshed.shape[0]
    parts = [refreshed]

    # Uniform crossover of randomly chosen parent pairs (Fig. 8).  The
    # parent picks and inheritance masks are drawn per pair, exactly as
    # the scalar loop does; the children's idle-GPU repair consumes no
    # randomness, so it runs as one batched fill afterwards.
    if config.enable_crossover and population_rows >= 2:
        pairs = config.resolved_crossover_pairs(size)
        children = np.empty((2 * pairs, num_gpus), dtype=np.int64)
        for pair in range(pairs):
            first, second = ctx.rng.choice(population_rows, size=2, replace=False)
            mask = ctx.rng.integers(0, 2, size=num_gpus).astype(bool)
            parent_a = refreshed[int(first)]
            parent_b = refreshed[int(second)]
            children[2 * pair] = np.where(mask, parent_a, parent_b)
            children[2 * pair + 1] = np.where(mask, parent_b, parent_a)
        parts.append(
            fill_idle_population(children, ctx, desired=desired, remaining=remaining)
        )
        mark = _charge(phases, "evo_crossover", mark)

    # Uniform mutation (Fig. 9): the member pick and the per-placed-job
    # preemption coins follow the scalar draw order (one vectorised
    # ``random`` call emits the same stream as the per-job scalar
    # draws); the refill is again one batched fill.
    if config.enable_mutation:
        mutated = np.empty((size, num_gpus), dtype=np.int64)
        # Extra slot so the IDLE gene (-1) end-indexes a never-preempted
        # entry in the per-mutation victim mask.
        victim = np.zeros(num_jobs + 1, dtype=bool)
        for m in range(size):
            member = int(ctx.rng.integers(0, population_rows))
            row = refreshed[member]
            placed = np.unique(row[row != IDLE])
            coins = ctx.rng.random(placed.size)
            preempted = placed[coins < config.mutation_rate]
            if preempted.size:
                victim[preempted] = True
                mutated[m] = np.where(victim[row], IDLE, row)
                victim[preempted] = False
            else:
                mutated[m] = row
        parts.append(
            fill_idle_population(mutated, ctx, desired=desired, remaining=remaining)
        )
        mark = _charge(phases, "evo_mutation", mark)

    pool = np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0].copy()
    if config.enable_reorder:
        pool = reorder_population(pool)

    # Selection (Algorithm 1): de-duplicate, score the whole pool on
    # shared progress samples, keep the best K by stable order.
    pool = unique_rows(pool)
    progress = sample_progress(ctx.jobs, ctx.distributions, ctx.rng)
    counts = population_gpu_counts(pool, len(ctx.roster))
    crossings = population_node_crossings(pool, len(ctx.roster), table.node_of)
    scores = score_count_matrix(
        counts, ctx.roster, ctx.jobs, progress, table, crossings
    )
    order = np.argsort(scores, kind="stable")[:size]
    survivors = pool[order]
    _charge(phases, "evo_selection", mark)
    return GenerationResult(
        population=survivors,
        scores=scores[order],
        best_genome=survivors[0].copy(),
        best_score=float(scores[order[0]]),
        pool_size=pool.shape[0],
    )


def _refresh_decomposed(
    genomes: np.ndarray,
    ctx: EvolutionContext,
    decomp: ScoreDecomposition,
    desired: np.ndarray,
    remaining: np.ndarray,
) -> np.ndarray:
    """:func:`refresh_population` maintaining the decomposition.

    The shrink pass — an ``(K, num_gpus, num_jobs)`` occurrence-rank
    one-hot in the non-incremental path — is skipped outright when no
    cached count exceeds its job's desired share (``rank >= desired``
    can then never fire), and otherwise runs only over the
    over-provisioned rows; new-job placement rebuilds just the rows it
    touched.  Genome output is bit-identical to the non-incremental
    refresh.
    """
    genomes = np.array(genomes, dtype=np.int64)
    num_jobs = len(ctx.roster)
    over = decomp.counts > desired[None, :]
    if over.any():
        rows = np.flatnonzero(over.any(axis=1))
        sub = genomes[rows]
        onehot = sub[:, :, None] == np.arange(num_jobs)[None, None, :]
        occurrence = onehot.cumsum(axis=1)
        gene = np.where(sub == IDLE, 0, sub)
        rank = np.take_along_axis(occurrence, gene[:, :, None], axis=2)[:, :, 0] - 1
        sub[(sub != IDLE) & (rank >= desired[gene])] = IDLE
        genomes[rows] = sub
        decomp.rebuild_rows(genomes, rows)

    never = np.array([j in ctx.never_started for j in ctx.roster], dtype=bool)
    if never.any():
        touched = np.flatnonzero((never[None, :] & (decomp.counts == 0)).any(axis=1))
        for row in touched:
            _place_new_jobs_row(genomes[row], ctx)
        decomp.rebuild_rows(genomes, touched)

    return fill_idle_decomposed(genomes, ctx, decomp, desired, remaining)


def _run_generation_incremental(
    genomes: np.ndarray,
    ctx: EvolutionContext,
    config,
    engine: IncrementalScoringEngine,
    phases: Optional[Dict[str, float]],
    table,
    size: int,
    desired: np.ndarray,
    remaining: np.ndarray,
) -> GenerationResult:
    """The delta-scoring twin of :func:`run_generation`'s main body.

    Identical RNG stream, identical genomes, identical scores; the
    difference is purely that counts/crossings flow through the
    engine's cached :class:`ScoreDecomposition` instead of being
    re-derived by global bincounts, presence reductions and one-hots.
    """
    num_gpus = genomes.shape[1]
    num_jobs = len(ctx.roster)

    mark = perf_counter()
    decomp, rebuilt = engine.prepare(genomes, ctx.roster, table)
    mark = _charge(phases, "rescore_full" if rebuilt else "rescore_delta", mark)

    refreshed = _refresh_decomposed(genomes, ctx, decomp, desired, remaining)
    mark = _charge(phases, "evo_fill", mark)
    population_rows = refreshed.shape[0]
    parts = [refreshed]
    decomp_parts = [decomp]

    if config.enable_crossover and population_rows >= 2:
        pairs = config.resolved_crossover_pairs(size)
        children = np.empty((2 * pairs, num_gpus), dtype=np.int64)
        for pair in range(pairs):
            first, second = ctx.rng.choice(population_rows, size=2, replace=False)
            mask = ctx.rng.integers(0, 2, size=num_gpus).astype(bool)
            parent_a = refreshed[int(first)]
            parent_b = refreshed[int(second)]
            children[2 * pair] = np.where(mask, parent_a, parent_b)
            children[2 * pair + 1] = np.where(mask, parent_b, parent_a)
        # Children mix whole parents, so roughly half their cells moved:
        # a fresh build over the 2·pairs new rows is the delta update.
        child_decomp = build_decomposition(children, num_jobs, decomp.node_of)
        parts.append(
            fill_idle_decomposed(children, ctx, child_decomp, desired, remaining)
        )
        decomp_parts.append(child_decomp)
        mark = _charge(phases, "evo_crossover", mark)

    if config.enable_mutation:
        mutated = np.empty((size, num_gpus), dtype=np.int64)
        mut_counts = np.empty((size, num_jobs), dtype=np.int64)
        mut_crosses = np.empty((size, num_jobs), dtype=bool)
        mut_sole = np.empty((size, num_jobs), dtype=np.int64)
        victim = np.zeros(num_jobs + 1, dtype=bool)
        for m in range(size):
            member = int(ctx.rng.integers(0, population_rows))
            row = refreshed[member]
            # Bit-identical to ``np.unique(row[row != IDLE])``: the
            # cached counts row already knows the placed jobs, sorted.
            placed = np.flatnonzero(decomp.counts[member] > 0)
            coins = ctx.rng.random(placed.size)
            preempted = placed[coins < config.mutation_rate]
            mut_counts[m] = decomp.counts[member]
            mut_crosses[m] = decomp.crosses[member]
            mut_sole[m] = decomp.sole_node[member]
            if preempted.size:
                victim[preempted] = True
                mutated[m] = np.where(victim[row], IDLE, row)
                victim[preempted] = False
                # Preempting a job empties exactly its own cells; every
                # other job's placement (and hence cell) is untouched.
                mut_counts[m, preempted] = 0
                mut_crosses[m, preempted] = False
                mut_sole[m, preempted] = -1
            else:
                mutated[m] = row
        mut_decomp = ScoreDecomposition(
            mut_counts, mut_crosses, mut_sole, decomp.node_of
        )
        parts.append(
            fill_idle_decomposed(mutated, ctx, mut_decomp, desired, remaining)
        )
        decomp_parts.append(mut_decomp)
        mark = _charge(phases, "evo_mutation", mark)

    if len(parts) > 1:
        pool = np.concatenate(parts, axis=0)
        pool_decomp = ScoreDecomposition.concatenate(decomp_parts)
    else:
        pool = parts[0].copy()
        pool_decomp = decomp_parts[0]
    if config.enable_reorder:
        pool = reorder_decomposed(pool, pool_decomp, engine.node_monotone)

    # Selection (Algorithm 1) off the cached decomposition: dedup keeps
    # first-seen rows (identical cells regardless of which duplicate's
    # cache row survives), scoring reuses counts/crossings untouched.
    if pool.shape[0] > 1:
        _, first_seen = np.unique(pool, axis=0, return_index=True)
        keep = np.sort(first_seen)
        if keep.size != pool.shape[0]:
            pool = pool[keep]
            pool_decomp = pool_decomp.take(keep)
    progress = sample_progress(ctx.jobs, ctx.distributions, ctx.rng)
    scores = score_decomposition(pool_decomp, ctx.roster, ctx.jobs, progress, table)
    order = np.argsort(scores, kind="stable")[:size]
    survivors = pool[order]
    engine.commit(survivors, pool_decomp.take(order))
    _charge(phases, "evo_selection", mark)
    return GenerationResult(
        population=survivors,
        scores=scores[order],
        best_genome=survivors[0].copy(),
        best_score=float(scores[order[0]]),
        pool_size=pool.shape[0],
    )


def initial_population_genomes(
    ctx: EvolutionContext,
    size: int,
    current: Optional[Schedule] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """``G_0`` as a genome matrix — the batched twin of
    :func:`repro.core.population.initial_population`.

    Per-candidate random job-per-GPU draws (same RNG calls, same order
    as the scalar initialiser), then one batched refresh + reorder over
    the stacked matrix; the currently deployed schedule, when given, is
    appended so the search can never regress below the status quo.
    """
    check_positive_int(size, "size")
    rng = as_generator(seed if seed is not None else ctx.rng)
    num_jobs = len(ctx.roster)
    rows = []
    for _ in range(size):
        if num_jobs == 0:
            rows.append(np.full(ctx.num_gpus, IDLE, dtype=np.int64))
        else:
            rows.append(rng.integers(0, num_jobs, size=ctx.num_gpus).astype(np.int64))
    genomes = np.stack(rows)
    if current is not None:
        reindexed = current.reindexed(ctx.roster).genome
        genomes = np.concatenate([genomes, reindexed[None, :]], axis=0)
    return reorder_population(refresh_population(genomes, ctx))
