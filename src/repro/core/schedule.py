"""The schedule genome (Fig. 1, Eq. 1–2).

A candidate schedule assigns every GPU in the cluster to at most one job
— exactly the genome encoding of Fig. 1.  Batch sizes are not stored per
GPU; instead each placed job's global batch size is *derived* from its
GPU count and its dynamic batch-size limit ``R_j``:

``B_j = clip( min(c_j · max_local_batch_j, R_j, ‖D_j‖), c_j, · )``

i.e. the job uses the largest batch its limit (and device memory) allows
for the GPUs it holds, never less than one sample per worker.  This
keeps the genome equal to "a job id per GPU" — which is what the
evolution operators manipulate — while still making the batch size the
quantity the scheduler orchestrates (through ``R_j``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation, WorkerAssignment
from repro.jobs.job import Job
from repro.jobs.throughput import derive_global_batch, split_batch

#: Genome value meaning "this GPU is idle".
IDLE = -1


@dataclass(frozen=True)
class Schedule:
    """An immutable candidate schedule over a fixed job roster.

    Parameters
    ----------
    roster:
        Tuple of job ids; genome values index into this tuple.
    genome:
        Integer array of length ``num_gpus``; ``genome[i]`` is the roster
        index of the job occupying GPU ``i`` or :data:`IDLE`.
    """

    roster: Tuple[str, ...]
    genome: np.ndarray

    def __post_init__(self) -> None:
        genome = np.asarray(self.genome, dtype=np.int64)
        if genome.ndim != 1:
            raise ValueError("genome must be one-dimensional")
        if len(set(self.roster)) != len(self.roster):
            raise ValueError("roster contains duplicate job ids")
        if genome.size and (genome.max(initial=IDLE) >= len(self.roster)):
            raise ValueError("genome references a job index outside the roster")
        if genome.size and (genome.min(initial=IDLE) < IDLE):
            raise ValueError(f"genome values must be >= {IDLE}")
        genome.setflags(write=False)
        object.__setattr__(self, "genome", genome)
        object.__setattr__(self, "roster", tuple(self.roster))

    # -- constructors ---------------------------------------------------------------------

    @classmethod
    def from_validated_genome(
        cls, roster: Tuple[str, ...], genome: np.ndarray
    ) -> "Schedule":
        """Fast-path constructor for genomes the engine produced itself.

        Skips the :meth:`__post_init__` validation (shape, roster
        uniqueness, value bounds) — the batched evolution engine only
        ever emits genomes derived from already-validated ones, and
        re-validating every intermediate candidate showed up in
        profiles.  The genome is still defensively copied and frozen, so
        a materialised schedule can never alias the engine's mutable
        population matrix.

        Anything user-facing must keep going through the public
        constructor; corrupt genomes fed to :class:`Schedule` directly
        are still rejected (and a regression test pins that behaviour).
        """
        genome = np.array(genome, dtype=np.int64)
        genome.setflags(write=False)
        schedule = cls.__new__(cls)
        object.__setattr__(schedule, "roster", tuple(roster))
        object.__setattr__(schedule, "genome", genome)
        return schedule

    @classmethod
    def empty(cls, roster: Sequence[str], num_gpus: int) -> "Schedule":
        """A schedule with every GPU idle."""
        return cls(roster=tuple(roster), genome=np.full(num_gpus, IDLE, dtype=np.int64))

    @classmethod
    def from_assignment(
        cls, roster: Sequence[str], num_gpus: int, assignment: Mapping[int, str]
    ) -> "Schedule":
        """Build from ``{gpu_id: job_id}``."""
        roster = tuple(roster)
        index = {job_id: i for i, job_id in enumerate(roster)}
        genome = np.full(num_gpus, IDLE, dtype=np.int64)
        for gpu, job_id in assignment.items():
            if job_id not in index:
                raise KeyError(f"job {job_id!r} is not in the roster")
            genome[int(gpu)] = index[job_id]
        return cls(roster=roster, genome=genome)

    @classmethod
    def from_allocation(
        cls, roster: Sequence[str], num_gpus: int, allocation: Allocation
    ) -> "Schedule":
        """Project a deployed :class:`Allocation` onto a (possibly new) roster.

        Workers of jobs that are no longer in the roster (completed jobs)
        are dropped.
        """
        roster = tuple(roster)
        index = {job_id: i for i, job_id in enumerate(roster)}
        genome = np.full(num_gpus, IDLE, dtype=np.int64)
        for gpu, (job_id, _batch) in allocation.as_dict().items():
            if job_id in index and 0 <= gpu < num_gpus:
                genome[gpu] = index[job_id]
        return cls(roster=roster, genome=genome)

    # -- basic queries ---------------------------------------------------------------------

    @property
    def num_gpus(self) -> int:
        """Number of GPUs covered by the genome."""
        return int(self.genome.size)

    def job_id_at(self, gpu: int) -> Optional[str]:
        """Job occupying GPU ``gpu`` (None when idle)."""
        value = int(self.genome[gpu])
        return None if value == IDLE else self.roster[value]

    def gpu_count(self, job_id: str) -> int:
        """Number of GPUs assigned to ``job_id`` (``c_j``)."""
        try:
            idx = self.roster.index(job_id)
        except ValueError:
            return 0
        return int(np.count_nonzero(self.genome == idx))

    def gpu_counts(self) -> Dict[str, int]:
        """GPU counts of every placed job."""
        counts = np.bincount(
            self.genome[self.genome != IDLE], minlength=len(self.roster)
        )
        return {
            self.roster[i]: int(counts[i]) for i in range(len(self.roster)) if counts[i]
        }

    def gpus_of(self, job_id: str) -> List[int]:
        """GPU ids assigned to ``job_id`` (ascending)."""
        try:
            idx = self.roster.index(job_id)
        except ValueError:
            return []
        return [int(g) for g in np.nonzero(self.genome == idx)[0]]

    def placed_jobs(self) -> List[str]:
        """Ids of jobs holding at least one GPU, in roster order."""
        present = np.unique(self.genome[self.genome != IDLE])
        return [self.roster[int(i)] for i in present]

    def idle_gpus(self) -> List[int]:
        """Ids of idle GPUs."""
        return [int(g) for g in np.nonzero(self.genome == IDLE)[0]]

    def waiting_jobs(self) -> List[str]:
        """Roster jobs with no GPU in this candidate."""
        placed = set(self.placed_jobs())
        return [job_id for job_id in self.roster if job_id not in placed]

    # -- batch-size derivation ------------------------------------------------------------------

    def global_batch(self, job: Job, limit: int) -> int:
        """Derived global batch size ``B_j`` for ``job`` under limit ``R_j``."""
        count = self.gpu_count(job.job_id)
        return derive_global_batch(
            count, job.spec.max_local_batch, limit, job.dataset_size
        )

    def local_batches(self, job: Job, limit: int) -> List[int]:
        """Even per-GPU split of the derived global batch."""
        count = self.gpu_count(job.job_id)
        if count == 0:
            return []
        return split_batch(self.global_batch(job, limit), count)

    # -- conversions --------------------------------------------------------------------------------

    def to_allocation(self, jobs: Mapping[str, Job], limits: Mapping[str, int]) -> Allocation:
        """Materialise the genome into a deployable :class:`Allocation`."""
        assignments: Dict[int, WorkerAssignment] = {}
        for job_id in self.placed_jobs():
            job = jobs[job_id]
            limit = int(limits.get(job_id, job.spec.base_batch))
            gpus = self.gpus_of(job_id)
            batches = self.local_batches(job, limit)
            for gpu, batch in zip(gpus, batches):
                assignments[gpu] = WorkerAssignment(job_id=job_id, local_batch=max(1, batch))
        return Allocation(assignments)

    # -- genome manipulation helpers (used by the operators) --------------------------------------------

    def with_genome(self, genome: np.ndarray) -> "Schedule":
        """A copy of this schedule with a different genome (same roster)."""
        return Schedule(roster=self.roster, genome=np.array(genome, dtype=np.int64))

    def reindexed(self, new_roster: Sequence[str]) -> "Schedule":
        """Re-express the genome over ``new_roster``; missing jobs become idle."""
        new_roster = tuple(new_roster)
        mapping = {job_id: i for i, job_id in enumerate(new_roster)}
        genome = np.full(self.num_gpus, IDLE, dtype=np.int64)
        for gpu in range(self.num_gpus):
            job_id = self.job_id_at(gpu)
            if job_id is not None and job_id in mapping:
                genome[gpu] = mapping[job_id]
        return Schedule(roster=new_roster, genome=genome)

    def key(self) -> Tuple[int, ...]:
        """Hashable genome key used for de-duplication inside a population."""
        return tuple(int(v) for v in self.genome)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.roster == other.roster and np.array_equal(self.genome, other.genome)

    def __hash__(self) -> int:
        return hash((self.roster, self.key()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schedule(jobs={self.gpu_counts()}, idle={len(self.idle_gpus())})"


def unique_schedules(candidates: Iterable[Schedule]) -> List[Schedule]:
    """Distinct genomes, preserving first-seen order.

    The shared de-duplication used both by :class:`~repro.core.population.Population`
    and by the selection step of Algorithm 1.
    """
    seen: Dict[Tuple[int, ...], Schedule] = {}
    for candidate in candidates:
        seen.setdefault(candidate.key(), candidate)
    return list(seen.values())


def stack_genomes(candidates: Sequence[Schedule]) -> np.ndarray:
    """Stack a population's genomes into a ``(K, num_gpus)`` int64 matrix.

    All candidates must share the same roster and cluster size — the
    invariant the evolutionary search maintains anyway.
    """
    if not candidates:
        raise ValueError("stack_genomes requires at least one candidate")
    roster = candidates[0].roster
    num_gpus = candidates[0].num_gpus
    for candidate in candidates:
        if candidate.roster != roster:
            raise ValueError("candidates must share the same roster")
        if candidate.num_gpus != num_gpus:
            raise ValueError("candidates must cover the same number of GPUs")
    return np.stack([candidate.genome for candidate in candidates])
