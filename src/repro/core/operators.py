"""The four evolution operators of §3.2.2.

* **refresh** — synchronise a candidate with the real-time job status:
  drop completed jobs, shrink jobs whose batch-size limit ``R_j`` no
  longer justifies their GPU count, give every brand-new job one GPU
  (taking GPUs from the longest-running jobs if none are idle), then fill
  any remaining idle GPUs with the waiting/growing job that improves the
  remaining-utilisation objective the most (probability sampling over the
  per-job utilisation gains).
* **uniform crossover** — child schedules inherit, GPU by GPU, from one
  of two parent schedules chosen uniformly at random (Fig. 8).
* **uniform mutation** — each job of a candidate is preempted with
  probability θ and the freed GPUs are re-filled (Fig. 9).
* **reorder** — workers of the same job are packed onto contiguous GPUs
  in order of first occurrence, restoring all-reduce locality (Fig. 10).

All operators are pure: they take a :class:`Schedule` plus an
:class:`EvolutionContext` and return new :class:`Schedule` objects.

This module is the **scalar reference implementation**.  The production
hot path is :mod:`repro.core.evolution_batched`, which runs the same
operators as array ops over the stacked ``(K, num_gpus)`` genome matrix
and is differentially tested to be move-for-move identical to the
functions below (``tests/test_core_evolution_batched.py``); when
changing an operator's semantics here, change its batched twin in the
same commit and let the parity suite arbitrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.schedule import IDLE, Schedule
from repro.core.scoring import ThroughputFn
from repro.jobs.job import Job
from repro.jobs.throughput import ThroughputTable
from repro.prediction.beta import BetaDistribution
from repro.utils.rng import SeedLike, as_generator


@dataclass
class EvolutionContext:
    """Everything the operators need to know about the current cluster state.

    Attributes
    ----------
    jobs:
        Active (non-completed) jobs keyed by id.
    roster:
        The job ids candidate genomes index into (a fixed ordering of
        ``jobs``).
    limits:
        Current batch-size limits ``R_j``.
    distributions:
        Predictive progress distributions per job.
    throughput_fn:
        Estimator ``(job, schedule) -> samples/s`` for a candidate config.
        May be ``None`` when ``throughput_table`` is given, in which case
        the table's adapter is used.
    remaining_workload:
        Expected remaining samples ``Y_j`` per job (predictor mean).
    executed_time:
        ``T_processed`` per job, used by refresh to take GPUs from the
        longest-running jobs and by the scale-down policy.
    num_gpus:
        Cluster size.
    never_started:
        Ids of jobs that have not yet run at all (the "new jobs" the
        refresh operation must serve first).
    rng:
        Random generator driving all stochastic choices.
    throughput_table:
        Optional per-invocation :class:`~repro.jobs.throughput.ThroughputTable`;
        when present, selection scores the whole population through the
        vectorised engine instead of per-candidate callbacks.
    """

    jobs: Dict[str, Job]
    roster: Tuple[str, ...]
    limits: Dict[str, int]
    distributions: Dict[str, BetaDistribution]
    throughput_fn: Optional[ThroughputFn]
    remaining_workload: Dict[str, float]
    executed_time: Dict[str, float]
    num_gpus: int
    never_started: Set[str] = field(default_factory=set)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    throughput_table: Optional[ThroughputTable] = None

    def __post_init__(self) -> None:
        self.rng = as_generator(self.rng)
        if self.throughput_fn is None:
            if self.throughput_table is None:
                raise ValueError(
                    "EvolutionContext needs a throughput_fn or a throughput_table"
                )
            self.throughput_fn = self.throughput_table.as_throughput_fn()
        missing = [j for j in self.roster if j not in self.jobs]
        if missing:
            raise ValueError(f"roster references unknown jobs: {missing}")

    # -- derived helpers -------------------------------------------------------------------------

    def limit(self, job_id: str) -> int:
        """Batch-size limit of ``job_id`` (defaults to its submitted batch)."""
        job = self.jobs[job_id]
        return int(self.limits.get(job_id, job.spec.base_batch))

    def preferred_local_batch(self, job_id: str) -> int:
        """Per-GPU batch the job was tuned for (bounded by device memory)."""
        job = self.jobs[job_id]
        tuned = max(1, job.spec.base_batch // max(1, job.spec.requested_gpus))
        return int(min(tuned, job.spec.max_local_batch))

    def desired_gpus(self, job_id: str) -> int:
        """GPUs the job can usefully fill at its current limit ``R_j``.

        A job's batch-size limit translates into a worker count through
        the per-GPU batch the job was tuned for: ``c = ceil(R_j / b_j)``.
        This is the scale at which growing the batch actually buys
        throughput (adding GPUs) rather than just inflating the local
        batch on a single device.
        """
        per_gpu = self.preferred_local_batch(job_id)
        desired = math.ceil(self.limit(job_id) / per_gpu)
        return int(max(1, min(desired, self.num_gpus)))

    def mean_progress(self) -> Dict[str, float]:
        """Mean ρ_j of every job's progress distribution."""
        out = {}
        for job_id in self.roster:
            dist = self.distributions.get(job_id)
            out[job_id] = dist.mean if dist is not None else 0.5
        return out

    def _utilization_term(self, job_id: str, count: int, throughput: float) -> float:
        """The single definition of a job's Eq. 8 term at mean progress."""
        if count == 0:
            return 0.0
        if throughput <= 0:
            return float("inf")
        remaining = self.remaining_workload.get(
            job_id, float(self.jobs[job_id].dataset_size)
        )
        return remaining * count / throughput

    def marginal_utilization(self, schedule: Schedule, job_id: str) -> float:
        """The job's term of Eq. 8 under ``schedule`` with mean progress."""
        count = schedule.gpu_count(job_id)
        throughput = (
            self.throughput_fn(self.jobs[job_id], schedule) if count else 0.0
        )
        return self._utilization_term(job_id, count, throughput)

    def utilization_at(
        self, job_id: str, count: int, crosses_nodes: Optional[bool] = None
    ) -> float:
        """:meth:`marginal_utilization` at a hypothetical GPU count.

        Only available with a throughput table (where throughput depends
        on the count and placement locality alone); lets the fill
        operator evaluate moves without materialising candidate
        schedules.
        """
        if count <= 0:
            return 0.0
        throughput = self.throughput_table.throughput(job_id, count, crosses_nodes)
        return self._utilization_term(job_id, count, throughput)


# --- refresh -------------------------------------------------------------------------------------------


def refresh(schedule: Schedule, ctx: EvolutionContext) -> Schedule:
    """Bring a candidate in line with the real-time job status (§3.2.2)."""
    # (1) Completed jobs disappear because the context roster excludes them.
    candidate = schedule.reindexed(ctx.roster)
    genome = np.array(candidate.genome)

    # (2) Shrink jobs whose limit no longer justifies their GPU count.
    for job_id in candidate.placed_jobs():
        desired = ctx.desired_gpus(job_id)
        gpus = candidate.gpus_of(job_id)
        if len(gpus) > desired:
            for gpu in gpus[desired:]:
                genome[gpu] = IDLE
    candidate = candidate.with_genome(genome)

    # (3) Every brand-new job gets one GPU, taking GPUs from the
    # longest-running jobs when none are idle (starvation avoidance).
    new_jobs = [
        job_id
        for job_id in ctx.roster
        if job_id in ctx.never_started and candidate.gpu_count(job_id) == 0
    ]
    if new_jobs:
        genome = np.array(candidate.genome)
        idle = [int(g) for g in np.nonzero(genome == IDLE)[0]]
        victims = sorted(
            (j for j in candidate.placed_jobs() if j not in ctx.never_started),
            key=lambda j: ctx.executed_time.get(j, 0.0),
            reverse=True,
        )
        for job_id in new_jobs:
            if not idle:
                # Take one GPU from the job with the largest executed time
                # that still has a GPU to give.
                for victim in victims:
                    victim_gpus = [
                        int(g)
                        for g in np.nonzero(genome == ctx.roster.index(victim))[0]
                    ]
                    if victim_gpus:
                        idle.append(victim_gpus[-1])
                        genome[victim_gpus[-1]] = IDLE
                        break
            if not idle:
                break  # nothing left to take; remaining new jobs must wait
            gpu = idle.pop(0)
            genome[gpu] = ctx.roster.index(job_id)
        candidate = candidate.with_genome(genome)

    # (4) Fill remaining idle GPUs with the most beneficial resume/grow moves.
    return fill_idle_gpus(candidate, ctx)


def fill_idle_gpus(schedule: Schedule, ctx: EvolutionContext) -> Schedule:
    """Fill idle GPUs by resuming waiting jobs or growing running ones.

    Each round considers every waiting job (resumed at up to its desired
    GPU count) and every running job that can still grow, computes the
    utilisation change of the move under the expected progress (the
    ``Δφ_j·Y_j`` weights of §3.2.2), and applies the best move.  Rounds
    repeat until no GPU is idle or no job can use one.

    With a throughput table the utilisation change of a move depends
    only on the job's GPU count, so moves are evaluated arithmetically
    (no candidate schedules are materialised); without one the generic
    path below builds each prospective schedule for its callback.  Both
    paths pick the same moves in the same order.
    """
    if ctx.throughput_table is not None:
        return _fill_idle_gpus_by_count(schedule, ctx)
    candidate = schedule
    while True:
        idle = candidate.idle_gpus()
        if not idle:
            return candidate
        moves: List[Tuple[float, Schedule]] = []
        for job_id in ctx.roster:
            count = candidate.gpu_count(job_id)
            desired = ctx.desired_gpus(job_id)
            if count >= desired and count > 0:
                continue
            take = min(len(idle), desired - count) if count > 0 else min(len(idle), desired)
            if take <= 0:
                continue
            genome = np.array(candidate.genome)
            for gpu in idle[:take]:
                genome[gpu] = ctx.roster.index(job_id)
            grown = candidate.with_genome(genome)
            before = ctx.marginal_utilization(candidate, job_id)
            after = ctx.marginal_utilization(grown, job_id)
            # Lower is better: resuming a short job adds little utilisation,
            # growing a job that scales well reduces it outright.
            moves.append((after - before, grown))
        if not moves:
            return candidate
        moves.sort(key=lambda item: item[0])
        candidate = moves[0][1]


def _fill_idle_gpus_by_count(schedule: Schedule, ctx: EvolutionContext) -> Schedule:
    """Table-backed :func:`fill_idle_gpus`: same moves, no Schedule churn.

    Placement locality is tracked through per-job node sets so every
    move is priced exactly as the generic path would price the grown
    schedule (intra- vs cross-node plane of the table).
    """
    idle = schedule.idle_gpus()
    if not idle:
        return schedule
    node_of = ctx.throughput_table.node_of
    genome = np.array(schedule.genome)
    counts = schedule.gpu_counts()
    index = {job_id: i for i, job_id in enumerate(ctx.roster)}
    nodes_of_job: Dict[str, Set[int]] = {job_id: set() for job_id in ctx.roster}
    for gpu, gene in enumerate(genome):
        if gene != IDLE:
            nodes_of_job[ctx.roster[int(gene)]].add(int(node_of[gpu]))
    changed = False
    while idle:
        best: Optional[Tuple[float, str, int, Set[int]]] = None
        for job_id in ctx.roster:
            count = counts.get(job_id, 0)
            desired = ctx.desired_gpus(job_id)
            if count >= desired and count > 0:
                continue
            take = (
                min(len(idle), desired - count) if count > 0 else min(len(idle), desired)
            )
            if take <= 0:
                continue
            before_nodes = nodes_of_job[job_id]
            after_nodes = before_nodes | {int(node_of[g]) for g in idle[:take]}
            delta = ctx.utilization_at(
                job_id, count + take, len(after_nodes) > 1
            ) - ctx.utilization_at(job_id, count, len(before_nodes) > 1)
            if best is None or delta < best[0]:
                best = (delta, job_id, take, after_nodes)
        if best is None:
            break
        _, job_id, take, after_nodes = best
        genome[idle[:take]] = index[job_id]
        idle = idle[take:]
        counts[job_id] = counts.get(job_id, 0) + take
        nodes_of_job[job_id] = after_nodes
        changed = True
    if not changed:
        return schedule
    return schedule.with_genome(genome)


# --- uniform crossover -------------------------------------------------------------------------------------


def uniform_crossover(
    parent_a: Schedule, parent_b: Schedule, rng: SeedLike = None
) -> Tuple[Schedule, Schedule]:
    """Uniform crossover of two parents (Fig. 8).

    For every GPU independently, one child inherits the gene of parent A
    and the other the gene of parent B (which child gets which is a fair
    coin flip).  Parents must share the same roster and cluster size.
    """
    if parent_a.roster != parent_b.roster:
        raise ValueError("crossover parents must share the same roster")
    if parent_a.num_gpus != parent_b.num_gpus:
        raise ValueError("crossover parents must cover the same number of GPUs")
    rng = as_generator(rng)
    mask = rng.integers(0, 2, size=parent_a.num_gpus).astype(bool)
    child1 = np.where(mask, parent_a.genome, parent_b.genome)
    child2 = np.where(mask, parent_b.genome, parent_a.genome)
    return parent_a.with_genome(child1), parent_a.with_genome(child2)


# --- uniform mutation -----------------------------------------------------------------------------------------


def uniform_mutation(
    schedule: Schedule, ctx: EvolutionContext, mutation_rate: float = 0.2
) -> Schedule:
    """Uniform mutation (Fig. 9): random preemption followed by re-filling."""
    if not 0.0 <= mutation_rate <= 1.0:
        raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
    genome = np.array(schedule.genome)
    for job_id in schedule.placed_jobs():
        if ctx.rng.random() < mutation_rate:
            idx = ctx.roster.index(job_id) if job_id in ctx.roster else None
            if idx is not None:
                genome[genome == idx] = IDLE
    mutated = schedule.with_genome(genome)
    return fill_idle_gpus(mutated, ctx)


# --- reorder ----------------------------------------------------------------------------------------------------


def reorder(schedule: Schedule) -> Schedule:
    """Pack each job's workers contiguously in order of first occurrence (Fig. 10)."""
    order: List[int] = []
    seen: Set[int] = set()
    counts: Dict[int, int] = {}
    for value in schedule.genome:
        value = int(value)
        if value == IDLE:
            continue
        counts[value] = counts.get(value, 0) + 1
        if value not in seen:
            seen.add(value)
            order.append(value)
    packed: List[int] = []
    for value in order:
        packed.extend([value] * counts[value])
    packed.extend([IDLE] * (schedule.num_gpus - len(packed)))
    return schedule.with_genome(np.asarray(packed, dtype=np.int64))
