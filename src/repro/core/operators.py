"""The four evolution operators of §3.2.2.

* **refresh** — synchronise a candidate with the real-time job status:
  drop completed jobs, shrink jobs whose batch-size limit ``R_j`` no
  longer justifies their GPU count, give every brand-new job one GPU
  (taking GPUs from the longest-running jobs if none are idle), then fill
  any remaining idle GPUs with the waiting/growing job that improves the
  remaining-utilisation objective the most (probability sampling over the
  per-job utilisation gains).
* **uniform crossover** — child schedules inherit, GPU by GPU, from one
  of two parent schedules chosen uniformly at random (Fig. 8).
* **uniform mutation** — each job of a candidate is preempted with
  probability θ and the freed GPUs are re-filled (Fig. 9).
* **reorder** — workers of the same job are packed onto contiguous GPUs
  in order of first occurrence, restoring all-reduce locality (Fig. 10).

All operators are pure: they take a :class:`Schedule` plus an
:class:`EvolutionContext` and return new :class:`Schedule` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.schedule import IDLE, Schedule
from repro.core.scoring import ThroughputFn
from repro.jobs.job import Job
from repro.prediction.beta import BetaDistribution
from repro.utils.rng import SeedLike, as_generator


@dataclass
class EvolutionContext:
    """Everything the operators need to know about the current cluster state.

    Attributes
    ----------
    jobs:
        Active (non-completed) jobs keyed by id.
    roster:
        The job ids candidate genomes index into (a fixed ordering of
        ``jobs``).
    limits:
        Current batch-size limits ``R_j``.
    distributions:
        Predictive progress distributions per job.
    throughput_fn:
        Estimator ``(job, schedule) -> samples/s`` for a candidate config.
    remaining_workload:
        Expected remaining samples ``Y_j`` per job (predictor mean).
    executed_time:
        ``T_processed`` per job, used by refresh to take GPUs from the
        longest-running jobs and by the scale-down policy.
    num_gpus:
        Cluster size.
    never_started:
        Ids of jobs that have not yet run at all (the "new jobs" the
        refresh operation must serve first).
    rng:
        Random generator driving all stochastic choices.
    """

    jobs: Dict[str, Job]
    roster: Tuple[str, ...]
    limits: Dict[str, int]
    distributions: Dict[str, BetaDistribution]
    throughput_fn: ThroughputFn
    remaining_workload: Dict[str, float]
    executed_time: Dict[str, float]
    num_gpus: int
    never_started: Set[str] = field(default_factory=set)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        self.rng = as_generator(self.rng)
        missing = [j for j in self.roster if j not in self.jobs]
        if missing:
            raise ValueError(f"roster references unknown jobs: {missing}")

    # -- derived helpers -------------------------------------------------------------------------

    def limit(self, job_id: str) -> int:
        """Batch-size limit of ``job_id`` (defaults to its submitted batch)."""
        job = self.jobs[job_id]
        return int(self.limits.get(job_id, job.spec.base_batch))

    def preferred_local_batch(self, job_id: str) -> int:
        """Per-GPU batch the job was tuned for (bounded by device memory)."""
        job = self.jobs[job_id]
        tuned = max(1, job.spec.base_batch // max(1, job.spec.requested_gpus))
        return int(min(tuned, job.spec.max_local_batch))

    def desired_gpus(self, job_id: str) -> int:
        """GPUs the job can usefully fill at its current limit ``R_j``.

        A job's batch-size limit translates into a worker count through
        the per-GPU batch the job was tuned for: ``c = ceil(R_j / b_j)``.
        This is the scale at which growing the batch actually buys
        throughput (adding GPUs) rather than just inflating the local
        batch on a single device.
        """
        per_gpu = self.preferred_local_batch(job_id)
        desired = math.ceil(self.limit(job_id) / per_gpu)
        return int(max(1, min(desired, self.num_gpus)))

    def mean_progress(self) -> Dict[str, float]:
        """Mean ρ_j of every job's progress distribution."""
        out = {}
        for job_id in self.roster:
            dist = self.distributions.get(job_id)
            out[job_id] = dist.mean if dist is not None else 0.5
        return out

    def marginal_utilization(self, schedule: Schedule, job_id: str) -> float:
        """The job's term of Eq. 8 under ``schedule`` with mean progress."""
        job = self.jobs[job_id]
        count = schedule.gpu_count(job_id)
        if count == 0:
            return 0.0
        throughput = self.throughput_fn(job, schedule)
        if throughput <= 0:
            return float("inf")
        remaining = self.remaining_workload.get(job_id, float(job.dataset_size))
        return remaining * count / throughput


# --- refresh -------------------------------------------------------------------------------------------


def refresh(schedule: Schedule, ctx: EvolutionContext) -> Schedule:
    """Bring a candidate in line with the real-time job status (§3.2.2)."""
    # (1) Completed jobs disappear because the context roster excludes them.
    candidate = schedule.reindexed(ctx.roster)
    genome = np.array(candidate.genome)

    # (2) Shrink jobs whose limit no longer justifies their GPU count.
    for job_id in candidate.placed_jobs():
        desired = ctx.desired_gpus(job_id)
        gpus = candidate.gpus_of(job_id)
        if len(gpus) > desired:
            for gpu in gpus[desired:]:
                genome[gpu] = IDLE
    candidate = candidate.with_genome(genome)

    # (3) Every brand-new job gets one GPU, taking GPUs from the
    # longest-running jobs when none are idle (starvation avoidance).
    new_jobs = [
        job_id
        for job_id in ctx.roster
        if job_id in ctx.never_started and candidate.gpu_count(job_id) == 0
    ]
    if new_jobs:
        genome = np.array(candidate.genome)
        idle = [int(g) for g in np.nonzero(genome == IDLE)[0]]
        victims = sorted(
            (j for j in candidate.placed_jobs() if j not in ctx.never_started),
            key=lambda j: ctx.executed_time.get(j, 0.0),
            reverse=True,
        )
        for job_id in new_jobs:
            if not idle:
                # Take one GPU from the job with the largest executed time
                # that still has a GPU to give.
                for victim in victims:
                    victim_gpus = [
                        int(g)
                        for g in np.nonzero(genome == ctx.roster.index(victim))[0]
                    ]
                    if victim_gpus:
                        idle.append(victim_gpus[-1])
                        genome[victim_gpus[-1]] = IDLE
                        break
            if not idle:
                break  # nothing left to take; remaining new jobs must wait
            gpu = idle.pop(0)
            genome[gpu] = ctx.roster.index(job_id)
        candidate = candidate.with_genome(genome)

    # (4) Fill remaining idle GPUs with the most beneficial resume/grow moves.
    return fill_idle_gpus(candidate, ctx)


def fill_idle_gpus(schedule: Schedule, ctx: EvolutionContext) -> Schedule:
    """Fill idle GPUs by resuming waiting jobs or growing running ones.

    Each round considers every waiting job (resumed at up to its desired
    GPU count) and every running job that can still grow, computes the
    utilisation change of the move under the expected progress (the
    ``Δφ_j·Y_j`` weights of §3.2.2), and applies the best move.  Rounds
    repeat until no GPU is idle or no job can use one.
    """
    candidate = schedule
    while True:
        idle = candidate.idle_gpus()
        if not idle:
            return candidate
        moves: List[Tuple[float, Schedule]] = []
        for job_id in ctx.roster:
            count = candidate.gpu_count(job_id)
            desired = ctx.desired_gpus(job_id)
            if count >= desired and count > 0:
                continue
            take = min(len(idle), desired - count) if count > 0 else min(len(idle), desired)
            if take <= 0:
                continue
            genome = np.array(candidate.genome)
            for gpu in idle[:take]:
                genome[gpu] = ctx.roster.index(job_id)
            grown = candidate.with_genome(genome)
            before = ctx.marginal_utilization(candidate, job_id)
            after = ctx.marginal_utilization(grown, job_id)
            # Lower is better: resuming a short job adds little utilisation,
            # growing a job that scales well reduces it outright.
            moves.append((after - before, grown))
        if not moves:
            return candidate
        moves.sort(key=lambda item: item[0])
        candidate = moves[0][1]


# --- uniform crossover -------------------------------------------------------------------------------------


def uniform_crossover(
    parent_a: Schedule, parent_b: Schedule, rng: SeedLike = None
) -> Tuple[Schedule, Schedule]:
    """Uniform crossover of two parents (Fig. 8).

    For every GPU independently, one child inherits the gene of parent A
    and the other the gene of parent B (which child gets which is a fair
    coin flip).  Parents must share the same roster and cluster size.
    """
    if parent_a.roster != parent_b.roster:
        raise ValueError("crossover parents must share the same roster")
    if parent_a.num_gpus != parent_b.num_gpus:
        raise ValueError("crossover parents must cover the same number of GPUs")
    rng = as_generator(rng)
    mask = rng.integers(0, 2, size=parent_a.num_gpus).astype(bool)
    child1 = np.where(mask, parent_a.genome, parent_b.genome)
    child2 = np.where(mask, parent_b.genome, parent_a.genome)
    return parent_a.with_genome(child1), parent_a.with_genome(child2)


# --- uniform mutation -----------------------------------------------------------------------------------------


def uniform_mutation(
    schedule: Schedule, ctx: EvolutionContext, mutation_rate: float = 0.2
) -> Schedule:
    """Uniform mutation (Fig. 9): random preemption followed by re-filling."""
    if not 0.0 <= mutation_rate <= 1.0:
        raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
    genome = np.array(schedule.genome)
    for job_id in schedule.placed_jobs():
        if ctx.rng.random() < mutation_rate:
            idx = ctx.roster.index(job_id) if job_id in ctx.roster else None
            if idx is not None:
                genome[genome == idx] = IDLE
    mutated = schedule.with_genome(genome)
    return fill_idle_gpus(mutated, ctx)


# --- reorder ----------------------------------------------------------------------------------------------------


def reorder(schedule: Schedule) -> Schedule:
    """Pack each job's workers contiguously in order of first occurrence (Fig. 10)."""
    order: List[int] = []
    seen: Set[int] = set()
    counts: Dict[int, int] = {}
    for value in schedule.genome:
        value = int(value)
        if value == IDLE:
            continue
        counts[value] = counts.get(value, 0) + 1
        if value not in seen:
            seen.add(value)
            order.append(value)
    packed: List[int] = []
    for value in order:
        packed.extend([value] * counts[value])
    packed.extend([IDLE] * (schedule.num_gpus - len(packed)))
    return schedule.with_genome(np.asarray(packed, dtype=np.int64))
