"""Incremental delta-scoring: stop re-deriving the population every generation.

PR 1 vectorised Eq. 8, PR 3 batched the operators; what remained is that
every generation still *re-derives the scoring inputs from scratch* —
the ``(K, num_jobs)`` GPU-count matrix, the per-(candidate, job)
server-locality flags, and the greedy fill's per-round node-set
prefixes — even though one generation changes only a small fraction of
each genome.  This module caches those progress-independent inputs as a
:class:`ScoreDecomposition` and keeps them *incrementally maintained*
through every operator, so a generation touches only the (candidate,
job) cells whose genome entries actually changed:

* ``counts[k, j]`` — GPUs candidate ``k`` gives roster job ``j``
  (the ``c_j`` of Eq. 8; previously one global ``bincount`` per use),
* ``crosses[k, j]`` — whether that placement spans more than one
  server (selects the locality plane of the throughput table;
  previously a ``(K, num_jobs, num_nodes)`` presence reduction),
* ``sole_node[k, j]`` — the single occupied server when the placement
  is non-crossing (``-1`` otherwise), which is what lets the greedy
  fill decide in O(1) per cell whether a grown placement starts
  crossing, replacing the per-round 3-D node-set prefix cumsum that
  dominated the PR 3 profile.

The Eq. 8 *score* itself is still evaluated fresh every generation —
Algorithm 1 draws new progress samples ρ_j each time, so the weights
change — but it is evaluated straight off the cached decomposition
(:func:`score_decomposition`), through the very same
:func:`~repro.core.scoring.score_count_matrix` expression the batched
engine uses.  That is the parity contract: **identical counts and
crossings in, identical floats out**, so the incremental path is
bit-for-bit the batched path, which is bit-for-bit the scalar path.

Cache lifecycle (:class:`IncrementalScoringEngine`)
---------------------------------------------------
The engine rides on :class:`~repro.core.evolution.EvolutionarySearch`
next to the genome matrix and survives across scheduler events.  Its
cache is reused only when *nothing that defines a cell has moved*: the
same population array object (identity — any population reset,
re-index, or width change yields a new array), the same roster tuple,
the same genome width, and the same GPU→server map.  Anything else —
fault masking compacting the cluster, a partition-view swap inside
:class:`~repro.core.partitioned.HierarchicalONESScheduler`, a
scalar-path population lift — fails the check and triggers one full
vectorised rebuild (:func:`build_decomposition`), attributed to the
``rescore_full`` profiling phase; steady-state generations take the
``rescore_delta`` path.  Throughput-table churn is tracked through
:attr:`~repro.jobs.throughput.ThroughputTable.version` so the engine
can count how often its table context swapped underneath it (the
table's values feed the score gather, never the decomposition, so a
version change alone never dirties the cache).

Adding a score term — the worked recipe
---------------------------------------
Eq. 8 today is ``Σ_j weight_j · counts_j / X_j(counts_j, crosses_j)``.
To add a new per-job term (say a migration penalty, or a third
heterogeneity plane), keep the decomposition discipline:

1. **Split the term** into its *genome-derived* part (a function of one
   candidate's placement of one job — like ``counts``/``crosses``) and
   its *per-generation* part (progress samples, predictor weights).
   Only the genome-derived part belongs in :class:`ScoreDecomposition`.
2. **Add the cached array** to :class:`ScoreDecomposition` (same
   ``(K, num_jobs)`` shape) and teach the three producers about it:
   :func:`build_decomposition` (the full-rebuild reference — write this
   first, it is the oracle), the per-move update in
   :func:`fill_idle_decomposed`, and the analytic update in
   :func:`reorder_decomposed` (fall back to ``rebuild_rows`` if no
   closed form exists — correctness never depends on the fast path).
   Mutation/shrink updates live in
   :func:`repro.core.evolution_batched` next to the operators.
3. **Consume it** in :func:`score_decomposition` by extending
   :func:`~repro.core.scoring.score_count_matrix` — *never* refactor
   the existing expression (floating-point addition is not
   associative; the parity suites pin the exact evaluation order).
4. **Pin parity**: extend ``tests/test_core_scoring_incremental.py``'s
   fuzz loop, which asserts ``decomposition == build_decomposition``
   after every operator and incremental == batched == scalar
   trajectories bit-for-bit.  A term that cannot pass that suite
   should ship behind ``EvolutionConfig.incremental_scoring=False``
   until it can.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.operators import EvolutionContext
from repro.core.schedule import IDLE
from repro.core.scoring import population_gpu_counts, score_count_matrix
from repro.jobs.throughput import ThroughputTable


# --- the cached decomposition --------------------------------------------------------------------


@dataclass
class ScoreDecomposition:
    """Per-(candidate, job) genome-derived scoring inputs, kept in sync
    with a ``(K, num_gpus)`` genome matrix as operators mutate it.

    All three arrays are ``(K, num_jobs)``; ``node_of`` is the GPU→server
    map they were derived against.  The invariant — checked exhaustively
    by the parity suite via :meth:`matches` — is that the arrays always
    equal what :func:`build_decomposition` would produce from the
    current genomes.
    """

    #: GPU count per (candidate, job) — the ``c_j`` of Eq. 8.
    counts: np.ndarray
    #: True when the placement spans more than one server.
    crosses: np.ndarray
    #: The single occupied server of a non-crossing placement, else -1.
    sole_node: np.ndarray
    #: GPU id → server id map of the cluster the rows describe.
    node_of: np.ndarray

    @property
    def num_candidates(self) -> int:
        return int(self.counts.shape[0])

    @property
    def num_jobs(self) -> int:
        return int(self.counts.shape[1])

    # -- row plumbing ---------------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "ScoreDecomposition":
        """Rows ``indices`` as a new decomposition (selection / dedup)."""
        return ScoreDecomposition(
            counts=self.counts[indices],
            crosses=self.crosses[indices],
            sole_node=self.sole_node[indices],
            node_of=self.node_of,
        )

    @staticmethod
    def concatenate(parts: Sequence["ScoreDecomposition"]) -> "ScoreDecomposition":
        """Stack several decompositions row-wise (the candidate pool)."""
        if len(parts) == 1:
            return parts[0]
        return ScoreDecomposition(
            counts=np.concatenate([p.counts for p in parts], axis=0),
            crosses=np.concatenate([p.crosses for p in parts], axis=0),
            sole_node=np.concatenate([p.sole_node for p in parts], axis=0),
            node_of=parts[0].node_of,
        )

    # -- delta maintenance ----------------------------------------------------------------------

    def rebuild_rows(self, genomes: np.ndarray, rows: np.ndarray) -> None:
        """Recompute the cells of ``rows`` from their current genomes.

        The correctness anchor every incremental update can fall back
        to: one vectorised :func:`build_decomposition` over just the
        affected rows.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        sub = build_decomposition(genomes[rows], self.num_jobs, self.node_of)
        self.counts[rows] = sub.counts
        self.crosses[rows] = sub.crosses
        self.sole_node[rows] = sub.sole_node

    def rescore_delta(self, genomes: np.ndarray, changed_mask: np.ndarray) -> int:
        """Refresh the decomposition after a sparse genome edit.

        ``changed_mask`` is ``(K, num_gpus)`` boolean — True where a
        genome entry changed since the decomposition was last in sync.
        Untouched rows are guaranteed reused as-is; rows with any
        changed entry are recomputed in one vectorised pass.  Returns
        the number of rows recomputed (the delta cost driver).
        """
        changed_mask = np.asarray(changed_mask, dtype=bool)
        if changed_mask.shape != genomes.shape:
            raise ValueError(
                f"changed_mask shape {changed_mask.shape} != genomes {genomes.shape}"
            )
        rows = np.flatnonzero(changed_mask.any(axis=1))
        self.rebuild_rows(genomes, rows)
        return int(rows.size)

    # -- verification ---------------------------------------------------------------------------

    def matches(self, genomes: np.ndarray) -> bool:
        """True when the cache equals a from-scratch rebuild (test hook)."""
        fresh = build_decomposition(np.asarray(genomes), self.num_jobs, self.node_of)
        return (
            np.array_equal(self.counts, fresh.counts)
            and np.array_equal(self.crosses, fresh.crosses)
            and np.array_equal(self.sole_node, fresh.sole_node)
        )


def build_decomposition(
    genomes: np.ndarray, num_jobs: int, node_of: np.ndarray
) -> ScoreDecomposition:
    """Full vectorised (re)build of a :class:`ScoreDecomposition`.

    One flattened ``bincount`` over (candidate, job, node) triples —
    the same technique as
    :func:`repro.core.scoring.population_node_crossings`, extended to
    also yield the sole occupied server of non-crossing placements.
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    num_candidates, num_gpus = genomes.shape
    node_of = np.asarray(node_of, dtype=np.int64)
    counts = population_gpu_counts(genomes, num_jobs)
    crosses = np.zeros((num_candidates, num_jobs), dtype=bool)
    sole = np.full((num_candidates, num_jobs), -1, dtype=np.int64)
    if num_jobs == 0 or num_gpus == 0 or num_candidates == 0:
        return ScoreDecomposition(counts, crosses, sole, node_of)
    num_nodes = int(node_of.max()) + 1 if node_of.size else 1
    placed = genomes != IDLE
    rows = np.broadcast_to(
        np.arange(num_candidates, dtype=np.int64)[:, None], genomes.shape
    )
    nodes = np.broadcast_to(node_of[None, :], genomes.shape)
    flat = (rows[placed] * num_jobs + genomes[placed]) * num_nodes + nodes[placed]
    present = np.bincount(flat, minlength=num_candidates * num_jobs * num_nodes) > 0
    present = present.reshape(num_candidates, num_jobs, num_nodes)
    distinct = present.sum(axis=2)
    crosses = distinct > 1
    sole = np.where(distinct == 1, present.argmax(axis=2), -1)
    return ScoreDecomposition(counts, crosses, sole, node_of)


# --- scoring off the cache -----------------------------------------------------------------------


def score_decomposition(
    decomp: ScoreDecomposition,
    roster: Sequence[str],
    jobs: Mapping[str, object],
    progress: Mapping[str, float],
    table: ThroughputTable,
) -> np.ndarray:
    """Eq. 8 for a whole pool straight off its cached decomposition.

    A thin alias of :func:`~repro.core.scoring.score_count_matrix` fed
    the cached counts/crossings — deliberately *not* a reimplementation,
    so the floating-point evaluation order (and hence every bit of every
    score) is shared with the batched and scalar paths.
    """
    return score_count_matrix(
        decomp.counts, roster, jobs, progress, table, decomp.crosses
    )


# --- incremental operators -----------------------------------------------------------------------


def fill_idle_decomposed(
    genomes: np.ndarray,
    ctx: EvolutionContext,
    decomp: ScoreDecomposition,
    desired: np.ndarray,
    remaining: np.ndarray,
) -> np.ndarray:
    """Greedy idle-GPU fill maintaining the decomposition move-by-move.

    Move-for-move identical to
    :func:`repro.core.evolution_batched.fill_idle_population` (same
    table lookups, same utilisation deltas, same tie-breaking), but the
    per-round ``(active, max_idle, num_nodes)`` node-set prefix — the
    single hottest array in the PR 3 profile — collapses to an
    ``(active, max_idle)`` *span* prefix: because every round grabs a
    prefix of the row's ascending idle list, a grown placement crosses
    servers iff it already crossed, or the grabbed slots span servers
    themselves, or the job already ran on a single server different
    from the first grabbed slot's (``sole_node``).  ``decomp`` is
    updated in place and stays bit-synchronised with the returned
    genomes.
    """
    table = ctx.throughput_table
    assert table is not None
    genomes = np.array(genomes, dtype=np.int64)
    num_candidates, num_gpus = genomes.shape
    num_jobs = len(ctx.roster)
    if num_candidates == 0 or num_gpus == 0 or num_jobs == 0:
        return genomes

    counts = decomp.counts
    crosses = decomp.crosses
    sole = decomp.sole_node
    node_of = decomp.node_of

    # Ragged per-row idle-GPU lists as a padded matrix: ascending
    # positions in the first n_idle[k] slots, sentinel num_gpus after.
    idle_mask = genomes == IDLE
    n_idle = idle_mask.sum(axis=1)
    slot_order = np.argsort(~idle_mask, axis=1, kind="stable")
    idle_pos = np.where(
        np.arange(num_gpus)[None, :] < n_idle[:, None], slot_order, num_gpus
    )
    node_ext = np.append(node_of, 0)  # sentinel slots masked out below

    rows = np.flatnonzero(n_idle > 0)
    while rows.size:
        counts_a = counts[rows]
        n_idle_a = n_idle[rows]
        eligible = counts_a < desired[None, :]
        has_move = eligible.any(axis=1)
        if not has_move.all():
            rows = rows[has_move]
            if not rows.size:
                break
            counts_a = counts_a[has_move]
            n_idle_a = n_idle_a[has_move]
            eligible = eligible[has_move]
        active = rows.size
        sub_ids = np.arange(active)
        crosses_a = crosses[rows]
        sole_a = sole[rows]
        take = np.minimum(n_idle_a[:, None], desired[None, :] - counts_a)
        take = np.where(eligible, take, 0)

        # Whether each row's first-t idle slots span servers, for every
        # needed t: one boolean or-prefix over the slot nodes versus the
        # first slot's node (q0).
        max_idle = int(n_idle_a.max())
        slot_nodes = node_ext[idle_pos[rows, :max_idle]]
        slot_valid = np.arange(max_idle)[None, :] < n_idle_a[:, None]
        q0 = slot_nodes[:, 0]
        spans = np.concatenate(
            [
                np.zeros((active, 1), dtype=bool),
                np.logical_or.accumulate(
                    (slot_nodes != q0[:, None]) & slot_valid, axis=1
                ),
            ],
            axis=1,
        )
        spans_t = spans[sub_ids[:, None], take]  # (active, num_jobs)
        crosses_after = (
            crosses_a
            | spans_t
            | ((take >= 1) & (counts_a > 0) & ~crosses_a & (sole_a != q0[:, None]))
        )

        # Identical lookups to the non-incremental fill: idle jobs and
        # masked-out entries look up count 0 (prefilled, zero model
        # calls), so lazily-filled table entries match exactly.
        before_counts = np.where(eligible & (counts_a > 0), counts_a, 0)
        after_counts = np.where(eligible, counts_a + take, 0)
        thr_before = table.lookup(before_counts, crosses_a)
        thr_after = table.lookup(after_counts, crosses_after)
        with np.errstate(divide="ignore", invalid="ignore"):
            util_before = np.where(
                before_counts > 0,
                np.where(
                    thr_before > 0,
                    remaining[None, :] * before_counts / thr_before,
                    np.inf,
                ),
                0.0,
            )
            util_after = np.where(
                after_counts > 0,
                np.where(
                    thr_after > 0,
                    remaining[None, :] * after_counts / thr_after,
                    np.inf,
                ),
                0.0,
            )
            delta = util_after - util_before

        ranked = np.where(np.isnan(delta) | ~eligible, np.inf, delta)
        pick = np.argmin(ranked, axis=1)
        row_min = ranked[sub_ids, pick]
        first_eligible = np.argmax(eligible, axis=1)
        keep_first = np.isnan(delta[sub_ids, first_eligible]) | np.isposinf(row_min)
        pick = np.where(keep_first, first_eligible, pick)

        for sub, row in enumerate(rows):
            job = int(pick[sub])
            grabbed = int(take[sub, job])
            slots = idle_pos[row, :grabbed]
            genomes[row, slots] = job
            was_empty = counts[row, job] == 0
            counts[row, job] += grabbed
            if crosses_after[sub, job]:
                crosses[row, job] = True
                sole[row, job] = -1
            elif was_empty:
                sole[row, job] = int(q0[sub])
            left = int(n_idle[row]) - grabbed
            idle_pos[row, :left] = idle_pos[row, grabbed : grabbed + left]
            idle_pos[row, left:] = num_gpus
            n_idle[row] = left
        rows = rows[n_idle[rows] > 0]
    return genomes


def reorder_decomposed(
    genomes: np.ndarray,
    decomp: ScoreDecomposition,
    node_monotone: bool,
) -> np.ndarray:
    """Batched reorder (Fig. 10) with an analytic decomposition update.

    Genome output is bit-identical to
    :func:`repro.core.evolution_batched.reorder_population`, computed
    via a scatter-min of first-occurrence positions instead of the
    ``(K, num_gpus, num_values)`` one-hot.  Reordering never changes
    ``counts``, but it *packs* each job contiguously, so on a
    monotone GPU→server map the crossing flag reduces to "first and
    last GPU of the packed run live on different servers"; when the map
    is not monotone (never true for the star topology's
    ``arange // gpus_per_node``) the affected rows are simply rebuilt.
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    num_candidates, num_gpus = genomes.shape
    if num_candidates == 0 or num_gpus == 0 or not (genomes != IDLE).any():
        return genomes.copy()
    num_jobs = decomp.num_jobs
    node_of = decomp.node_of

    # First occurrence position of every job in every row (num_gpus for
    # absent jobs), via unbuffered scatter-min.
    first_pos = np.full((num_candidates, num_jobs), num_gpus, dtype=np.int64)
    placed = genomes != IDLE
    row_ids = np.broadcast_to(
        np.arange(num_candidates, dtype=np.int64)[:, None], genomes.shape
    )
    col_ids = np.broadcast_to(
        np.arange(num_gpus, dtype=np.int64)[None, :], genomes.shape
    )
    np.minimum.at(first_pos, (row_ids[placed], genomes[placed]), col_ids[placed])

    gene = np.where(genomes == IDLE, 0, genomes)
    keys = np.take_along_axis(first_pos, gene, axis=1)
    keys = np.where(genomes == IDLE, num_gpus, keys)
    order = np.argsort(keys, axis=1, kind="stable")
    out = np.take_along_axis(genomes, order, axis=1)

    if not node_monotone:
        decomp.rebuild_rows(out, np.arange(num_candidates))
        return out

    # Post-reorder, jobs occupy contiguous runs in first-occurrence
    # order: run starts are the exclusive cumsum of the sorted counts.
    job_keys = np.where(decomp.counts > 0, first_pos, num_gpus)
    job_order = np.argsort(job_keys, axis=1, kind="stable")
    counts_sorted = np.take_along_axis(decomp.counts, job_order, axis=1)
    ends = counts_sorted.cumsum(axis=1)
    starts = ends - counts_sorted
    present_sorted = counts_sorted > 0
    start_node = node_of[np.clip(starts, 0, num_gpus - 1)]
    end_node = node_of[np.clip(ends - 1, 0, num_gpus - 1)]
    crosses_sorted = present_sorted & (start_node != end_node)
    sole_sorted = np.where(present_sorted & ~crosses_sorted, start_node, -1)
    np.put_along_axis(decomp.crosses, job_order, crosses_sorted, axis=1)
    np.put_along_axis(decomp.sole_node, job_order, sole_sorted, axis=1)
    return out


# --- the engine ----------------------------------------------------------------------------------


class IncrementalScoringEngine:
    """Owns a population's :class:`ScoreDecomposition` across generations.

    Lifecycle: :meth:`prepare` at the top of a generation either reuses
    the committed cache (when the population array, roster, genome
    width, and GPU→server map are all unchanged — the ``rescore_delta``
    steady state) or performs one full rebuild (``rescore_full``: the
    automatic fallback covering fault masking, partition-view swaps,
    roster re-indexing and every other invalidation, all of which
    replace the population array).  :meth:`commit` at the bottom hands
    the survivors' rows back for the next generation.
    """

    def __init__(self) -> None:
        self._population: Optional[np.ndarray] = None
        self._decomp: Optional[ScoreDecomposition] = None
        self._roster: Optional[Tuple[str, ...]] = None
        self._node_of: Optional[np.ndarray] = None
        self.node_monotone: bool = True
        self._table_version: Optional[int] = None
        #: Generations served from the committed cache.
        self.delta_generations: int = 0
        #: Generations that needed a from-scratch decomposition build.
        self.full_rebuilds: int = 0
        #: Times the throughput table changed identity between
        #: generations (per-event rebuilds, fault masking, view swaps);
        #: table values feed only the score gather, so this never
        #: dirties the decomposition — it is attribution, not policy.
        self.table_swaps: int = 0

    def prepare(
        self,
        genomes: np.ndarray,
        roster: Tuple[str, ...],
        table: ThroughputTable,
    ) -> Tuple[ScoreDecomposition, bool]:
        """Decomposition for ``genomes``; returns ``(decomp, rebuilt)``."""
        node_of = np.asarray(table.node_of, dtype=np.int64)
        version = table.version
        if self._table_version is not None and version != self._table_version:
            self.table_swaps += 1
        self._table_version = version
        reusable = (
            self._decomp is not None
            and self._population is genomes
            and self._roster == roster
            and self._node_of is not None
            and self._node_of.shape == node_of.shape
            and np.array_equal(self._node_of, node_of)
        )
        if reusable:
            self.delta_generations += 1
            decomp = self._decomp
            assert decomp is not None
            rebuilt = False
        else:
            decomp = build_decomposition(genomes, len(roster), node_of)
            self.full_rebuilds += 1
            self._roster = roster
            self._node_of = node_of.copy()
            self.node_monotone = bool(np.all(np.diff(node_of) >= 0))
            rebuilt = True
        # Ownership passes to the running generation: the operators
        # mutate the decomposition in place, so until :meth:`commit`
        # re-attaches the survivors the cache must not be reusable (a
        # generation aborted mid-flight would otherwise leave a stale
        # cache paired with the old population array).
        self._population = None
        self._decomp = None
        return decomp, rebuilt

    def commit(self, survivors: np.ndarray, decomp: ScoreDecomposition) -> None:
        """Adopt the surviving population's rows for the next generation."""
        self._population = survivors
        self._decomp = decomp

    def invalidate(self) -> None:
        """Drop the cache (the next :meth:`prepare` does a full rebuild)."""
        self._population = None
        self._decomp = None

    def stats(self) -> Mapping[str, int]:
        """Attribution counters for ``describe_state`` / benchmarks."""
        return {
            "delta_generations": self.delta_generations,
            "full_rebuilds": self.full_rebuilds,
            "table_swaps": self.table_swaps,
        }
