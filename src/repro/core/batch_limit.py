"""Dynamic batch-size limits ``R_j`` (§3.3.2, "Training Performance Control").

ONES never lets a job's global batch exceed its dynamic limit ``R_j``.
The limit evolves with the job's lifecycle:

* **Start** — on arrival the batch must fit a single GPU until a few
  warm-up steps complete.
* **Resume** — a waiting job may ask for the limit it had before being
  preempted, but every time it is rejected (left waiting by the next
  schedule) the limit is halved, which shortens its queuing time and
  prevents starvation.
* **Scale-up** — after each completed epoch a running job may double its
  limit (gradual growth avoids the loss spikes of Fig. 13).
* **Scale-down** — long-running jobs are penalised with
  ``R' = ceil(2R / ceil(σ·T_processed + 1))`` where ``σ`` is set to the
  average job arrival rate λ, which prevents the convoy effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.jobs.job import Job
from repro.utils.stats import RunningMean
from repro.utils.validation import check_non_negative, check_positive, check_positive_int


@dataclass(frozen=True)
class BatchLimitConfig:
    """Tunables of the batch-size limit policies.

    Parameters
    ----------
    min_batch:
        Absolute floor of any limit (a job can always run one sample).
    warmup_epochs:
        Epochs a job must complete before its limit may grow beyond a
        single GPU's worth.
    sigma:
        The scale-down factor σ.  ``None`` means "derive it from the
        observed average arrival rate λ" (the paper suggests σ = λ).
    sigma_damping:
        Divisor applied to the observed λ when ``sigma`` is ``None``.
        Taken literally, σ = λ collapses the limit of *every* job to its
        floor because typical epoch times already exceed the mean
        inter-arrival gap; damping makes the convoy-effect penalty bite
        only for jobs that run an order of magnitude longer than the
        arrival interval.  The ablation benchmark sweeps this factor.
    max_batch_multiplier:
        Upper bound on ``R_j`` expressed as a multiple of the job's
        submitted batch size (keeps limits from growing without bound on
        very long traces).
    """

    min_batch: int = 1
    warmup_epochs: int = 1
    sigma: Optional[float] = None
    sigma_damping: float = 10.0
    max_batch_multiplier: float = 16.0

    def __post_init__(self) -> None:
        check_positive_int(self.min_batch, "min_batch")
        check_non_negative(self.warmup_epochs, "warmup_epochs")
        if self.sigma is not None:
            check_positive(self.sigma, "sigma")
        check_positive(self.sigma_damping, "sigma_damping")
        check_positive(self.max_batch_multiplier, "max_batch_multiplier")


class BatchSizeLimiter:
    """Tracks and updates the per-job batch-size limits ``R_j``."""

    def __init__(self, config: Optional[BatchLimitConfig] = None) -> None:
        self.config = config or BatchLimitConfig()
        self._limits: Dict[str, int] = {}
        self._interarrival = RunningMean()
        self._last_arrival_time: Optional[float] = None

    # -- arrival-rate tracking (for σ = λ) ------------------------------------------------------

    def observe_arrival(self, arrival_time: float) -> None:
        """Update the arrival-rate estimate with one observed arrival."""
        if self._last_arrival_time is not None:
            gap = max(0.0, arrival_time - self._last_arrival_time)
            if gap > 0:
                self._interarrival.update(gap)
        self._last_arrival_time = arrival_time

    @property
    def arrival_rate(self) -> float:
        """Estimated average arrival rate λ (jobs/second)."""
        if self._interarrival.count == 0 or self._interarrival.mean <= 0:
            return 0.0
        return 1.0 / self._interarrival.mean

    def _sigma(self) -> float:
        if self.config.sigma is not None:
            return self.config.sigma
        return self.arrival_rate / self.config.sigma_damping

    # -- limits -----------------------------------------------------------------------------------

    def limit(self, job_id: str) -> int:
        """Current limit ``R_j`` (raises if the job was never registered)."""
        if job_id not in self._limits:
            raise KeyError(f"job {job_id!r} has no registered batch-size limit")
        return self._limits[job_id]

    def limits(self) -> Dict[str, int]:
        """Snapshot of all tracked limits."""
        return dict(self._limits)

    def forget(self, job_id: str) -> None:
        """Drop the limit of a completed job."""
        self._limits.pop(job_id, None)

    def _max_limit(self, job: Job) -> int:
        cap = int(self.config.max_batch_multiplier * job.spec.base_batch)
        return max(self.config.min_batch, min(cap, job.dataset_size))

    def _floor_limit(self, job: Job) -> int:
        """Lowest limit policies may push a job to: the user-tuned batch.

        The paper's scale-down formula, applied literally every epoch,
        would drive ``R_j`` of any job longer than the mean inter-arrival
        time towards 1 sample, starving the job of throughput.  We keep
        the formula (it claws back the *elastic* headroom of long jobs)
        but never squeeze a job below the batch it was submitted with —
        a deviation recorded in DESIGN.md.
        """
        floor = min(job.spec.base_batch, job.spec.max_local_batch)
        return max(self.config.min_batch, min(floor, job.dataset_size))

    def _clip(self, job: Job, value: float, enforce_floor: bool = False) -> int:
        low = self._floor_limit(job) if enforce_floor else self.config.min_batch
        return int(min(max(low, math.ceil(value)), self._max_limit(job)))

    # -- the four policies ---------------------------------------------------------------------------

    def on_job_arrival(self, job: Job) -> int:
        """Start policy: limit to what a single GPU can hold."""
        self.observe_arrival(job.arrival_time)
        start = min(job.spec.base_batch, job.spec.max_local_batch)
        self._limits[job.job_id] = self._clip(job, start)
        return self._limits[job.job_id]

    def on_epoch_end(self, job: Job, executed_time: float, contended: bool = True) -> int:
        """Scale-up + scale-down policy evaluated after every epoch.

        Short jobs simply double their limit every epoch (Scale-up).
        Once a job's executed time exceeds the penalty horizon ``1/σ``
        the Scale-down rule ``R' = ceil(2R / ceil(σ·T_processed + 1))``
        takes over, progressively clawing the doubling back and — for
        very long jobs — shrinking the limit towards its floor, which
        prevents the convoy effect.

        ``contended`` says whether any job is currently waiting for
        resources.  The convoy effect only exists when short jobs queue
        behind long ones, so on an uncontended cluster the scale-down
        penalty is skipped and long jobs are free to soak up idle GPUs —
        exactly the behaviour the paper credits for ONES's large gains on
        slow jobs.
        """
        check_non_negative(executed_time, "executed_time")
        if job.job_id not in self._limits:
            self.on_job_arrival(job)
        if job.epochs_completed < self.config.warmup_epochs:
            return self._limits[job.job_id]
        current = self._limits[job.job_id]
        sigma_t = self._sigma() * executed_time
        if sigma_t <= 1.0 or not contended:
            # Scale-up: the job is still "short" (or nobody is waiting).
            new_limit = 2.0 * current
        else:
            # Scale-down: penalise jobs that outlive the penalty horizon.
            denominator = max(1, int(math.ceil(sigma_t + 1.0)))
            new_limit = math.ceil(2.0 * current / denominator)
        self._limits[job.job_id] = self._clip(job, new_limit, enforce_floor=True)
        return self._limits[job.job_id]

    def on_schedule_rejection(self, job: Job) -> int:
        """Resume policy: halve the limit each time a waiting job stays waiting."""
        if job.job_id not in self._limits:
            self.on_job_arrival(job)
        current = self._limits[job.job_id]
        self._limits[job.job_id] = self._clip(job, current / 2.0, enforce_floor=True)
        return self._limits[job.job_id]

    def on_preemption(self, job: Job) -> int:
        """A preempted job keeps (at most) the limit it had before preemption."""
        if job.job_id not in self._limits:
            self.on_job_arrival(job)
        return self._limits[job.job_id]
