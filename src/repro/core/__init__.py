"""ONES: the online evolutionary batch-size scheduler (the paper's contribution).

* :mod:`repro.core.schedule` — the schedule genome of Fig. 1 (a job per
  GPU; batch sizes derived from the per-job limit ``R_j``).
* :mod:`repro.core.scoring` — the SRUF objective (Eq. 3/8) and the
  probability-sampling selection of Algorithm 1.
* :mod:`repro.core.batch_limit` — the dynamic batch-size limit ``R_j``
  with the start / resume / scale-up / scale-down policies of §3.3.2.
* :mod:`repro.core.operators` — the four evolution operators of §3.2.2:
  refresh, uniform crossover, uniform mutation and reorder.
* :mod:`repro.core.population` — population initialisation and bookkeeping.
* :mod:`repro.core.evolution` — the iterative evolutionary search (Fig. 5).
* :mod:`repro.core.evolution_batched` — the batched genome-matrix form
  of the operators (bit-identical to the scalar reference).
* :mod:`repro.core.ones_scheduler` — the ONES scheduler wired into the
  common scheduler interface.
"""

from repro.core.schedule import Schedule, stack_genomes, unique_schedules
from repro.core.scoring import (
    candidate_score,
    probability_sample,
    score_population,
    select_top_k,
)
from repro.core.batch_limit import BatchLimitConfig, BatchSizeLimiter
from repro.core.operators import (
    EvolutionContext,
    refresh,
    reorder,
    uniform_crossover,
    uniform_mutation,
)
from repro.core.population import Population
from repro.core.evolution import EvolutionConfig, EvolutionEngine, EvolutionarySearch
from repro.core.evolution_batched import (
    GenerationResult,
    fill_idle_population,
    refresh_population,
    reorder_population,
    run_generation,
)
from repro.core.ones_scheduler import ONESConfig, ONESScheduler

__all__ = [
    "Schedule",
    "stack_genomes",
    "unique_schedules",
    "candidate_score",
    "probability_sample",
    "score_population",
    "select_top_k",
    "BatchLimitConfig",
    "BatchSizeLimiter",
    "EvolutionContext",
    "refresh",
    "reorder",
    "uniform_crossover",
    "uniform_mutation",
    "Population",
    "EvolutionConfig",
    "EvolutionEngine",
    "EvolutionarySearch",
    "GenerationResult",
    "fill_idle_population",
    "refresh_population",
    "reorder_population",
    "run_generation",
    "ONESConfig",
    "ONESScheduler",
]
