"""Hierarchical partitioned ONES: independent per-shard searches + a reconciler.

Flat ONES does not scale to thousands of GPUs: the schedule genome spans
every GPU id, so both the population size and the per-candidate scoring
cost grow with the cluster, and the evolution loop — already the
end-to-end floor at the paper's 64-GPU scale — becomes superlinear in
capacity.  This module breaks that coupling with the classic two-level
split (global master / local masters): the cluster is tiled into
fixed-size, node-aligned *partitions* (default: the paper scale, 64
GPUs), each partition runs a full, unmodified
:class:`~repro.core.ones_scheduler.ONESScheduler` over a dense private
view of its shard (:mod:`repro.sim.views`), and a thin global
*reconciler* owns only two decisions:

* **job → partition assignment** — least-loaded partition whose current
  capacity fits the job's requested gang, sticky for the job's lifetime,
  so each local search sees a stable roster;
* **the wide-job path** — a gang larger than one partition can never fit
  inside a shard, so it spills to a dedicated path: whole idle nodes are
  *reserved* (masked out of the owning partitions' views, which
  elastically drain onto their remaining nodes), and once the reserved
  nodes are free the job is gang-placed on them FIFO-style at the user's
  batch size.

Per-partition schedules merge at the boundary by construction: partition
views are disjoint node subsets, so a deployed global allocation is just
the union of the expanded per-partition proposals plus the wide gangs.

Faults compose with partitioning the same way they compose with flat
ONES: a down node simply vanishes from its partition's view (the
node-compaction contract of :mod:`repro.faults.masking`), and a
partition that loses every node has its waiting jobs handed to the
surviving shards.

**Parity contract** (the discipline PRs 1/3/4 used): with a single
partition covering the whole cluster (``partitions=1``, or
``partition_size >= num_gpus``) the scheduler *delegates wholesale* to
one flat :class:`ONESScheduler` constructed with the same seed — every
callback, every RNG draw, every proposal is the flat scheduler's own, so
the hierarchical path is bit-identical to flat ONES by construction, not
by test luck.  ``tests/test_core_partitioned.py`` pins this
differentially over faulted and unfaulted trajectories.

Multiple partitions dirty in one event (fault sweeps, reservation
drains) can evolve concurrently: ``parallel_workers > 1`` ships each
(scheduler, view) pair to a process pool — the same
``concurrent.futures`` machinery the experiment backends use — and the
results are bit-identical to the sequential loop because each inner
scheduler round-trips through pickle with its full RNG/population state.
"""

from __future__ import annotations

import math
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    user_local_batch,
)
from repro.cluster.allocation import Allocation, WorkerAssignment
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.jobs.job import EpochRecord, Job
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import active_tracer
from repro.scaling.overhead import ReconfigurationKind
from repro.sim.views import PartitionViewFactory, down_nodes, partition_nodes
from repro.utils.rng import SeedLike, spawn_generator

#: Sentinel partition index of jobs routed to the wide-job path.
WIDE = -1


@dataclass(frozen=True)
class HierarchicalConfig:
    """Configuration of the hierarchical partitioned scheduler.

    ``partition_size`` is in GPUs and must be node-aligned and tile the
    cluster exactly; ``partitions`` (when set) overrides it with an
    explicit partition *count* resolved against the cluster size at
    start-up — ``partitions=1`` is the flat-ONES parity mode.  ``ones``
    configures every per-partition search (the ``EvolutionConfig``
    plumbing rides inside it unchanged).  ``parallel_workers > 1``
    evolves concurrently-dirty partitions in a process pool.
    """

    partition_size: int = 64
    partitions: Optional[int] = None
    ones: ONESConfig = field(default_factory=ONESConfig)
    parallel_workers: int = 0

    def resolved_partition_size(self, num_gpus: int) -> int:
        """The effective shard size for a cluster of ``num_gpus``."""
        if self.partitions is not None:
            count = int(self.partitions)
            if count < 1:
                raise ValueError(f"partitions must be >= 1, got {count}")
            if num_gpus % count != 0:
                raise ValueError(
                    f"cluster size ({num_gpus}) is not divisible into "
                    f"{count} equal partitions"
                )
            return num_gpus // count
        return int(self.partition_size)


@dataclass
class _Partition:
    """One shard: its static node slice and its private ONES instance."""

    index: int
    nodes: Tuple[int, ...]
    inner: ONESScheduler


def _evolve_partition_task(payload: bytes) -> bytes:
    """Process-pool task: run one partition's evolve pass on a pickled pair.

    The inner scheduler crosses the boundary *by value* (RNG state,
    population, predictor and all) and comes back updated, so replacing
    the parent's instance with the returned copy reproduces the
    sequential execution exactly.
    """
    inner, substate = pickle.loads(payload)
    proposal = inner.on_fault(substate)
    return pickle.dumps((proposal, inner))


class HierarchicalONESScheduler(SchedulerBase):
    """Two-level ONES: per-partition evolutionary search + global reconciler."""

    name = "ONES-hier"
    capabilities = SchedulerCapabilities(
        strategy="dynamic",
        allows_preemption=True,
        elastic_job_size=True,
        elastic_batch_size=True,
    )
    reconfiguration_kind = ReconfigurationKind.ELASTIC

    def __init__(
        self, config: Optional[HierarchicalConfig] = None, seed: SeedLike = None
    ) -> None:
        self.config = config or HierarchicalConfig()
        self._seed = seed
        # Resolved lazily on the first callback (the cluster size only
        # becomes known through the first ClusterState).
        self._flat: Optional[ONESScheduler] = None
        self._partitions: List[_Partition] = []
        self._views: Optional[PartitionViewFactory] = None
        self._partition_size: int = 0
        self._gpus_per_node: int = 0
        #: job id -> partition index (WIDE for the wide-job path).
        self._assignment: Dict[str, int] = {}
        #: queued wide job id -> node ids reserved (and being drained) for it.
        self._reserved: Dict[str, Tuple[int, ...]] = {}
        #: visible node set per partition at the previous event, for
        #: capacity-change detection (faults, reservations, give-backs).
        self._last_visible: Dict[int, Tuple[int, ...]] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        self.num_wide_placements = 0

    # ------------------------------------------------------------------ setup

    def _ensure_setup(self, state: ClusterState) -> None:
        if self._flat is not None or self._partitions:
            return
        num_gpus = state.topology.num_gpus
        size = self.config.resolved_partition_size(num_gpus)
        if size >= num_gpus:
            # Single partition == the whole cluster: delegate wholesale to
            # one flat ONES with the original seed.  This is the parity
            # mode — bit-identical to flat ONES by construction.
            self._flat = ONESScheduler(self.config.ones, seed=self._seed)
            return
        self._partition_size = size
        self._gpus_per_node = state.topology.gpus_per_node
        self._views = PartitionViewFactory(
            state.topology, state.throughput_model.allreduce_efficiency
        )
        for index, nodes in enumerate(partition_nodes(state.topology, size)):
            inner = ONESScheduler(
                self.config.ones,
                seed=spawn_generator(self._seed, f"ones-hier/partition-{index}"),
            )
            inner.trace_label = f"p{index}"
            self._partitions.append(_Partition(index=index, nodes=nodes, inner=inner))

    # ------------------------------------------------------------------ callbacks

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        self._ensure_setup(state)
        if self._flat is not None:
            return self._flat.on_job_arrival(job, state)
        return self._handle(state, "arrival", job=job)

    def on_epoch_end(
        self, job: Job, record: EpochRecord, state: ClusterState
    ) -> Optional[Allocation]:
        self._ensure_setup(state)
        if self._flat is not None:
            return self._flat.on_epoch_end(job, record, state)
        return self._handle(state, "epoch_end", job=job, record=record)

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        self._ensure_setup(state)
        if self._flat is not None:
            return self._flat.on_job_completion(job, state)
        return self._handle(state, "completion", job=job)

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        self._ensure_setup(state)
        if self._flat is not None:
            return self._flat.on_fault(state)
        return self._handle(state, "fault")

    # ------------------------------------------------------------------ reconciler

    def _handle(
        self,
        state: ClusterState,
        kind: str,
        job: Optional[Job] = None,
        record: Optional[EpochRecord] = None,
    ) -> Optional[Allocation]:
        down = down_nodes(state)
        wide_held = self._wide_held_nodes(state)
        self._sync_assignments(state, down, wide_held)
        self._refresh_reservations(state, down, wide_held)
        visible = self._visible_nodes(down, wide_held)
        self._rescue_stranded_jobs(state, visible)

        event_partition: Optional[int] = None
        if job is not None:
            event_partition = self._assignment.get(job.job_id)
        dirty: Set[int] = set()
        if event_partition is not None and event_partition != WIDE:
            dirty.add(event_partition)
        if kind == "fault":
            dirty.update(p.index for p in self._partitions)
        for partition in self._partitions:
            if visible[partition.index] != self._last_visible.get(partition.index):
                dirty.add(partition.index)

        merged = dict(state.allocation.as_dict())
        changed = False
        sequential: List[_Partition] = []
        background: List[_Partition] = []
        for index in sorted(dirty):
            partition = self._partitions[index]
            if index == event_partition and kind != "fault":
                sequential.append(partition)
            else:
                background.append(partition)

        proposals: Dict[int, Optional[Allocation]] = {}
        views = {
            p.index: self._view(state, p, visible[p.index], job) for p in dirty_list(sequential, background)
        }
        for partition in sequential:
            proposals[partition.index] = self._invoke(
                partition, views[partition.index], kind, job, record
            )
        proposals.update(self._evolve_background(background, views))

        for index in sorted(proposals):
            proposal = proposals[index]
            if proposal is None:
                continue
            view = views[index]
            real = view.expand(proposal).as_dict()
            owned = {
                job_id
                for job_id, part in self._assignment.items()
                if part == index
            }
            merged = {g: w for g, w in merged.items() if w[0] not in owned}
            merged.update(real)
            changed = True

        if self._place_wide_jobs(state, down, merged):
            changed = True

        self._last_visible = visible
        self._prune_assignments(state)
        if not changed:
            return None
        return Allocation(
            {g: WorkerAssignment(job_id, batch) for g, (job_id, batch) in merged.items()}
        )

    # -- job -> partition assignment ----------------------------------------------------

    def _sync_assignments(
        self, state: ClusterState, down: frozenset, wide_held: Set[int]
    ) -> None:
        """Assign every unseen active job to a partition (or the wide path).

        Least-loaded with gang-size fit: among partitions whose *current*
        capacity (visible nodes × GPUs/node) fits the requested gang,
        pick the one with the least outstanding requested-GPU load, ties
        to the lowest index.  Gangs wider than a whole partition spill to
        the wide path.  Assignments are sticky for the job's lifetime.
        """
        visible = self._visible_nodes(down, wide_held)
        loads = self._partition_loads(state)
        unseen = [
            job
            for job_id, job in state.active_jobs().items()
            if job_id not in self._assignment
        ]
        unseen.sort(key=lambda j: (j.arrival_time, j.job_id))
        tracer = active_tracer()
        for job in unseen:
            demand = int(job.spec.requested_gpus)
            if demand > self._partition_size:
                self._assignment[job.job_id] = WIDE
                if tracer is not None:
                    tracer.event(
                        "assign",
                        "reconciler",
                        state.now,
                        job=job.job_id,
                        partition="wide",
                        demand=demand,
                    )
                continue
            capacity = {
                index: len(nodes) * self._gpus_per_node
                for index, nodes in visible.items()
            }
            fitting = [i for i, cap in capacity.items() if cap >= demand]
            if fitting:
                chosen = min(fitting, key=lambda i: (loads[i], i))
            else:
                # Nothing currently fits (heavy faults / loans): park the
                # job on the partition with the most capacity; it waits
                # there and the partition schedules it when nodes return.
                chosen = max(capacity, key=lambda i: (capacity[i], -i))
            self._assignment[job.job_id] = chosen
            loads[chosen] += demand
            if tracer is not None:
                tracer.event(
                    "assign",
                    "reconciler",
                    state.now,
                    job=job.job_id,
                    partition=chosen,
                    demand=demand,
                )

    def _partition_loads(self, state: ClusterState) -> Dict[int, int]:
        """Outstanding requested-GPU load of each partition's assigned jobs."""
        loads = {p.index: 0 for p in self._partitions}
        active = state.active_jobs()
        for job_id, index in self._assignment.items():
            if index == WIDE:
                continue
            job = active.get(job_id)
            if job is not None:
                loads[index] += int(job.spec.requested_gpus)
        return loads

    def _rescue_stranded_jobs(
        self, state: ClusterState, visible: Dict[int, Tuple[int, ...]]
    ) -> None:
        """Re-home waiting jobs stuck on partitions with zero visible nodes."""
        active = state.active_jobs()
        stranded = [
            job_id
            for job_id, index in self._assignment.items()
            if index != WIDE
            and not visible[index]
            and job_id in active
            and not active[job_id].is_running
        ]
        for job_id in stranded:
            del self._assignment[job_id]
        if stranded:
            self._sync_assignments(
                state, down_nodes(state), self._wide_held_nodes(state)
            )

    def _prune_assignments(self, state: ClusterState) -> None:
        active = state.active_jobs()
        for job_id in [j for j in self._assignment if j not in active]:
            del self._assignment[job_id]
            self._reserved.pop(job_id, None)

    # -- per-partition views & evolution ------------------------------------------------

    def _visible_nodes(
        self, down: frozenset, wide_held: Set[int]
    ) -> Dict[int, Tuple[int, ...]]:
        reserved: Set[int] = set()
        for nodes in self._reserved.values():
            reserved.update(nodes)
        hidden = set(down) | set(wide_held) | reserved
        return {
            p.index: tuple(n for n in p.nodes if n not in hidden)
            for p in self._partitions
        }

    def _partition_jobs(self, state: ClusterState, index: int) -> Dict[str, Job]:
        active = state.active_jobs()
        return {
            job_id: active[job_id]
            for job_id, part in self._assignment.items()
            if part == index and job_id in active
        }

    def _view(
        self,
        state: ClusterState,
        partition: _Partition,
        nodes: Tuple[int, ...],
        event_job: Optional[Job],
    ):
        jobs = self._partition_jobs(state, partition.index)
        if (
            event_job is not None
            and self._assignment.get(event_job.job_id) == partition.index
        ):
            # Completion events arrive after the job left active_jobs();
            # the inner scheduler still needs to see it for bookkeeping.
            jobs.setdefault(event_job.job_id, event_job)
        assert self._views is not None
        return self._views.view(state, nodes, jobs)

    def _invoke(
        self,
        partition: _Partition,
        view,
        kind: str,
        job: Optional[Job],
        record: Optional[EpochRecord],
    ) -> Optional[Allocation]:
        inner = partition.inner
        if view is None:
            # The partition has no visible nodes (blackout / full loan).
            # Keep the inner bookkeeping consistent without evolving.
            if kind == "arrival" and job is not None:
                inner.limiter.on_job_arrival(job)
            elif kind == "completion" and job is not None:
                inner.predictor.observe_completion(job)
                inner.limiter.forget(job.job_id)
                inner._epochs_at_last_update.pop(job.job_id, None)
            return None
        if kind == "arrival":
            return inner.on_job_arrival(job, view.state)
        if kind == "epoch_end":
            return inner.on_epoch_end(job, record, view.state)
        if kind == "completion":
            return inner.on_job_completion(job, view.state)
        return inner.on_fault(view.state)

    def _evolve_background(
        self, partitions: List[_Partition], views: Dict[int, object]
    ) -> Dict[int, Optional[Allocation]]:
        """Evolve capacity-dirty partitions (an ``on_fault``-style pass each).

        With ``parallel_workers > 1`` and several dirty partitions the
        passes run in a process pool; results are bit-identical to the
        sequential loop (the inner scheduler state round-trips by value).
        Pickling failures fall back to sequential permanently.
        """
        live = [p for p in partitions if views[p.index] is not None]
        results: Dict[int, Optional[Allocation]] = {
            p.index: None for p in partitions if views[p.index] is None
        }
        workers = int(self.config.parallel_workers)
        if workers > 1 and len(live) > 1 and not self._pool_broken:
            try:
                payloads = {
                    p.index: pickle.dumps((p.inner, views[p.index].state))
                    for p in live
                }
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=workers)
                futures = {
                    index: self._pool.submit(_evolve_partition_task, payload)
                    for index, payload in payloads.items()
                }
                for partition in live:
                    proposal, updated = pickle.loads(futures[partition.index].result())
                    self._partitions[partition.index].inner = updated
                    results[partition.index] = proposal
                return results
            except Exception:
                # Anything unpicklable (or a broken pool) demotes this
                # scheduler to the sequential path for the rest of the run.
                self._pool_broken = True
                if self._pool is not None:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                    self._pool = None
        for partition in live:
            results[partition.index] = partition.inner.on_fault(views[partition.index].state)
        return results

    # -- the wide-job path --------------------------------------------------------------

    def _wide_jobs(self, state: ClusterState) -> Dict[str, Job]:
        active = state.active_jobs()
        return {
            job_id: active[job_id]
            for job_id, part in self._assignment.items()
            if part == WIDE and job_id in active
        }

    def _wide_held_nodes(self, state: ClusterState) -> Set[int]:
        """Nodes currently occupied by placed wide gangs (derived, not stored)."""
        held: Set[int] = set()
        for job_id, part in self._assignment.items():
            if part != WIDE:
                continue
            for gpu in state.allocation.gpus_of(job_id):
                held.add(int(state.topology.node_of(gpu)))
        return held

    def _queued_wide(self, state: ClusterState) -> List[Job]:
        """Admitted wide jobs holding no GPUs, FIFO by arrival."""
        queued = [
            job
            for job in self._wide_jobs(state).values()
            if state.allocation.config_of(job.job_id) is None
        ]
        queued.sort(key=lambda j: (j.arrival_time, j.job_id))
        return queued

    def _refresh_reservations(
        self, state: ClusterState, down: frozenset, wide_held: Set[int]
    ) -> None:
        """Reserve (and repair) whole-node claims for queued wide gangs.

        Reserved nodes disappear from their partitions' views, so the
        partitions elastically drain them; the gang is placed the moment
        its reservation is fully idle.  Reservations are sticky —
        re-picking every event would thrash the drains — and only
        re-picked when a reserved node goes down.
        """
        queued = self._queued_wide(state)
        queued_ids = {job.job_id for job in queued}
        for job_id in [j for j in self._reserved if j not in queued_ids]:
            del self._reserved[job_id]
        taken: Set[int] = set()
        for nodes in self._reserved.values():
            taken.update(nodes)
        busy = self._busy_gpus_per_node(state)
        for job in queued:
            need = math.ceil(int(job.spec.requested_gpus) / self._gpus_per_node)
            current = [
                n for n in self._reserved.get(job.job_id, ()) if n not in down
            ]
            missing = need - len(current)
            if missing <= 0:
                self._reserved[job.job_id] = tuple(current)
                continue
            candidates = [
                n
                for n in range(state.topology.num_nodes)
                if n not in down
                and n not in wide_held
                and n not in taken
                and n not in current
            ]
            # Fewest busy GPUs first: prefer nodes that drain fastest.
            candidates.sort(key=lambda n: (busy.get(n, 0), n))
            if len(candidates) < missing:
                # Not enough nodes in the whole cluster right now; keep
                # what we have and wait (strict FIFO: later wide jobs do
                # not overtake).
                self._reserved[job.job_id] = tuple(current)
                break
            picked = current + candidates[:missing]
            picked.sort()
            self._reserved[job.job_id] = tuple(picked)
            taken.update(picked)
            tracer = active_tracer()
            if tracer is not None:
                tracer.event(
                    "reserve",
                    "reconciler",
                    state.now,
                    job=job.job_id,
                    nodes=len(picked),
                    newly_reserved=missing,
                )

    def _busy_gpus_per_node(self, state: ClusterState) -> Dict[int, int]:
        busy: Dict[int, int] = {}
        for gpu in state.allocation.used_gpus():
            node = int(state.topology.node_of(gpu))
            busy[node] = busy.get(node, 0) + 1
        return busy

    def _place_wide_jobs(
        self,
        state: ClusterState,
        down: frozenset,
        merged: Dict[int, Tuple[str, int]],
    ) -> bool:
        """Gang-place queued wide jobs whose reservations are fully idle."""
        used_gpus = set(merged)
        placed_any = False
        for job in self._queued_wide(state):
            nodes = self._reserved.get(job.job_id, ())
            need = math.ceil(int(job.spec.requested_gpus) / self._gpus_per_node)
            if len(nodes) < need:
                break  # strict FIFO
            gpus: List[int] = []
            ready = True
            for node in nodes:
                if node in down:
                    ready = False
                    break
                for gpu in state.topology.gpus_of_node(node):
                    if int(gpu) in used_gpus:
                        ready = False
                        break
                    gpus.append(int(gpu))
                if not ready:
                    break
            if not ready:
                break  # still draining (or a reserved node went down)
            local = user_local_batch(job)
            for gpu in gpus[: int(job.spec.requested_gpus)]:
                merged[gpu] = (job.job_id, local)
                used_gpus.add(gpu)
            del self._reserved[job.job_id]
            self.num_wide_placements += 1
            placed_any = True
            tracer = active_tracer()
            if tracer is not None:
                tracer.event(
                    "wide_place",
                    "reconciler",
                    state.now,
                    job=job.job_id,
                    num_gpus=int(job.spec.requested_gpus),
                    nodes=len(nodes),
                )
        return placed_any

    # ------------------------------------------------------------------ introspection

    def profile_phases(self) -> Dict[str, float]:
        """Aggregated scheduler-side phases across every inner instance."""
        if self._flat is not None:
            return self._flat.profile_phases()
        totals: Dict[str, float] = {"gpr_refit": 0.0, "gpr_partial_fit": 0.0}
        for partition in self._partitions:
            for key, value in partition.inner.profile_phases().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def metrics_registry(self) -> MetricsRegistry:
        """Reconciler gauges plus inner-counter rollups, built on demand.

        In parity mode this is the flat scheduler's registry with a
        ``partitions`` gauge added, matching :meth:`describe_state`.
        """
        if self._flat is not None:
            registry = self._flat.metrics_registry()
            registry.gauge("partitions", help="scheduler shards").set(1)
            return registry
        registry = MetricsRegistry()
        registry.set_gauges(
            {
                "partitions": len(self._partitions),
                "partition_size": self._partition_size,
                "assigned_jobs": sum(
                    1 for p in self._assignment.values() if p != WIDE
                ),
                "wide_jobs": sum(1 for p in self._assignment.values() if p == WIDE),
                "reserved_nodes": sum(len(n) for n in self._reserved.values()),
            },
            help="reconciler bookkeeping",
        )
        stats = [p.inner.search.scoring_engine.stats() for p in self._partitions]
        counters = {
            "wide_placements": self.num_wide_placements,
            "full_updates": sum(p.inner.num_full_updates for p in self._partitions),
            "incremental_fills": sum(
                p.inner.num_incremental_fills for p in self._partitions
            ),
            "throughput_table_reuses": sum(
                p.inner.num_table_reuses for p in self._partitions
            ),
            "scoring_delta_generations": sum(
                s["delta_generations"] for s in stats
            ),
            "scoring_full_rebuilds": sum(s["full_rebuilds"] for s in stats),
            "scoring_table_swaps": sum(s["table_swaps"] for s in stats),
        }
        for name, value in counters.items():
            registry.counter(name, help="rollup across partitions").inc(value)
        return registry

    def describe_state(self) -> Dict[str, object]:
        """Debug summary: reconciler bookkeeping plus per-partition rollups."""
        if self._flat is not None:
            summary = dict(self._flat.describe_state())
            summary["partitions"] = 1
            return summary
        return dict(self.metrics_registry().values())


def dirty_list(
    sequential: Sequence[_Partition], background: Sequence[_Partition]
) -> List[_Partition]:
    """All dirty partitions, event-owner first (view-build order)."""
    return list(sequential) + list(background)
