"""The ONES scheduler: online evolutionary batch-size orchestration.

ONES wires together the pieces of §3 into the common scheduler
interface:

* an online :class:`~repro.prediction.predictor.ProgressPredictor`
  producing per-job Beta progress distributions (Eq. 6),
* a :class:`~repro.core.batch_limit.BatchSizeLimiter` applying the
  start / resume / scale-up / scale-down policies to ``R_j`` (§3.3.2),
* an :class:`~repro.core.evolution.EvolutionarySearch` over schedule
  genomes scored with the SRUF objective (Eq. 8 / Algorithm 1) — by
  default the whole generation loop runs through the batched
  genome-matrix engine (:mod:`repro.core.evolution_batched`), which is
  bit-identical to the scalar operators; set
  ``EvolutionConfig(batched_operators=False)`` to run the readable
  scalar reference instead,
* elastic re-configuration (Fig. 11) so deploying a new candidate costs
  about a second per affected job rather than tens of seconds.

Deployment policy (§3.2.2 "Update"): the best candidate ``S*`` replaces
the deployed schedule only once every running job has completed at least
one epoch since the previous update — but newly arrived or resumed jobs
may be placed onto *idle* GPUs immediately (the "immediate response to
online workloads" the paper emphasises), because that touches no running
job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import ClusterState, SchedulerBase, SchedulerCapabilities
from repro.cluster.allocation import Allocation
from repro.core.batch_limit import BatchLimitConfig, BatchSizeLimiter
from repro.core.evolution import EvolutionConfig, EvolutionarySearch
from repro.core.operators import EvolutionContext
from repro.core.schedule import Schedule
from repro.jobs.job import EpochRecord, Job
from repro.jobs.throughput import (
    BoundedMemo,
    ThroughputTable,
    derive_global_batch,
    split_batch,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import active_tracer
from repro.prediction.predictor import PredictorConfig, ProgressPredictor
from repro.scaling.overhead import ReconfigurationKind
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ONESConfig:
    """Top-level configuration of the ONES scheduler."""

    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    batch_limits: BatchLimitConfig = field(default_factory=BatchLimitConfig)
    #: Allow immediate placement of pending jobs onto idle GPUs between
    #: full schedule updates.
    immediate_fill: bool = True
    #: Bound on the cross-invocation throughput memo (model evaluations
    #: keyed by (model, global batch, worker count, crosses servers)).
    throughput_memo_entries: int = 65536


class ONESScheduler(SchedulerBase):
    """Online evolutionary scheduler with elastic batch-size orchestration."""

    name = "ONES"
    capabilities = SchedulerCapabilities(
        strategy="dynamic",
        allows_preemption=True,
        elastic_job_size=True,
        elastic_batch_size=True,
    )
    reconfiguration_kind = ReconfigurationKind.ELASTIC

    def __init__(self, config: Optional[ONESConfig] = None, seed: SeedLike = None) -> None:
        self.config = config or ONESConfig()
        self._rng = as_generator(seed)
        self.predictor = ProgressPredictor(self.config.predictor, seed=self._rng)
        self.limiter = BatchSizeLimiter(self.config.batch_limits)
        self.search = EvolutionarySearch(self.config.evolution, seed=self._rng)
        self._epochs_at_last_update: Dict[str, int] = {}
        self._has_deployed: bool = False
        #: Virtual (compacted) topologies per down-node set, so repeated
        #: events during one outage reuse the same instances.
        self._virtual_clusters: Dict[frozenset, Tuple] = {}
        self._throughput_memo = BoundedMemo(self.config.throughput_memo_entries)
        self.last_throughput_table: Optional[ThroughputTable] = None
        #: Inputs the cached table was built from: (roster, num_gpus,
        #: per-roster-job batch limits).  The throughput model is held
        #: as a strong reference and compared by identity, so fault
        #: masking / partition-view swaps (different virtual model
        #: objects) invalidate the cache structurally.
        self._table_signature: Optional[Tuple] = None
        self._table_model: Optional[object] = None
        self.num_table_reuses: int = 0
        self.num_full_updates: int = 0
        self.num_incremental_fills: int = 0
        #: Shard label stamped onto trace records ("" for a flat
        #: scheduler; the hierarchical reconciler sets "p<i>" per
        #: partition).  A plain string so pickled inner schedulers
        #: (parallel evolution workers) carry no recorder reference.
        self.trace_label: str = ""

    # ------------------------------------------------------------------ callbacks

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        self.limiter.on_job_arrival(job)
        return self._evolve_and_maybe_deploy(state)

    def on_epoch_end(
        self, job: Job, record: EpochRecord, state: ClusterState
    ) -> Optional[Allocation]:
        contended = bool(state.pending_jobs())
        self.limiter.on_epoch_end(
            job, executed_time=job.executed_time(state.now), contended=contended
        )
        return self._evolve_and_maybe_deploy(state)

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        self.predictor.observe_completion(job)
        self.limiter.forget(job.job_id)
        self._epochs_at_last_update.pop(job.job_id, None)
        return self._evolve_and_maybe_deploy(state)

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        """Capacity changed: evolve a schedule for the surviving cluster.

        Recovery is the same evolutionary pass as every other event —
        the elastic advantage the paper claims is precisely that ONES
        can re-spread jobs without checkpoint/restart cycles.
        """
        return self._evolve_and_maybe_deploy(state)

    # ------------------------------------------------------------------ context plumbing

    def _ensure_limits(self, state: ClusterState) -> None:
        for job in state.active_jobs().values():
            if job.job_id not in self.limiter.limits():
                self.limiter.on_job_arrival(job)

    def _throughput_table(self, state: ClusterState, roster: Tuple[str, ...]) -> ThroughputTable:
        """Per-invocation throughput lookup table ``X_j(c)``.

        Replaces the previous per-(job, candidate) memoised callback: the
        table is lazily filled, hard-bounded at
        ``jobs × (num_gpus + 1) × 2`` entries (two placement-locality
        planes per count), reused across every candidate and evolution
        iteration of this invocation, and backed by a bounded
        cross-invocation memo of raw model evaluations.

        Since the table's entries depend only on the roster, the
        per-job batch limits ``R_j``, the cluster size and the model,
        the previous event's table (and its lazily-filled entries) is
        reused verbatim whenever none of those changed — the common
        case for epoch-end bursts between limit adjustments.  Any
        change builds a fresh table with a new
        :attr:`~repro.jobs.throughput.ThroughputTable.version`, which
        is how dependent caches learn the old values are dead.
        """
        active = state.active_jobs()
        signature = (
            roster,
            state.topology.num_gpus,
            tuple(
                int(
                    self.limiter.limits().get(
                        job_id, active[job_id].spec.base_batch
                    )
                )
                for job_id in roster
            ),
        )
        cached = self.last_throughput_table
        if (
            cached is not None
            and self._table_model is state.throughput_model
            and self._table_signature == signature
        ):
            self.num_table_reuses += 1
            return cached
        table = ThroughputTable(
            state.throughput_model,
            active,
            self.limiter.limits(),
            state.topology.num_gpus,
            roster=roster,
            memo=self._throughput_memo,
        )
        self.last_throughput_table = table
        self._table_signature = signature
        self._table_model = state.throughput_model
        return table

    def _build_context(self, state: ClusterState) -> EvolutionContext:
        self._ensure_limits(state)
        active = state.active_jobs()
        roster = tuple(sorted(active))
        distributions = self.predictor.progress_distributions(active)
        remaining = {
            job_id: self.predictor.remaining_workload(job)
            for job_id, job in active.items()
        }
        executed = {
            job_id: job.executed_time(state.now) for job_id, job in active.items()
        }
        never_started = {
            job_id for job_id, job in active.items() if job.first_start_time is None
        }
        return EvolutionContext(
            jobs=dict(active),
            roster=roster,
            limits=self.limiter.limits(),
            distributions=distributions,
            throughput_fn=None,
            remaining_workload=remaining,
            executed_time=executed,
            num_gpus=state.topology.num_gpus,
            never_started=never_started,
            rng=self._rng,
            throughput_table=self._throughput_table(state, roster),
        )

    # ------------------------------------------------------------------ deployment policy

    def _may_full_update(self, state: ClusterState) -> bool:
        """True once every running job finished ≥1 epoch since the last update."""
        if not self._has_deployed:
            return True
        running = state.running_jobs()
        if not running:
            return True
        for job_id, job in running.items():
            baseline = self._epochs_at_last_update.get(job_id, 0)
            if job.epochs_completed < baseline + 1:
                return False
        return True

    def _record_update(self, state: ClusterState) -> None:
        self._has_deployed = True
        self._epochs_at_last_update = {
            job_id: job.epochs_completed for job_id, job in state.active_jobs().items()
        }

    def _evolve_and_maybe_deploy(self, state: ClusterState) -> Optional[Allocation]:
        masked = state.unavailable_gpus
        if masked:
            if len(masked) >= state.topology.num_gpus:
                # Transient blackout (only reachable through a
                # hand-written plan with a coincident outage hand-off):
                # nothing to schedule onto until a NODE_UP restores
                # capacity an instant later.
                return None
            # Down nodes: evolve over a dense *virtual* cluster of the
            # surviving servers (node compaction preserves placement
            # locality exactly on the homogeneous star fabric), then map
            # the winning allocation back to real GPU ids.  The genome
            # layer never has to learn about holes in the id space.
            view = self._compact_view(state)
            proposal = self._evolve_on(view.state)
            return view.expand(proposal) if proposal is not None else None
        return self._evolve_on(state)

    def _compact_view(self, state: ClusterState):
        from repro.faults.masking import compact_state, virtual_cluster

        key = state.unavailable_gpus
        cached = self._virtual_clusters.get(key)
        if cached is None:
            cached = virtual_cluster(state)
            self._virtual_clusters[key] = cached
        topology, model = cached
        return compact_state(state, topology, model)

    def _evolve_on(self, state: ClusterState) -> Optional[Allocation]:
        active = state.active_jobs()
        if not active:
            return None

        can_update = self._may_full_update(state)
        has_slack = bool(state.free_gpus()) and bool(state.pending_jobs())
        if not can_update and not has_slack:
            # Nothing this event could change: every running job is
            # mid-epoch (no full update allowed yet) and there is no idle
            # GPU / pending job to fill.  Skip the evolution work.
            return None

        ctx = self._build_context(state)

        if can_update:
            current = Schedule.from_allocation(
                ctx.roster, state.topology.num_gpus, state.allocation
            )
            tracer = active_tracer()
            span = stats_before = None
            if tracer is not None:
                stats_before = dict(self.search.scoring_engine.stats())
                span = tracer.begin_span(
                    "evolve",
                    "ones",
                    state.now,
                    shard=self.trace_label,
                    active_jobs=len(active),
                )
            best, _score = self.search.step(ctx, current=current)
            allocation = best.to_allocation(ctx.jobs, ctx.limits)
            if span is not None:
                self._trace_decision(
                    tracer,
                    span,
                    state.now,
                    _score,
                    stats_before,
                    deployed=allocation != state.allocation,
                )
            if allocation == state.allocation:
                self._record_update(state)
                return None
            self._apply_resume_policy(state, allocation)
            self._record_update(state)
            self.num_full_updates += 1
            return allocation

        if self.config.immediate_fill:
            filled = self._incremental_fill(state, ctx)
            if filled is not None:
                self.num_incremental_fills += 1
                tracer = active_tracer()
                if tracer is not None:
                    tracer.event(
                        "incremental_fill",
                        "ones",
                        state.now,
                        shard=self.trace_label,
                        placed_jobs=len(filled.jobs()),
                    )
                return filled
        return None

    def _trace_decision(self, tracer, span, now, score, stats_before, deployed):
        """Emit the per-generation, cache-delta and decision records.

        Called only when tracing is active.  Everything read here is a
        pure observation of state the search already computed — no RNG,
        no mutation — so traced and untraced runs stay bit-identical.
        """
        scores = self.search.last_iteration_scores
        first_generation = self.search.iterations_run - len(scores)
        for offset, best_score in enumerate(scores):
            tracer.event(
                "generation",
                "ones",
                now,
                shard=self.trace_label,
                generation=first_generation + offset,
                best_score=best_score,
            )
        stats_after = self.search.scoring_engine.stats()
        cache_delta = {
            key: stats_after[key] - stats_before.get(key, 0) for key in stats_after
        }
        if any(cache_delta.values()):
            tracer.event(
                "scoring_cache", "ones", now, shard=self.trace_label, **cache_delta
            )
        tracer.event(
            "reconfig_decision",
            "ones",
            now,
            shard=self.trace_label,
            score=float(score),
            population_size=self.search.population_size,
            generations=len(scores),
            deployed=deployed,
        )
        tracer.end_span(span, t=now)

    def _apply_resume_policy(self, state: ClusterState, allocation: Allocation) -> None:
        """Halve ``R_j`` of jobs that stay waiting after this update (Resume policy)."""
        placed = allocation.jobs()
        for job_id, job in state.active_jobs().items():
            if job_id in placed:
                continue
            if not job.is_running:
                # It was waiting and remains waiting: rejection.
                self.limiter.on_schedule_rejection(job)
            else:
                # It is being preempted: it keeps its limit for later resume.
                self.limiter.on_preemption(job)

    def _incremental_fill(
        self, state: ClusterState, ctx: EvolutionContext
    ) -> Optional[Allocation]:
        """Place pending jobs onto idle GPUs without touching running jobs."""
        free = state.free_gpus()
        pending = [
            job
            for job in state.pending_jobs().values()
            if job.job_id in ctx.roster
        ]
        if not free or not pending:
            return None
        # Shortest expected remaining work first (SRUF for the fill order).
        pending.sort(key=lambda j: ctx.remaining_workload.get(j.job_id, float("inf")))
        mapping = state.allocation.as_dict()
        changed = False
        for job in pending:
            if not free:
                break
            desired = ctx.desired_gpus(job.job_id)
            take = min(desired, len(free))
            if take <= 0:
                continue
            gpus = free[:take]
            free = free[take:]
            global_batch = derive_global_batch(
                take, job.spec.max_local_batch, ctx.limit(job.job_id), job.dataset_size
            )
            for gpu, batch in zip(gpus, split_batch(global_batch, take)):
                mapping[gpu] = (job.job_id, max(1, batch))
            changed = True
        if not changed:
            return None
        grouped: Dict[str, List[Tuple[int, int]]] = {}
        for gpu, (job_id, batch) in mapping.items():
            grouped.setdefault(job_id, []).append((gpu, batch))
        return Allocation.from_job_map(grouped)

    # ------------------------------------------------------------------ introspection

    def profile_phases(self) -> Dict[str, float]:
        """Scheduler-side wall-clock phases picked up by ``SimProfile``.

        The simulator merges these into ``SimulationResult.profile`` when
        the run was configured with ``collect_profile=True``, which is
        how the GPR-refit share of a run becomes measurable.  The
        ``evo_*`` operator phases and the ``rescore_full`` /
        ``rescore_delta`` attribution come from the batched generation
        loop (see :func:`repro.core.evolution_batched.run_generation`),
        so a ``--profile`` run shows exactly where a generation's
        wall-clock goes and how much of it the incremental-scoring
        cache absorbed.
        """
        phases = {
            "gpr_refit": self.predictor.refit_seconds,
            "gpr_partial_fit": self.predictor.partial_fit_seconds,
        }
        phases.update(self.search.phase_seconds)
        return phases

    def metrics_registry(self) -> MetricsRegistry:
        """The scheduler's live counters as a metrics registry.

        Built on demand from plain instance counters (the hot path never
        touches registry objects, and pickled inner schedulers in the
        hierarchical process pool stay registry-free).  Metric names
        deliberately match the historical ``describe_state()`` keys.
        """
        registry = MetricsRegistry()
        scoring = self.search.scoring_engine.stats()
        gauges = {
            "population_size": self.search.population_size,
            "iterations_run": self.search.iterations_run,
            "predictor_fits": self.predictor.fit_count,
            "predictor_partial_fits": self.predictor.partial_fit_count,
            "tracked_limits": len(self.limiter.limits()),
            "throughput_memo_entries": len(self._throughput_memo),
        }
        registry.set_gauges(gauges, help="ONES search state")
        counters = {
            "full_updates": self.num_full_updates,
            "incremental_fills": self.num_incremental_fills,
            "throughput_table_reuses": self.num_table_reuses,
            "scoring_delta_generations": scoring["delta_generations"],
            "scoring_full_rebuilds": scoring["full_rebuilds"],
            "scoring_table_swaps": scoring["table_swaps"],
        }
        for name, value in counters.items():
            registry.counter(name, help="ONES scheduler counter").inc(value)
        return registry

    def describe_state(self) -> Dict[str, object]:
        """Debug summary used in logs and the quickstart example.

        Numeric fields come from :meth:`metrics_registry` so the CLI,
        the service ``/metrics`` op and this summary can never drift;
        only the non-numeric configuration flags are added by hand.
        """
        summary: Dict[str, object] = {
            "batched_operators": self.config.evolution.batched_operators,
            "incremental_scoring": self.config.evolution.incremental_scoring,
            "refit_policy": self.config.predictor.refit_policy,
        }
        summary.update(self.metrics_registry().values())
        return summary
