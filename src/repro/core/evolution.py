"""The online evolutionary search loop (Fig. 5).

Each iteration takes the current population ``G_i``, derives new
candidates with the four operators (refresh, uniform crossover, uniform
mutation, reorder), scores every candidate by probability sampling over
the predicted progress distributions, and keeps the best ``K`` as
``G_{i+1}``.  The best candidate overall, ``S*``, is what ONES deploys.

Because the search is *online*, the context (job roster, limits,
progress distributions) changes between invocations; the population is
re-indexed onto the new roster and refreshed at the start of every
iteration so stale candidates never survive unexamined.

Two operator implementations drive the loop:

* the **scalar reference** in :mod:`repro.core.operators` manipulates
  one :class:`~repro.core.schedule.Schedule` at a time, and
* the **batched engine** in :mod:`repro.core.evolution_batched` runs a
  whole generation as array ops over the stacked ``(K, num_gpus)``
  genome matrix, materialising a :class:`Schedule` only for the winner.

``EvolutionConfig.batched_operators`` (default ``True``) selects the
engine whenever the context carries a throughput table; both paths are
bit-identical — same RNG stream, same genomes, same selection order —
which ``tests/test_core_evolution_batched.py`` asserts differentially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.evolution_batched import (
    initial_population_genomes,
    reindex_genomes,
    run_generation,
)
from repro.core.scoring_incremental import IncrementalScoringEngine
from repro.core.operators import (
    EvolutionContext,
    refresh,
    reorder,
    uniform_crossover,
    uniform_mutation,
)
from repro.core.population import Population, initial_population
from repro.core.schedule import Schedule, stack_genomes
from repro.core.scoring import select_top_k
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class EvolutionConfig:
    """Hyper-parameters of the evolutionary search.

    Parameters
    ----------
    population_size:
        ``K``; the paper suggests the cluster size.  ``None`` lets the
        scheduler pick ``min(num_gpus, 64)`` — with the vectorised
        scoring engine this covers the paper's 64-GPU cluster at the
        intended ``K = num_gpus`` while still bounding the (Python-level)
        operator cost on larger clusters.
    mutation_rate:
        Per-job preemption probability θ of the uniform mutation.
    crossover_pairs:
        Number of parent pairs crossed per iteration (the paper uses K
        pairs; smaller values reduce per-event cost proportionally).
    iterations_per_invocation:
        Evolution iterations executed each time the scheduler is invoked
        (the search is continuous; each event advances it a little).
    enable_crossover / enable_mutation / enable_reorder:
        Ablation switches for the operator-ablation benchmark.
    batched_operators:
        Run each generation through the batched genome-matrix engine
        (:mod:`repro.core.evolution_batched`) instead of the scalar
        per-candidate operators.  Requires the context to carry a
        throughput table (the ONES scheduler always provides one);
        contexts without one silently use the scalar reference.  Both
        engines are bit-identical, so this flag only trades speed for
        debuggability.
    incremental_scoring:
        Maintain the per-candidate score decomposition (GPU counts +
        placement locality) incrementally across operators and
        generations (:mod:`repro.core.scoring_incremental`) instead of
        re-deriving it from the genome matrix every generation.  Only
        affects the batched path; bit-identical to both other paths,
        with an automatic full rebuild whenever the population, roster,
        genome width or topology changes (fault masking, partition-view
        swaps).  Off reproduces the PR 3 batched baseline exactly.
    """

    population_size: Optional[int] = None
    mutation_rate: float = 0.2
    crossover_pairs: Optional[int] = None
    iterations_per_invocation: int = 1
    enable_crossover: bool = True
    enable_mutation: bool = True
    enable_reorder: bool = True
    batched_operators: bool = True
    incremental_scoring: bool = True

    def __post_init__(self) -> None:
        if self.population_size is not None:
            check_positive_int(self.population_size, "population_size")
        check_probability(self.mutation_rate, "mutation_rate")
        if self.crossover_pairs is not None:
            check_positive_int(self.crossover_pairs, "crossover_pairs")
        check_positive_int(self.iterations_per_invocation, "iterations_per_invocation")

    def resolved_population_size(self, num_gpus: int) -> int:
        """The effective K for a cluster of ``num_gpus`` GPUs."""
        if self.population_size is not None:
            return self.population_size
        return max(4, min(num_gpus, 64))

    def resolved_crossover_pairs(self, population_size: int) -> int:
        """The effective number of crossover pairs per iteration."""
        if self.crossover_pairs is not None:
            return self.crossover_pairs
        return max(1, population_size // 2)


class EvolutionarySearch:
    """Maintains the population across scheduler invocations.

    In batched mode the population lives as a ``(K, num_gpus)`` genome
    matrix between events; :class:`~repro.core.schedule.Schedule`
    objects are materialised only for the per-event winner (through the
    validation-skipping :meth:`Schedule.from_validated_genome`) and on
    demand through the :attr:`population` view.
    """

    def __init__(self, config: Optional[EvolutionConfig] = None, seed: SeedLike = None) -> None:
        self.config = config or EvolutionConfig()
        self._rng = as_generator(seed)
        self._members: Population = Population()
        self._genomes: Optional[np.ndarray] = None
        self._genome_roster: Optional[Tuple[str, ...]] = None
        self.best_candidate: Optional[Schedule] = None
        self.best_score: float = float("inf")
        self.iterations_run: int = 0
        #: Best score of each generation in the most recent :meth:`step`
        #: call — the scheduler turns these into per-generation trace
        #: events (the search itself has no clock).
        self.last_iteration_scores: List[float] = []
        #: Delta-scoring cache (used only when
        #: ``config.incremental_scoring`` and the batched path run).
        self.scoring_engine = IncrementalScoringEngine()
        #: Per-operator wall-clock accrued by the batched generation
        #: loop (``evo_fill``/``evo_crossover``/``evo_mutation``/
        #: ``evo_selection`` + ``rescore_full``/``rescore_delta``);
        #: surfaced through ``ONESScheduler.profile_phases``.
        self.phase_seconds: Dict[str, float] = {}

    # -- population views -----------------------------------------------------------------------

    @property
    def population(self) -> Population:
        """The current population as :class:`Schedule` objects.

        In batched mode this materialises the genome matrix on demand
        (cheap: the fast-path constructor skips re-validation) — the
        returned :class:`Population` is a *detached view*, so mutating
        it (``search.population.add(...)``) does not feed back into the
        search; assign a whole :class:`Population` to the property
        instead.  In scalar mode it is the live population object.
        """
        if self._genomes is not None:
            roster = self._genome_roster or ()
            return Population(
                [Schedule.from_validated_genome(roster, row) for row in self._genomes]
            )
        return self._members

    @population.setter
    def population(self, value: Population) -> None:
        self._members = value
        self._genomes = None
        self._genome_roster = None

    @property
    def population_size(self) -> int:
        """Current population size without materialising any Schedules."""
        if self._genomes is not None:
            return int(self._genomes.shape[0])
        return len(self._members)

    def _use_batched(self, ctx: EvolutionContext) -> bool:
        return self.config.batched_operators and ctx.throughput_table is not None

    # -- population lifecycle -------------------------------------------------------------------

    def ensure_population(self, ctx: EvolutionContext, current: Optional[Schedule]) -> None:
        """(Re)initialise the population if empty or the roster changed.

        A *width* change — the schedulable GPU count differs from the
        population's genome length, which happens when fault injection
        takes nodes down or brings them back
        (:mod:`repro.faults.masking`) — discards the population: the old
        candidates describe placements on a cluster that no longer
        exists.  On a static cluster this branch never fires.
        """
        if self._genomes is not None and self._genomes.shape[1] != ctx.num_gpus:
            self._genomes = None
            self._genome_roster = None
            # The genome width changed (fault masking / partition-view
            # swap): the delta-scoring cache describes a cluster that no
            # longer exists.  (prepare() would also notice via the
            # population-identity check; dropping it here is explicit.)
            self.scoring_engine.invalidate()
        if (
            len(self._members) > 0
            and self._members.members[0].genome.shape[0] != ctx.num_gpus
        ):
            self._members = Population()
        size = self.config.resolved_population_size(ctx.num_gpus)
        if self._genomes is not None:
            if self._genome_roster != ctx.roster:
                genomes = reindex_genomes(self._genomes, self._genome_roster, ctx.roster)
                if current is not None:
                    reindexed = current.reindexed(ctx.roster).genome
                    genomes = np.concatenate([genomes, reindexed[None, :]], axis=0)
                self._genomes = genomes
                self._genome_roster = ctx.roster
            return
        if len(self._members) == 0:
            if self._use_batched(ctx):
                self._genomes = initial_population_genomes(
                    ctx, size, current=current, seed=self._rng
                )
                self._genome_roster = ctx.roster
            else:
                self._members = initial_population(
                    ctx, size, current=current, seed=self._rng
                )
            return
        if self._members.members[0].roster != ctx.roster:
            self._members = self._members.reindexed(ctx.roster)
            if current is not None:
                self._members.add(current.reindexed(ctx.roster))

    # -- one iteration ------------------------------------------------------------------------------

    def step(self, ctx: EvolutionContext, current: Optional[Schedule] = None) -> Tuple[Schedule, float]:
        """Run ``iterations_per_invocation`` evolution iterations.

        Returns the best candidate ``S*`` and its sampled score.
        """
        self.ensure_population(ctx, current)
        best: Optional[Tuple[Schedule, float]] = None
        self.last_iteration_scores = []
        for _ in range(self.config.iterations_per_invocation):
            best = self._iterate(ctx)
            self.iterations_run += 1
            self.last_iteration_scores.append(float(best[1]))
        assert best is not None
        self.best_candidate, self.best_score = best
        return best

    def _iterate(self, ctx: EvolutionContext) -> Tuple[Schedule, float]:
        if self._use_batched(ctx):
            return self._iterate_batched(ctx)
        return self._iterate_scalar(ctx)

    def _iterate_batched(self, ctx: EvolutionContext) -> Tuple[Schedule, float]:
        """One generation on the genome matrix (no intermediate Schedules)."""
        if self._genomes is None:
            # The population was built by the scalar path (e.g. a
            # table-less event earlier); lift it onto the matrix once.
            self._genomes = stack_genomes(self._members.members)
            self._genome_roster = self._members.members[0].roster
            self._members = Population()
        result = run_generation(
            self._genomes,
            ctx,
            self.config,
            engine=self.scoring_engine,
            phases=self.phase_seconds,
        )
        self._genomes = result.population
        self._genome_roster = ctx.roster
        best = Schedule.from_validated_genome(ctx.roster, result.best_genome)
        return best, result.best_score

    def _iterate_scalar(self, ctx: EvolutionContext) -> Tuple[Schedule, float]:
        """The scalar reference generation (one Schedule at a time)."""
        size = self.config.resolved_population_size(ctx.num_gpus)
        # Refresh every member against the live job status.
        refreshed = [refresh(member, ctx) for member in self.population]
        candidates: List[Schedule] = list(refreshed)

        # Uniform crossover of randomly chosen parent pairs.
        if self.config.enable_crossover and len(refreshed) >= 2:
            pairs = self.config.resolved_crossover_pairs(size)
            for _ in range(pairs):
                i, j = ctx.rng.choice(len(refreshed), size=2, replace=False)
                child_a, child_b = uniform_crossover(
                    refreshed[int(i)], refreshed[int(j)], rng=ctx.rng
                )
                candidates.append(fill_or_keep(child_a, ctx))
                candidates.append(fill_or_keep(child_b, ctx))

        # Uniform mutation of randomly chosen members.
        if self.config.enable_mutation:
            for _ in range(size):
                idx = int(ctx.rng.integers(0, len(refreshed)))
                candidates.append(
                    uniform_mutation(refreshed[idx], ctx, self.config.mutation_rate)
                )

        # Reorder for locality.
        if self.config.enable_reorder:
            candidates = [reorder(candidate) for candidate in candidates]

        # Selection: keep the best K by probability sampling (Alg. 1);
        # with a throughput table the whole pool is scored in one batch.
        survivors = select_top_k(
            candidates,
            ctx.jobs,
            ctx.distributions,
            ctx.throughput_fn,
            k=size,
            rng=ctx.rng,
            table=ctx.throughput_table,
        )
        self.population = Population([schedule for schedule, _ in survivors])
        return survivors[0]


#: Alias used by docs and callers that think of this as "the engine".
EvolutionEngine = EvolutionarySearch


def fill_or_keep(candidate: Schedule, ctx: EvolutionContext) -> Schedule:
    """Repair helper: crossover children may leave GPUs idle; fill them."""
    from repro.core.operators import fill_idle_gpus

    return fill_idle_gpus(candidate, ctx)
