"""The online evolutionary search loop (Fig. 5).

Each iteration takes the current population ``G_i``, derives new
candidates with the four operators (refresh, uniform crossover, uniform
mutation, reorder), scores every candidate by probability sampling over
the predicted progress distributions, and keeps the best ``K`` as
``G_{i+1}``.  The best candidate overall, ``S*``, is what ONES deploys.

Because the search is *online*, the context (job roster, limits,
progress distributions) changes between invocations; the population is
re-indexed onto the new roster and refreshed at the start of every
iteration so stale candidates never survive unexamined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.operators import (
    EvolutionContext,
    refresh,
    reorder,
    uniform_crossover,
    uniform_mutation,
)
from repro.core.population import Population, initial_population
from repro.core.schedule import Schedule
from repro.core.scoring import select_top_k
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class EvolutionConfig:
    """Hyper-parameters of the evolutionary search.

    Parameters
    ----------
    population_size:
        ``K``; the paper suggests the cluster size.  ``None`` lets the
        scheduler pick ``min(num_gpus, 64)`` — with the vectorised
        scoring engine this covers the paper's 64-GPU cluster at the
        intended ``K = num_gpus`` while still bounding the (Python-level)
        operator cost on larger clusters.
    mutation_rate:
        Per-job preemption probability θ of the uniform mutation.
    crossover_pairs:
        Number of parent pairs crossed per iteration (the paper uses K
        pairs; smaller values reduce per-event cost proportionally).
    iterations_per_invocation:
        Evolution iterations executed each time the scheduler is invoked
        (the search is continuous; each event advances it a little).
    enable_crossover / enable_mutation / enable_reorder:
        Ablation switches for the operator-ablation benchmark.
    """

    population_size: Optional[int] = None
    mutation_rate: float = 0.2
    crossover_pairs: Optional[int] = None
    iterations_per_invocation: int = 1
    enable_crossover: bool = True
    enable_mutation: bool = True
    enable_reorder: bool = True

    def __post_init__(self) -> None:
        if self.population_size is not None:
            check_positive_int(self.population_size, "population_size")
        check_probability(self.mutation_rate, "mutation_rate")
        if self.crossover_pairs is not None:
            check_positive_int(self.crossover_pairs, "crossover_pairs")
        check_positive_int(self.iterations_per_invocation, "iterations_per_invocation")

    def resolved_population_size(self, num_gpus: int) -> int:
        """The effective K for a cluster of ``num_gpus`` GPUs."""
        if self.population_size is not None:
            return self.population_size
        return max(4, min(num_gpus, 64))

    def resolved_crossover_pairs(self, population_size: int) -> int:
        """The effective number of crossover pairs per iteration."""
        if self.crossover_pairs is not None:
            return self.crossover_pairs
        return max(1, population_size // 2)


class EvolutionarySearch:
    """Maintains the population across scheduler invocations."""

    def __init__(self, config: Optional[EvolutionConfig] = None, seed: SeedLike = None) -> None:
        self.config = config or EvolutionConfig()
        self._rng = as_generator(seed)
        self.population: Population = Population()
        self.best_candidate: Optional[Schedule] = None
        self.best_score: float = float("inf")
        self.iterations_run: int = 0

    # -- population lifecycle -------------------------------------------------------------------

    def ensure_population(self, ctx: EvolutionContext, current: Optional[Schedule]) -> None:
        """(Re)initialise the population if empty or the roster changed."""
        size = self.config.resolved_population_size(ctx.num_gpus)
        if len(self.population) == 0:
            self.population = initial_population(ctx, size, current=current, seed=self._rng)
            return
        if self.population.members[0].roster != ctx.roster:
            self.population = self.population.reindexed(ctx.roster)
            if current is not None:
                self.population.add(current.reindexed(ctx.roster))

    # -- one iteration ------------------------------------------------------------------------------

    def step(self, ctx: EvolutionContext, current: Optional[Schedule] = None) -> Tuple[Schedule, float]:
        """Run ``iterations_per_invocation`` evolution iterations.

        Returns the best candidate ``S*`` and its sampled score.
        """
        self.ensure_population(ctx, current)
        best: Optional[Tuple[Schedule, float]] = None
        for _ in range(self.config.iterations_per_invocation):
            best = self._iterate(ctx)
            self.iterations_run += 1
        assert best is not None
        self.best_candidate, self.best_score = best
        return best

    def _iterate(self, ctx: EvolutionContext) -> Tuple[Schedule, float]:
        size = self.config.resolved_population_size(ctx.num_gpus)
        # Refresh every member against the live job status.
        refreshed = [refresh(member, ctx) for member in self.population]
        candidates: List[Schedule] = list(refreshed)

        # Uniform crossover of randomly chosen parent pairs.
        if self.config.enable_crossover and len(refreshed) >= 2:
            pairs = self.config.resolved_crossover_pairs(size)
            for _ in range(pairs):
                i, j = ctx.rng.choice(len(refreshed), size=2, replace=False)
                child_a, child_b = uniform_crossover(
                    refreshed[int(i)], refreshed[int(j)], rng=ctx.rng
                )
                candidates.append(fill_or_keep(child_a, ctx))
                candidates.append(fill_or_keep(child_b, ctx))

        # Uniform mutation of randomly chosen members.
        if self.config.enable_mutation:
            for _ in range(size):
                idx = int(ctx.rng.integers(0, len(refreshed)))
                candidates.append(
                    uniform_mutation(refreshed[idx], ctx, self.config.mutation_rate)
                )

        # Reorder for locality.
        if self.config.enable_reorder:
            candidates = [reorder(candidate) for candidate in candidates]

        # Selection: keep the best K by probability sampling (Alg. 1);
        # with a throughput table the whole pool is scored in one batch.
        survivors = select_top_k(
            candidates,
            ctx.jobs,
            ctx.distributions,
            ctx.throughput_fn,
            k=size,
            rng=ctx.rng,
            table=ctx.throughput_table,
        )
        self.population = Population([schedule for schedule, _ in survivors])
        return survivors[0]


def fill_or_keep(candidate: Schedule, ctx: EvolutionContext) -> Schedule:
    """Repair helper: crossover children may leave GPUs idle; fill them."""
    from repro.core.operators import fill_idle_gpus

    return fill_idle_gpus(candidate, ctx)
