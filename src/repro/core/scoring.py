"""Candidate scoring: the SRUF objective and Algorithm 1.

The score of a candidate schedule is the total *remaining utilisation*
of its running jobs (Eq. 8):

``score(S) = Σ_j  (Y_processed_j · c_j / X_j) · (1/ρ_j − 1)``

where ``c_j`` and ``X_j`` are the GPU count and throughput the candidate
gives job ``j`` and ``ρ_j`` is a training-progress sample drawn from the
job's predictive Beta distribution.  Algorithm 1 draws one ρ per job,
scores every candidate with those shared samples, and picks the smallest
score; selection keeps the best K candidates the same way.

Two implementations are provided:

* the **scalar reference** (:func:`candidate_score` /
  :func:`score_candidates`) evaluates one candidate at a time through an
  arbitrary ``(job, schedule) -> samples/s`` callable, and
* the **vectorised engine** (:func:`score_population`) stacks the whole
  population's genomes into a ``(K, num_gpus)`` matrix, derives every
  per-candidate per-job GPU count with a single ``bincount``, gathers
  throughputs from a :class:`~repro.jobs.throughput.ThroughputTable`,
  and evaluates Eq. 8 for all K candidates in a handful of NumPy
  expressions.  Given the same progress samples and the same throughput
  source, both paths produce bit-identical scores (the parity tests
  assert exact equality).

A third layer builds on the vectorised engine:
:mod:`repro.core.scoring_incremental` caches the *progress-independent*
score inputs (the per-candidate GPU-count matrix and locality flags that
:func:`score_count_matrix` consumes) across generations and maintains
them through the evolution operators, so each generation only pays for
the candidates it actually changed.  ``score_count_matrix`` is therefore
a shared contract: its float expression must not be refactored (FP
addition is non-associative; all three layers pin bit-identical scores
against it).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import IDLE, Schedule, stack_genomes, unique_schedules
from repro.jobs.job import Job
from repro.jobs.throughput import ThroughputTable
from repro.prediction.beta import (
    SAMPLE_EPS,
    BetaDistribution,
    UNIFORM_PRIOR,
    sample_many,
)
from repro.utils.rng import SeedLike, as_generator

#: Signature of the throughput estimator used during scoring:
#: ``(job, schedule) -> samples per second``.
ThroughputFn = Callable[[Job, Schedule], float]


def sample_progress(
    jobs: Mapping[str, Job],
    distributions: Mapping[str, BetaDistribution],
    rng: SeedLike = None,
) -> Dict[str, float]:
    """Draw one progress sample ρ_j per job (line 2 of Algorithm 1).

    All samples come from a single vectorised RNG call; jobs without a
    fitted distribution fall back to the shared uniform prior.
    """
    rng = as_generator(rng)
    job_ids = list(jobs)
    dists = [distributions.get(job_id) or UNIFORM_PRIOR for job_id in job_ids]
    draws = sample_many(dists, rng)
    return {job_id: float(draw) for job_id, draw in zip(job_ids, draws)}


# --- scalar reference path ------------------------------------------------------------------


def candidate_terms(
    schedule: Schedule,
    jobs: Mapping[str, Job],
    progress: Mapping[str, float],
    throughput_fn: ThroughputFn,
) -> np.ndarray:
    """Per-roster-job terms of Eq. 8 for one candidate (zeros for idle jobs)."""
    terms = np.zeros(len(schedule.roster), dtype=float)
    counts = schedule.gpu_counts()
    for i, job_id in enumerate(schedule.roster):
        count = counts.get(job_id, 0)
        if count == 0:
            continue
        job = jobs[job_id]
        rho = float(np.clip(progress.get(job_id, 0.5), SAMPLE_EPS, 1.0 - SAMPLE_EPS))
        processed = job.samples_processed
        if processed <= 0:
            # Brand-new jobs have no measured history; Eq. 8's literal term
            # is zero, which is exactly the preferential treatment of new
            # jobs the refresh operation relies on.
            continue
        throughput = throughput_fn(job, schedule)
        if throughput <= 0:
            terms[i] = float("inf")
            continue
        remaining = processed * (1.0 / rho - 1.0)
        terms[i] = remaining * count / throughput
    return terms


def candidate_score(
    schedule: Schedule,
    jobs: Mapping[str, Job],
    progress: Mapping[str, float],
    throughput_fn: ThroughputFn,
) -> float:
    """Remaining-utilisation score of one candidate (Eq. 8, lower is better)."""
    return float(np.sum(candidate_terms(schedule, jobs, progress, throughput_fn)))


def score_candidates(
    candidates: Sequence[Schedule],
    jobs: Mapping[str, Job],
    progress: Mapping[str, float],
    throughput_fn: ThroughputFn,
) -> np.ndarray:
    """Scores of several candidates under shared progress samples."""
    return np.asarray(
        [candidate_score(c, jobs, progress, throughput_fn) for c in candidates],
        dtype=float,
    )


# --- vectorised engine ----------------------------------------------------------------------


def population_gpu_counts(genomes: np.ndarray, num_jobs: int) -> np.ndarray:
    """Per-candidate per-job GPU counts from a stacked genome matrix.

    ``genomes`` has shape ``(K, num_gpus)`` with values in
    ``{IDLE} ∪ [0, num_jobs)``; the result has shape ``(K, num_jobs)``.
    A single flattened ``bincount`` covers the whole population.
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    if genomes.ndim != 2:
        raise ValueError("genomes must be a (K, num_gpus) matrix")
    num_candidates = genomes.shape[0]
    if num_jobs == 0:
        return np.zeros((num_candidates, 0), dtype=np.int64)
    placed = genomes != IDLE
    rows = np.broadcast_to(
        np.arange(num_candidates, dtype=np.int64)[:, None], genomes.shape
    )
    flat = rows[placed] * num_jobs + genomes[placed]
    counts = np.bincount(flat, minlength=num_candidates * num_jobs)
    return counts.reshape(num_candidates, num_jobs)


def population_node_crossings(
    genomes: np.ndarray, num_jobs: int, node_of: np.ndarray
) -> np.ndarray:
    """Per-candidate per-job "placement spans >1 server" flags.

    ``genomes`` has shape ``(K, num_gpus)`` and ``node_of`` maps GPU id
    to server id; the result has shape ``(K, num_jobs)``.  One flattened
    ``bincount`` over (candidate, job, node) triples covers the whole
    population — this is what keeps the vectorised engine as
    locality-aware as the per-placement scalar path.
    """
    genomes = np.asarray(genomes, dtype=np.int64)
    num_candidates = genomes.shape[0]
    if num_jobs == 0 or genomes.size == 0:
        return np.zeros((num_candidates, num_jobs), dtype=bool)
    node_of = np.asarray(node_of, dtype=np.int64)
    num_nodes = int(node_of.max()) + 1 if node_of.size else 1
    if num_nodes == 1:
        return np.zeros((num_candidates, num_jobs), dtype=bool)
    placed = genomes != IDLE
    rows = np.broadcast_to(
        np.arange(num_candidates, dtype=np.int64)[:, None], genomes.shape
    )
    nodes = np.broadcast_to(node_of, genomes.shape)
    flat = (rows[placed] * num_jobs + genomes[placed]) * num_nodes + nodes[placed]
    present = np.bincount(flat, minlength=num_candidates * num_jobs * num_nodes) > 0
    spanned = present.reshape(num_candidates, num_jobs, num_nodes).sum(axis=2)
    return spanned > 1


def progress_vector(
    roster: Sequence[str], progress: Mapping[str, float]
) -> np.ndarray:
    """Clipped ρ_j per roster job (missing jobs use the 0.5 default)."""
    values = np.array(
        [progress.get(job_id, 0.5) for job_id in roster], dtype=float
    )
    return np.clip(values, SAMPLE_EPS, 1.0 - SAMPLE_EPS)


def score_population(
    candidates: Sequence[Schedule],
    jobs: Mapping[str, Job],
    progress: Mapping[str, float],
    table: ThroughputTable,
) -> np.ndarray:
    """Eq. 8 for the whole population in one batched evaluation.

    Equivalent to :func:`score_candidates` with
    ``table.as_throughput_fn()`` — bit-identical scores on the same
    progress samples — but with one ``bincount``, one table gather and a
    handful of array expressions instead of a per-candidate Python loop.
    """
    if not candidates:
        return np.empty(0, dtype=float)
    roster = candidates[0].roster
    if roster != table.roster:
        raise ValueError(
            "candidates and throughput table disagree on the roster: "
            f"{roster} vs {table.roster}"
        )
    genomes = stack_genomes(candidates)
    counts = population_gpu_counts(genomes, len(roster))
    crossings = population_node_crossings(genomes, len(roster), table.node_of)
    return score_count_matrix(counts, roster, jobs, progress, table, crossings)


def score_count_matrix(
    counts: np.ndarray,
    roster: Sequence[str],
    jobs: Mapping[str, Job],
    progress: Mapping[str, float],
    table: ThroughputTable,
    crosses_nodes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Eq. 8 from a precomputed ``(K, num_jobs)`` GPU-count matrix.

    ``crosses_nodes`` carries per-(candidate, job) placement locality;
    ``None`` assumes canonical packed placements.  This is the scoring
    entry point of the batched evolution engine's selection step
    (:func:`repro.core.evolution_batched.run_generation`), which already
    holds counts and crossings for its de-duplicated candidate pool.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if len(roster) == 0:
        return np.zeros(counts.shape[0], dtype=float)
    processed = np.array(
        [
            jobs[job_id].samples_processed if job_id in jobs else 0.0
            for job_id in roster
        ],
        dtype=float,
    )
    rho = progress_vector(roster, progress)
    # Remaining workload Y_j = Y_processed · (1/ρ − 1); new jobs cost zero.
    weights = np.where(processed > 0, processed * (1.0 / rho - 1.0), 0.0)
    throughputs = table.lookup(counts, crosses_nodes)
    active = (counts > 0) & (processed > 0)[None, :]
    safe = np.where(throughputs > 0, throughputs, 1.0)
    terms = np.where(active, (weights[None, :] * counts) / safe, 0.0)
    terms = np.where(active & (throughputs <= 0), np.inf, terms)
    return terms.sum(axis=1)


# --- Algorithm 1 ----------------------------------------------------------------------------


def _scores_for(
    candidates: Sequence[Schedule],
    jobs: Mapping[str, Job],
    progress: Mapping[str, float],
    throughput_fn: Optional[ThroughputFn],
    table: Optional[ThroughputTable],
) -> np.ndarray:
    """Dispatch between the vectorised engine and the scalar reference."""
    if table is not None:
        return score_population(candidates, jobs, progress, table)
    if throughput_fn is None:
        raise ValueError("either throughput_fn or table must be provided")
    return score_candidates(candidates, jobs, progress, throughput_fn)


def probability_sample(
    candidates: Sequence[Schedule],
    jobs: Mapping[str, Job],
    distributions: Mapping[str, BetaDistribution],
    throughput_fn: Optional[ThroughputFn],
    rng: SeedLike = None,
    table: Optional[ThroughputTable] = None,
) -> Tuple[Schedule, float]:
    """Algorithm 1: pick the candidate with the smallest sampled score."""
    if not candidates:
        raise ValueError("probability_sample requires at least one candidate")
    rng = as_generator(rng)
    progress = sample_progress(jobs, distributions, rng)
    scores = _scores_for(candidates, jobs, progress, throughput_fn, table)
    best = int(np.argmin(scores))
    return candidates[best], float(scores[best])


def select_top_k(
    candidates: Sequence[Schedule],
    jobs: Mapping[str, Job],
    distributions: Mapping[str, BetaDistribution],
    throughput_fn: Optional[ThroughputFn],
    k: int,
    rng: SeedLike = None,
    table: Optional[ThroughputTable] = None,
) -> List[Tuple[Schedule, float]]:
    """Selection step: keep the K candidates with the best sampled scores.

    De-duplicates identical genomes first so the surviving population
    keeps some diversity, then returns ``[(schedule, score), ...]``
    ordered from best (smallest score) to worst.  When ``table`` is
    given the whole pool is scored by the vectorised engine.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not candidates:
        raise ValueError("select_top_k requires at least one candidate")
    rng = as_generator(rng)
    pool = unique_schedules(candidates)
    progress = sample_progress(jobs, distributions, rng)
    scores = _scores_for(pool, jobs, progress, throughput_fn, table)
    order = np.argsort(scores, kind="stable")[:k]
    return [(pool[int(i)], float(scores[int(i)])) for i in order]
