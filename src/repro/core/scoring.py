"""Candidate scoring: the SRUF objective and Algorithm 1.

The score of a candidate schedule is the total *remaining utilisation*
of its running jobs (Eq. 8):

``score(S) = Σ_j  (Y_processed_j · c_j / X_j) · (1/ρ_j − 1)``

where ``c_j`` and ``X_j`` are the GPU count and throughput the candidate
gives job ``j`` and ``ρ_j`` is a training-progress sample drawn from the
job's predictive Beta distribution.  Algorithm 1 draws one ρ per job,
scores every candidate with those shared samples, and picks the smallest
score; selection keeps the best K candidates the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import Schedule
from repro.jobs.job import Job
from repro.prediction.beta import BetaDistribution
from repro.utils.rng import SeedLike, as_generator

#: Signature of the throughput estimator used during scoring:
#: ``(job, schedule) -> samples per second``.
ThroughputFn = Callable[[Job, Schedule], float]


def sample_progress(
    jobs: Mapping[str, Job],
    distributions: Mapping[str, BetaDistribution],
    rng: SeedLike = None,
) -> Dict[str, float]:
    """Draw one progress sample ρ_j per job (line 2 of Algorithm 1)."""
    rng = as_generator(rng)
    samples: Dict[str, float] = {}
    for job_id in jobs:
        dist = distributions.get(job_id)
        if dist is None:
            dist = BetaDistribution(1.0, 1.0)
        samples[job_id] = dist.sample(rng)
    return samples


def candidate_score(
    schedule: Schedule,
    jobs: Mapping[str, Job],
    progress: Mapping[str, float],
    throughput_fn: ThroughputFn,
) -> float:
    """Remaining-utilisation score of one candidate (Eq. 8, lower is better)."""
    total = 0.0
    for job_id in schedule.placed_jobs():
        job = jobs[job_id]
        count = schedule.gpu_count(job_id)
        if count == 0:
            continue
        rho = float(np.clip(progress.get(job_id, 0.5), 1e-9, 1.0 - 1e-9))
        processed = job.samples_processed
        if processed <= 0:
            # Brand-new jobs have no measured history; Eq. 8's literal term
            # is zero, which is exactly the preferential treatment of new
            # jobs the refresh operation relies on.
            continue
        throughput = throughput_fn(job, schedule)
        if throughput <= 0:
            total += float("inf")
            continue
        remaining = processed * (1.0 / rho - 1.0)
        total += remaining * count / throughput
    return total


def score_candidates(
    candidates: Sequence[Schedule],
    jobs: Mapping[str, Job],
    progress: Mapping[str, float],
    throughput_fn: ThroughputFn,
) -> np.ndarray:
    """Scores of several candidates under shared progress samples."""
    return np.asarray(
        [candidate_score(c, jobs, progress, throughput_fn) for c in candidates],
        dtype=float,
    )


def probability_sample(
    candidates: Sequence[Schedule],
    jobs: Mapping[str, Job],
    distributions: Mapping[str, BetaDistribution],
    throughput_fn: ThroughputFn,
    rng: SeedLike = None,
) -> Tuple[Schedule, float]:
    """Algorithm 1: pick the candidate with the smallest sampled score."""
    if not candidates:
        raise ValueError("probability_sample requires at least one candidate")
    rng = as_generator(rng)
    progress = sample_progress(jobs, distributions, rng)
    scores = score_candidates(candidates, jobs, progress, throughput_fn)
    best = int(np.argmin(scores))
    return candidates[best], float(scores[best])


def select_top_k(
    candidates: Sequence[Schedule],
    jobs: Mapping[str, Job],
    distributions: Mapping[str, BetaDistribution],
    throughput_fn: ThroughputFn,
    k: int,
    rng: SeedLike = None,
) -> List[Tuple[Schedule, float]]:
    """Selection step: keep the K candidates with the best sampled scores.

    De-duplicates identical genomes first so the surviving population
    keeps some diversity, then returns ``[(schedule, score), ...]``
    ordered from best (smallest score) to worst.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not candidates:
        raise ValueError("select_top_k requires at least one candidate")
    rng = as_generator(rng)
    unique: Dict[Tuple[int, ...], Schedule] = {}
    for candidate in candidates:
        unique.setdefault(candidate.key(), candidate)
    pool = list(unique.values())
    progress = sample_progress(jobs, distributions, rng)
    scores = score_candidates(pool, jobs, progress, throughput_fn)
    order = np.argsort(scores, kind="stable")[:k]
    return [(pool[int(i)], float(scores[int(i)])) for i in order]
