"""Analysis of simulation results: metrics, significance tests, reports.

* :mod:`repro.analysis.metrics` — JCT / execution / queuing summaries,
  distributions and cumulative-frequency curves (Fig. 15).
* :mod:`repro.analysis.stats` — Wilcoxon signed-rank significance tests
  (Table 4).
* :mod:`repro.analysis.reporting` — text tables and ASCII charts used by
  the benchmark harness to print paper-style figures.
"""

from repro.analysis.metrics import (
    MetricSummary,
    compare_results,
    improvement_over,
    metric_summary,
    relative_jct,
)
from repro.analysis.stats import WilcoxonReport, wilcoxon_comparison, significance_table
from repro.analysis.reporting import (
    ascii_bar_chart,
    ascii_cdf,
    format_table,
    render_comparison,
)
from repro.analysis.export import (
    export_comparison_csv,
    export_comparison_json,
    export_result_csv,
    export_result_json,
    export_sweep_json,
)

__all__ = [
    "export_comparison_csv",
    "export_comparison_json",
    "export_result_csv",
    "export_result_json",
    "export_sweep_json",
    "MetricSummary",
    "compare_results",
    "improvement_over",
    "metric_summary",
    "relative_jct",
    "WilcoxonReport",
    "wilcoxon_comparison",
    "significance_table",
    "ascii_bar_chart",
    "ascii_cdf",
    "format_table",
    "render_comparison",
]
