"""Plain-text reporting: tables and ASCII charts.

The benchmark harness runs in a terminal without matplotlib, so every
figure of the paper is rendered as a text table plus (where it helps) an
ASCII bar chart or CDF so the *shape* of the result is visible directly
in the benchmark output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
                    cells.append(f"{value:.3e}")
                else:
                    cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(str(col)), max(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rendered
    )
    return "\n".join([header, separator, body])


def ascii_bar_chart(
    values: Mapping[str, float], width: int = 40, unit: str = ""
) -> str:
    """Horizontal ASCII bar chart, one bar per labelled value."""
    if not values:
        return "(no data)"
    maximum = max(abs(v) for v in values.values())
    if maximum <= 0:
        maximum = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * abs(value) / maximum)))
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_cdf(
    curves: Mapping[str, Tuple[np.ndarray, np.ndarray]],
    thresholds: Sequence[float],
    label: str = "value",
) -> str:
    """Tabulate CDF curves at a set of thresholds (one row per threshold)."""
    if not curves:
        return "(no data)"
    rows: List[Dict[str, object]] = []
    for threshold in thresholds:
        row: Dict[str, object] = {label: threshold}
        for name, (x, cf) in curves.items():
            idx = np.searchsorted(x, threshold, side="right") - 1
            if idx < 0:
                row[name] = 0.0
            else:
                row[name] = float(cf[min(idx, len(cf) - 1)])
        rows.append(row)
    return format_table(rows, columns=[label] + list(curves.keys()), float_format="{:.2f}")


def ascii_series(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
) -> str:
    """Tabulate several y-series over shared x values (Fig. 17/18 style)."""
    rows: List[Dict[str, object]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, ys in series.items():
            row[name] = float(ys[i])
        rows.append(row)
    return format_table(rows, columns=[x_label] + list(series.keys()))


def render_comparison(
    title: str,
    averages: Mapping[str, float],
    unit: str = "s",
    improvements: Optional[Mapping[str, float]] = None,
) -> str:
    """Standard block used by the Fig. 15 benches: title, bars, improvements."""
    lines = [title, "=" * len(title), ascii_bar_chart(dict(averages), unit=unit)]
    if improvements:
        lines.append("")
        lines.append("Improvement of the first entry over each baseline:")
        for name, value in improvements.items():
            lines.append(f"  vs {name}: {100.0 * value:.1f}%")
    return "\n".join(lines)
