"""Scheduling-performance metrics (the quantities plotted in Fig. 15/17/18).

All metrics are derived from :class:`repro.sim.simulator.SimulationResult`
objects so a single simulation run feeds every figure that uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sim.simulator import SimulationResult
from repro.utils.stats import SummaryStats, cumulative_frequency, fraction_below, summarize

#: The three per-job time metrics the paper reports.
METRIC_KEYS = ("jct", "execution_time", "queuing_time")


@dataclass(frozen=True)
class MetricSummary:
    """Summary of one metric for one scheduler."""

    scheduler: str
    metric: str
    stats: SummaryStats
    values: Tuple[float, ...]

    @property
    def average(self) -> float:
        """Mean of the metric (the bar charts of Fig. 15 a/b/c)."""
        return self.stats.mean

    def cdf(self, num_points: int = 200, log_space: bool = True):
        """Cumulative-frequency curve (Fig. 15 g/h/i)."""
        return cumulative_frequency(self.values, num_points=num_points, log_space=log_space)

    def fraction_within(self, threshold: float) -> float:
        """Fraction of jobs with metric value below ``threshold``."""
        return fraction_below(self.values, threshold)


def metric_values(result: SimulationResult, metric: str) -> np.ndarray:
    """Per-job values of ``metric`` from a simulation result."""
    if metric not in METRIC_KEYS:
        raise ValueError(f"metric must be one of {METRIC_KEYS}, got {metric!r}")
    return np.asarray(
        [result.completed[j][metric] for j in sorted(result.completed)], dtype=float
    )


def mean_metric(result: SimulationResult, metric: str = "jct") -> float:
    """Mean of ``metric`` over completed jobs (``nan`` when nothing completed).

    The single metric-lookup used by ``ComparisonResult.averages`` /
    ``.improvements`` and the sweep-artifact aggregations, so every
    average printed anywhere in the repo comes from the same code path.
    """
    values = metric_values(result, metric)
    return float(values.mean()) if values.size else float("nan")


def metric_summary(result: SimulationResult, metric: str) -> MetricSummary:
    """Summarise one metric of one scheduler run."""
    values = metric_values(result, metric)
    return MetricSummary(
        scheduler=result.scheduler_name,
        metric=metric,
        stats=summarize(values),
        values=tuple(float(v) for v in values),
    )


def compare_results(
    results: Sequence[SimulationResult], metric: str = "jct"
) -> Dict[str, MetricSummary]:
    """Summaries of ``metric`` for several schedulers, keyed by scheduler name."""
    summaries = {}
    for result in results:
        summaries[result.scheduler_name] = metric_summary(result, metric)
    return summaries


def improvement_over(
    ours: SimulationResult, baseline: SimulationResult, metric: str = "jct"
) -> float:
    """Relative reduction of the average metric, e.g. 0.27 = 27% lower.

    This is how the paper states "ONES can reduce the average JCT by
    26.9%, 45.6% and 41.7% compared to DRL, Tiresias and Optimus".
    """
    ours_avg = float(metric_values(ours, metric).mean())
    base_avg = float(metric_values(baseline, metric).mean())
    if base_avg <= 0:
        raise ValueError("baseline average must be positive")
    return 1.0 - ours_avg / base_avg


def relative_jct(
    results: Mapping[str, SimulationResult], reference: str = "ONES"
) -> Dict[str, float]:
    """Average JCT of each scheduler normalised to ``reference`` (Fig. 18)."""
    if reference not in results:
        raise KeyError(f"reference scheduler {reference!r} not in results")
    ref_avg = results[reference].average_jct
    if not np.isfinite(ref_avg) or ref_avg <= 0:
        raise ValueError("reference average JCT must be positive and finite")
    return {
        name: float(result.average_jct / ref_avg) for name, result in results.items()
    }


def paired_jobs(
    a: SimulationResult, b: SimulationResult, metric: str = "jct"
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-job paired metric values over the jobs both runs completed.

    Wilcoxon signed-rank tests (Table 4) require paired observations —
    the same job scheduled by two different schedulers.
    """
    shared = sorted(set(a.completed) & set(b.completed))
    if not shared:
        raise ValueError("the two results share no completed jobs")
    va = np.asarray([a.completed[j][metric] for j in shared], dtype=float)
    vb = np.asarray([b.completed[j][metric] for j in shared], dtype=float)
    return va, vb


def completion_fraction_within(
    results: Sequence[SimulationResult], threshold: float, metric: str = "jct"
) -> Dict[str, float]:
    """Fraction of jobs finishing within ``threshold`` for each scheduler.

    Used for statements like "the fraction of jobs completed within 200 s
    is 86% for ONES versus 60–80% for the baselines".
    """
    return {
        result.scheduler_name: fraction_below(metric_values(result, metric), threshold)
        for result in results
    }
