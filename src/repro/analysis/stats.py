"""Statistical significance tests (Table 4).

The paper compares per-job JCTs of ONES against each baseline with
non-parametric Wilcoxon signed-rank tests:

* a **two-sided** test of the hypothesis that the two schedulers produce
  equivalent JCTs (rejected when p < 0.05), and
* a **one-sided ("negative" / less)** test of the hypothesis that ONES's
  JCTs are *smaller*; the paper reports the p-value of the complementary
  direction, which is ≈1 when ONES indeed wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np
from scipy import stats

from repro.analysis.metrics import paired_jobs
from repro.sim.simulator import SimulationResult


@dataclass(frozen=True)
class WilcoxonReport:
    """Outcome of the Wilcoxon comparison of two schedulers."""

    ours: str
    baseline: str
    num_pairs: int
    p_two_sided: float
    p_one_sided_less: float
    p_one_sided_greater: float
    median_difference: float

    @property
    def significantly_different(self) -> bool:
        """Two-sided test rejects equivalence at the 5% level."""
        return self.p_two_sided < 0.05

    @property
    def ours_is_smaller(self) -> bool:
        """One-sided test supports "ours < baseline" at the 5% level."""
        return self.p_one_sided_less < 0.05

    def as_row(self) -> Dict[str, float]:
        """Table-4 style row."""
        return {
            "comparison": f"vs. {self.baseline}",
            "p value (two-sided test)": self.p_two_sided,
            "p value (one-sided negative test)": self.p_one_sided_greater,
        }


def wilcoxon_comparison(
    ours: SimulationResult,
    baseline: SimulationResult,
    metric: str = "jct",
) -> WilcoxonReport:
    """Wilcoxon signed-rank comparison of per-job metrics of two runs."""
    a, b = paired_jobs(ours, baseline, metric)
    differences = a - b
    if np.allclose(differences, 0.0):
        # Identical results: the test is undefined; report total uncertainty.
        return WilcoxonReport(
            ours=ours.scheduler_name,
            baseline=baseline.scheduler_name,
            num_pairs=int(a.size),
            p_two_sided=1.0,
            p_one_sided_less=0.5,
            p_one_sided_greater=0.5,
            median_difference=0.0,
        )
    two_sided = stats.wilcoxon(a, b, alternative="two-sided", zero_method="wilcox")
    less = stats.wilcoxon(a, b, alternative="less", zero_method="wilcox")
    greater = stats.wilcoxon(a, b, alternative="greater", zero_method="wilcox")
    return WilcoxonReport(
        ours=ours.scheduler_name,
        baseline=baseline.scheduler_name,
        num_pairs=int(a.size),
        p_two_sided=float(two_sided.pvalue),
        p_one_sided_less=float(less.pvalue),
        p_one_sided_greater=float(greater.pvalue),
        median_difference=float(np.median(a - b)),
    )


def significance_table(
    ours: SimulationResult,
    baselines: Sequence[SimulationResult],
    metric: str = "jct",
) -> Dict[str, WilcoxonReport]:
    """Table 4: one Wilcoxon report per baseline, keyed by baseline name."""
    return {
        baseline.scheduler_name: wilcoxon_comparison(ours, baseline, metric)
        for baseline in baselines
    }
