"""Export simulation results to CSV / JSON.

The benchmark harness prints human-readable reports; downstream analysis
(plotting in a notebook, aggregating across seeds) is easier from
machine-readable files.  These helpers export per-job metrics, comparison
summaries and scalability sweeps using only the standard library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.sim.simulator import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from repro.experiments.runner import ComparisonResult

PathLike = Union[str, Path]


def result_to_records(result: SimulationResult) -> list[dict]:
    """Per-job metric records (one dict per completed job)."""
    records = []
    for job_id in sorted(result.completed):
        metrics = result.completed[job_id]
        job = result.jobs.get(job_id)
        record = {
            "scheduler": result.scheduler_name,
            "num_gpus": result.num_gpus,
            "job_id": job_id,
            **{key: float(value) for key, value in metrics.items()},
        }
        if job is not None:
            record.update(
                {
                    "task": job.spec.task,
                    "dataset": job.spec.dataset,
                    "model": job.spec.model.name,
                    "requested_gpus": job.spec.requested_gpus,
                    "submitted_batch": job.spec.base_batch,
                    "arrival_time": job.arrival_time,
                    "max_batch": max((b for _, b in job.batch_history), default=0),
                    "max_gpus": max((r.num_gpus for r in job.epoch_records), default=0),
                }
            )
        records.append(record)
    return records


def export_result_csv(result: SimulationResult, path: PathLike) -> Path:
    """Write one run's per-job metrics to a CSV file; returns the path."""
    records = result_to_records(result)
    path = Path(path)
    if not records:
        path.write_text("")
        return path
    fieldnames = sorted({key for record in records for key in record})
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow(record)
    return path


def export_result_json(result: SimulationResult, path: PathLike) -> Path:
    """Write one run's summary + per-job metrics as JSON; returns the path."""
    payload = {
        "summary": result.summary(),
        "jobs": result_to_records(result),
        "incomplete": list(result.incomplete),
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2))
    return path


def comparison_to_records(comparison: "ComparisonResult") -> list[dict]:
    """Flatten a multi-scheduler comparison into per-job records."""
    records = []
    for result in comparison.results.values():
        records.extend(result_to_records(result))
    return records


def export_comparison_csv(comparison: "ComparisonResult", path: PathLike) -> Path:
    """Write a comparison's per-job metrics (all schedulers) to a CSV file."""
    records = comparison_to_records(comparison)
    path = Path(path)
    if not records:
        path.write_text("")
        return path
    fieldnames = sorted({key for record in records for key in record})
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow(record)
    return path


def export_comparison_json(comparison: "ComparisonResult", path: PathLike) -> Path:
    """Write a comparison's summaries, averages and improvements as JSON."""
    payload = {
        "num_gpus": comparison.config.num_gpus,
        "num_jobs": len(comparison.trace),
        "averages": {
            metric: comparison.averages(metric)
            for metric in ("jct", "execution_time", "queuing_time")
        },
        "summaries": {name: r.summary() for name, r in comparison.results.items()},
    }
    if "ONES" in comparison.results:
        payload["improvements_over_ONES_reference"] = comparison.improvements("ONES")
        payload["relative_jct"] = comparison.relative_jct("ONES")
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2))
    return path


def export_sweep_json(
    sweep: Mapping[int, "ComparisonResult"], path: PathLike
) -> Path:
    """Write a scalability sweep (Fig. 17/18 data) as JSON."""
    payload = {}
    for capacity, comparison in sorted(sweep.items()):
        entry = {
            "averages_jct": comparison.averages("jct"),
            "averages_queuing": comparison.averages("queuing_time"),
        }
        if "ONES" in comparison.results:
            entry["relative_jct"] = comparison.relative_jct("ONES")
        payload[str(int(capacity))] = entry
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2))
    return path
