"""Deterministic structured trace recorder for the repro stack.

One recorder serves every layer — the simulation kernel, the ONES
search, the hierarchical reconciler, the service engine, and the queue
workers — so a single artifact explains *why* each scheduling decision
happened.  Records are typed spans and events:

* a **span** covers a region of (virtual or wall) time and may nest —
  e.g. the kernel's per-event dispatch span contains the scheduler's
  ``ones.evolve`` span, which contains per-generation events,
* an **event** is a point observation — a reconfig decision with its
  winning score, a reconciler assignment, a fault eviction, a queue
  lease transition.

Determinism contract.  Recording never consumes RNG state, never reads
the wall clock for simulator-originated records (callers pass virtual
time explicitly), and assigns sequence numbers in call order — so two
identical simulations produce byte-identical trace files, and a run
with tracing *on* is bit-identical in its simulation outputs to one
with tracing *off*.  Queue/worker records carry wall-clock timestamps
by necessity and are excluded from content comparison (their category
is prefixed ``queue.``/``worker.``).

The recorder is dormant by default: nothing is installed, and every
instrumentation site guards on :func:`active_tracer` returning ``None``
before building any attribute dict.  The dormant overhead is gated
below 3% on the 256x120 smoke tier by
``benchmarks/bench_perf_scoring.py`` ("observability" section).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1
#: Marker in the JSONL header line; bump :data:`SCHEMA_VERSION` on change.
SCHEMA_NAME = "repro.trace"

_RECORD_KINDS = ("span", "event")

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TraceRecorder",
    "active_tracer",
    "current_tracer",
    "export_chrome_trace",
    "format_tree",
    "install_tracer",
    "load_jsonl",
    "summarize",
    "uninstall_tracer",
    "validate_record",
    "validate_trace_file",
]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars (and other ``.item()`` types) for json.dumps."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bool)):
        try:
            return item()
        except (TypeError, ValueError):
            return str(value)
    raise TypeError(f"not JSON serialisable: {value!r}")


class TraceRecorder:
    """Bounded ring buffer of span/event records.

    Thread-safe (queue workers emit from a heartbeat thread), but the
    span *stack* — which provides parent nesting — assumes the usual
    single-threaded simulation loop; cross-thread events should pass
    ``parent=None`` explicitly to stay root-level.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        self._records: deque = deque(maxlen=self.capacity)
        self._stack: List[Dict[str, Any]] = []
        self._seq = 0
        self._emitted = 0
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------

    def event(
        self,
        name: str,
        cat: str,
        t: float,
        parent: Any = "auto",
        **attrs: Any,
    ) -> None:
        """Record a point event at time ``t`` (virtual or wall seconds)."""
        if not self.enabled:
            return
        with self._lock:
            if parent == "auto":
                parent = self._stack[-1]["seq"] if self._stack else None
            self._append(
                {
                    "seq": self._seq,
                    "kind": "event",
                    "name": name,
                    "cat": cat,
                    "t": float(t),
                    "parent": parent,
                    "attrs": attrs,
                }
            )

    def begin_span(self, name: str, cat: str, t: float, **attrs: Any) -> Dict[str, Any]:
        """Open a span at ``t``; close it with :meth:`end_span`.

        The record is appended immediately (sequence order = open
        order); ``dur`` is patched in at close, which keeps record
        ordering deterministic even for nested spans.
        """
        with self._lock:
            record = {
                "seq": self._seq,
                "kind": "span",
                "name": name,
                "cat": cat,
                "t": float(t),
                "dur": 0.0,
                "parent": self._stack[-1]["seq"] if self._stack else None,
                "attrs": attrs,
            }
            self._append(record)
            self._stack.append(record)
            return record

    def end_span(self, record: Dict[str, Any], t: Optional[float] = None) -> None:
        """Close ``record``; ``t`` defaults to the span's start time."""
        with self._lock:
            for index in range(len(self._stack) - 1, -1, -1):
                if self._stack[index] is record:
                    del self._stack[index:]
                    break
            if t is not None:
                record["dur"] = max(float(t) - record["t"], 0.0)

    @contextmanager
    def span(self, name: str, cat: str, t: float, **attrs: Any) -> Iterator[Dict[str, Any]]:
        """Span as a context manager.

        Yields the live record: the body may add keys to
        ``record["attrs"]`` or set ``record["end_t"]`` to close the
        span at a later virtual time than it opened.
        """
        record = self.begin_span(name, cat, t, **attrs)
        try:
            yield record
        finally:
            self.end_span(record, t=record.pop("end_t", None))

    def _append(self, record: Dict[str, Any]) -> None:
        self._seq += 1
        self._emitted += 1
        self._records.append(record)

    # -- access -------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of buffered records, in sequence order."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer."""
        return self._emitted - len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._stack.clear()

    # -- export -------------------------------------------------------

    def header(self) -> Dict[str, Any]:
        return {
            "kind": "meta",
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "capacity": self.capacity,
            "emitted": self._emitted,
            "dropped": self.dropped,
        }

    def export_jsonl(self, path: str) -> int:
        """Write header + records as JSON Lines; returns records written."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.header(), sort_keys=True, default=_jsonable))
            handle.write("\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True, default=_jsonable))
                handle.write("\n")
        return len(records)

    def export_chrome(self, path: str) -> int:
        """Write Chrome ``trace_event`` JSON (loadable in Perfetto)."""
        records = self.records()
        export_chrome_trace(records, path)
        return len(records)


# -- global installation ----------------------------------------------

_TRACER: Optional[TraceRecorder] = None


def install_tracer(tracer: TraceRecorder) -> TraceRecorder:
    """Install ``tracer`` as the process-wide recorder and return it."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall_tracer() -> Optional[TraceRecorder]:
    """Remove and return the installed recorder (if any)."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def current_tracer() -> Optional[TraceRecorder]:
    """The installed recorder, enabled or not (``None`` when dormant)."""
    return _TRACER


def active_tracer() -> Optional[TraceRecorder]:
    """The installed recorder iff it is enabled — the hot-path guard.

    Instrumentation sites call this once, check for ``None``, and only
    then build attribute dicts, so the dormant cost is one global read
    and one branch.
    """
    tracer = _TRACER
    if tracer is not None and tracer.enabled:
        return tracer
    return None


# -- schema validation ------------------------------------------------


def validate_record(record: Any) -> List[str]:
    """Schema errors for one record dict (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    kind = record.get("kind")
    if kind == "meta":
        if record.get("schema") != SCHEMA_NAME:
            errors.append(f"meta.schema is {record.get('schema')!r}")
        if not isinstance(record.get("version"), int):
            errors.append("meta.version must be an integer")
        return errors
    if kind not in _RECORD_KINDS:
        errors.append(f"kind is {kind!r}, expected one of {_RECORD_KINDS}")
    if not isinstance(record.get("seq"), int) or isinstance(record.get("seq"), bool):
        errors.append("seq must be an integer")
    for key in ("name", "cat"):
        value = record.get(key)
        if not isinstance(value, str) or not value:
            errors.append(f"{key} must be a non-empty string")
    if not isinstance(record.get("t"), (int, float)) or isinstance(record.get("t"), bool):
        errors.append("t must be a number")
    parent = record.get("parent")
    if parent is not None and (not isinstance(parent, int) or isinstance(parent, bool)):
        errors.append("parent must be an integer or null")
    if kind == "span":
        dur = record.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            errors.append("span dur must be a non-negative number")
    if not isinstance(record.get("attrs"), dict):
        errors.append("attrs must be an object")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """All schema errors in a JSONL trace file, prefixed by line number."""
    errors: List[str] = []
    last_seq = -1
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
                continue
            if lineno == 1 and record.get("kind") != "meta":
                errors.append("line 1: missing meta header record")
            for message in validate_record(record):
                errors.append(f"line {lineno}: {message}")
            seq = record.get("seq")
            if isinstance(seq, int):
                if seq <= last_seq:
                    errors.append(f"line {lineno}: seq {seq} not increasing")
                last_seq = seq
    return errors


# -- loading & inspection ---------------------------------------------


def load_jsonl(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a trace file into ``(meta, records)``."""
    meta: Dict[str, Any] = {}
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "meta":
                meta = record
            else:
                records.append(record)
    return meta, records


def filter_records(
    records: Iterable[Dict[str, Any]],
    cat: Optional[str] = None,
    name: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Substring filter on category and/or name."""
    out = []
    for record in records:
        if cat is not None and cat not in record.get("cat", ""):
            continue
        if name is not None and name not in record.get("name", ""):
            continue
        out.append(record)
    return out


def summarize(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate counts and the time range of a record list."""
    by_cat: Dict[str, int] = {}
    by_name: Dict[str, int] = {}
    spans = events = 0
    t_min = t_max = None
    for record in records:
        by_cat[record["cat"]] = by_cat.get(record["cat"], 0) + 1
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
        if record["kind"] == "span":
            spans += 1
        else:
            events += 1
        t = record["t"]
        t_min = t if t_min is None else min(t_min, t)
        end = t + record.get("dur", 0.0)
        t_max = end if t_max is None else max(t_max, end)
    return {
        "records": len(records),
        "spans": spans,
        "events": events,
        "t_min": t_min,
        "t_max": t_max,
        "by_cat": dict(sorted(by_cat.items())),
        "by_name": dict(sorted(by_name.items())),
    }


def format_tree(
    records: Sequence[Dict[str, Any]],
    max_records: int = 200,
) -> List[str]:
    """Render parent/child nesting as indented lines.

    Children attach via ``parent`` seq links; records whose parent was
    evicted from the ring buffer (or filtered out) print at root level.
    """
    by_seq = {record["seq"]: record for record in records}
    depths: Dict[int, int] = {}

    def depth(record: Dict[str, Any]) -> int:
        seq = record["seq"]
        if seq in depths:
            return depths[seq]
        parent = record.get("parent")
        value = 0
        hops = 0
        while parent is not None and parent in by_seq and hops < 64:
            value += 1
            parent = by_seq[parent].get("parent")
            hops += 1
        depths[seq] = value
        return value

    lines = []
    for record in records[:max_records]:
        indent = "  " * depth(record)
        marker = "▸" if record["kind"] == "span" else "·"
        dur = record.get("dur")
        dur_text = f" dur={dur:.6g}s" if record["kind"] == "span" and dur else ""
        attrs = record.get("attrs") or {}
        attr_text = ""
        if attrs:
            parts = [f"{key}={attrs[key]}" for key in sorted(attrs)[:4]]
            attr_text = " [" + " ".join(parts) + "]"
        lines.append(
            f"{indent}{marker} {record['cat']}/{record['name']}"
            f" @ {record['t']:.6g}s{dur_text}{attr_text}"
        )
    if len(records) > max_records:
        lines.append(f"... ({len(records) - max_records} more records)")
    return lines


# -- Chrome trace_event export ----------------------------------------


def export_chrome_trace(records: Sequence[Dict[str, Any]], path: str) -> None:
    """Write records as Chrome ``trace_event`` JSON for Perfetto.

    Virtual seconds map to microseconds; each category becomes one
    track (``tid``); spans become complete ("X") events with a 1 µs
    duration floor so zero-duration virtual spans stay visible.
    """
    tids = {cat: index + 1 for index, cat in enumerate(sorted({r["cat"] for r in records}))}
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": cat},
        }
        for cat, tid in tids.items()
    ]
    for record in records:
        base = {
            "name": record["name"],
            "cat": record["cat"],
            "pid": 1,
            "tid": tids[record["cat"]],
            "ts": record["t"] * 1e6,
            "args": {"seq": record["seq"], **(record.get("attrs") or {})},
        }
        if record["kind"] == "span":
            base["ph"] = "X"
            base["dur"] = max(record.get("dur", 0.0) * 1e6, 1.0)
        else:
            base["ph"] = "i"
            base["s"] = "t"
        trace_events.append(base)
    payload = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, default=_jsonable)
