"""Uniform metrics registry: counters, gauges, histograms, Prometheus text.

Every entry point (CLI runs, the scheduler service, queue workers)
exposes its counters through one registry type instead of ad-hoc
dicts.  The model follows the Prometheus client idiom — a *family* has
a name, a type, and label names; a *series* is one labeled child — but
stays dependency-free and cheap enough to rebuild on demand:
schedulers construct a registry snapshot from their live counters when
asked, so the hot path carries no metrics objects at all (and pickled
inner schedulers in the hierarchical process pool stay registry-free).

:class:`LatencyHistogram` lives here now (moved from
``repro.service.engine``, which re-exports it for compatibility) so
the service, the benchmarks, and the trace inspector all share one
histogram implementation.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "render_prometheus",
]


class LatencyHistogram:
    """Log-bucketed latency histogram (microseconds to ~17 minutes).

    Fixed geometric buckets (factor 2 from 1 µs) keep memory constant
    under sustained load while bounding percentile error to one bucket
    width — the standard trade for service-side latency SLOs.

    Bucket convention (half-open on the left, *closed* on the right):
    bucket 0 holds ``[0, 1 µs]``, bucket ``i >= 1`` holds
    ``(floor * 2^(i-1), floor * 2^i]``.  A value landing exactly on a
    power-of-two edge (e.g. ``2e-6``) belongs to the bucket it is the
    upper bound of — :meth:`_bucket_index` snaps near-edge values onto
    the edge before deciding, so float noise in ``log2`` can never flip
    an edge observation into the next bucket (which used to move
    p50/p99 by a full bucket width under steady edge-valued loads).
    """

    _FLOOR = 1e-6
    _BUCKETS = 40
    #: Relative ``log2`` slack treated as "exactly on a bucket edge".
    _EDGE_EPSILON = 1e-9

    def __init__(self) -> None:
        self.counts = [0] * (self._BUCKETS + 1)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    @classmethod
    def _bucket_index(cls, value: float) -> int:
        """The bucket of one observation, with explicit edge handling."""
        if value <= cls._FLOOR:
            return 0
        raw = math.log2(value / cls._FLOOR)
        nearest = round(raw)
        if abs(raw - nearest) <= cls._EDGE_EPSILON:
            # On (or within float noise of) an edge: the value is the
            # upper bound of bucket ``nearest``.
            index = max(int(nearest), 1)
        else:
            index = math.ceil(raw)
        # Values beyond floor * 2^40 (~13 days) collapse into the last
        # bucket; see percentile() for the bound this puts on results.
        return min(index, cls._BUCKETS)

    def record(self, seconds: float) -> None:
        """Add one observation (seconds)."""
        value = max(float(seconds), 0.0)
        self.count += 1
        self.total += value
        self.max_value = max(self.max_value, value)
        self.counts[self._bucket_index(value)] += 1

    def percentile(self, p: float) -> float:
        """The latency (seconds) at percentile ``p`` (0-100).

        Returns the upper bound of the bucket containing the rank-``p``
        observation, so the result overestimates the true percentile by
        at most one bucket width (a factor of 2).  The overflow bucket
        has no finite upper edge: results are capped at ``max_value``,
        so a percentile that lands there is bounded by
        ``(floor * 2^40, max observed value]`` — exact only when every
        overflow observation equals the maximum.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * (p / 100.0)))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                upper = self._FLOOR * (2.0 ** index)
                return min(upper, self.max_value)
        return self.max_value

    @property
    def mean(self) -> float:
        """Mean observed latency in seconds (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Summary statistics in milliseconds (JSON-friendly)."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50.0) * 1e3,
            "p90_ms": self.percentile(90.0) * 1e3,
            "p99_ms": self.percentile(99.0) * 1e3,
            "max_ms": self.max_value * 1e3,
        }

    def bucket_edges(self) -> List[float]:
        """Finite upper edges (seconds) for Prometheus bucket rendering."""
        return [self._FLOOR * (2.0 ** index) for index in range(self._BUCKETS)]


Number = Union[int, float]


class Counter:
    """Monotonic counter (one labeled series)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def get(self) -> Number:
        return self.value


class Gauge:
    """Settable value, or a callback evaluated at read time."""

    __slots__ = ("value", "_fn")

    def __init__(self) -> None:
        self.value: Number = 0
        self._fn: Optional[Callable[[], Number]] = None

    def set(self, value: Number) -> None:
        self._fn = None
        self.value = value

    def set_function(self, fn: Callable[[], Number]) -> None:
        self._fn = fn

    def get(self) -> Number:
        if self._fn is not None:
            return self._fn()
        return self.value


_VALID_KINDS = ("counter", "gauge", "histogram")


class MetricFamily:
    """One named metric with zero or more labeled series."""

    def __init__(self, name: str, kind: str, help: str, label_names: Tuple[str, ...]):
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._series: Dict[Tuple[str, ...], object] = {}

    def _make_child(self) -> object:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return LatencyHistogram()

    def labels(self, **labels: str):
        """The series for one label combination (created on demand)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} != declared {sorted(self.label_names)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._series.get(key)
        if child is None:
            child = self._make_child()
            self._series[key] = child
        return child

    def attach(self, child: object, **labels: str) -> object:
        """Adopt an existing Counter/Gauge/LatencyHistogram as a series."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} != declared {sorted(self.label_names)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        self._series[key] = child
        return child

    # Label-less families proxy to their single implicit series.

    def _default(self):
        return self.labels()

    def inc(self, amount: Number = 1) -> None:
        self._default().inc(amount)

    def set(self, value: Number) -> None:
        self._default().set(value)

    def set_function(self, fn: Callable[[], Number]) -> None:
        self._default().set_function(fn)

    def record(self, seconds: float) -> None:
        self._default().record(seconds)

    def get(self) -> Number:
        return self._default().get()

    def series(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        return sorted(self._series.items())


class MetricsRegistry:
    """Named families of counters/gauges/histograms.

    Registration is idempotent: asking for an existing name returns the
    existing family (and raises if the kind or labels disagree), so
    callers can rebuild snapshots without bookkeeping.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str, labels: Sequence[str]) -> MetricFamily:
        label_names = tuple(labels)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                    f"{existing.label_names}, requested {kind}{label_names}"
                )
            return existing
        family = MetricFamily(name, kind, help, label_names)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "histogram", help, labels)

    def set_gauges(self, values: Mapping[str, Number], help: str = "") -> None:
        """Bulk-register label-less gauges from a plain mapping."""
        for name, value in values.items():
            self.gauge(name, help).set(value)

    def families(self) -> Iterable[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def values(self) -> Dict[str, Number]:
        """Flat snapshot of counters and gauges (histograms → ``_count``).

        Label-less series map ``name -> value``; labeled series map
        ``name{label="v",...} -> value``.  Integer values stay integers
        so callers can splice this into JSON summaries losslessly.
        """
        out: Dict[str, Number] = {}
        for family in self.families():
            for key, child in family.series():
                name = family.name
                if family.kind == "histogram":
                    name += "_count"
                if key:
                    label_text = ",".join(
                        f'{label}="{value}"'
                        for label, value in zip(family.label_names, key)
                    )
                    name = f"{name}{{{label_text}}}"
                if family.kind == "histogram":
                    out[name] = child.count
                else:
                    out[name] = child.get()
        return out

    def as_dict(self) -> Dict[str, object]:
        """Nested JSON snapshot: ``{name: {kind, help, series: {...}}}``."""
        out: Dict[str, object] = {}
        for family in self.families():
            series: Dict[str, object] = {}
            for key, child in family.series():
                label_text = ",".join(
                    f'{label}="{value}"'
                    for label, value in zip(family.label_names, key)
                )
                if family.kind == "histogram":
                    series[label_text] = child.as_dict()
                else:
                    series[label_text] = child.get()
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def render_text(self) -> str:
        """Prometheus text exposition (version 0.0.4)."""
        return render_prometheus(self)


def _format_value(value: Number) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _label_block(label_names: Tuple[str, ...], key: Tuple[str, ...], extra: str = "") -> str:
    parts = [f'{label}="{value}"' for label, value in zip(label_names, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family.series():
            if family.kind == "histogram":
                cumulative = 0
                for edge, bucket_count in zip(child.bucket_edges(), child.counts):
                    cumulative += bucket_count
                    block = _label_block(family.label_names, key, f'le="{edge:.6g}"')
                    lines.append(f"{family.name}_bucket{block} {cumulative}")
                block = _label_block(family.label_names, key, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{block} {child.count}")
                plain = _label_block(family.label_names, key)
                lines.append(f"{family.name}_sum{plain} {_format_value(child.total)}")
                lines.append(f"{family.name}_count{plain} {child.count}")
            else:
                block = _label_block(family.label_names, key)
                lines.append(f"{family.name}{block} {_format_value(child.get())}")
    return "\n".join(lines) + "\n"
