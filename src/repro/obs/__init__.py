"""Observability layer: structured tracing + uniform metrics registry.

See :mod:`repro.obs.trace` for the deterministic span/event recorder
and :mod:`repro.obs.metrics` for the counters/gauges/histograms
registry with Prometheus text exposition.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.trace import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TraceRecorder,
    active_tracer,
    current_tracer,
    export_chrome_trace,
    format_tree,
    install_tracer,
    load_jsonl,
    summarize,
    uninstall_tracer,
    validate_record,
    validate_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "render_prometheus",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TraceRecorder",
    "active_tracer",
    "current_tracer",
    "export_chrome_trace",
    "format_tree",
    "install_tracer",
    "load_jsonl",
    "summarize",
    "uninstall_tracer",
    "validate_record",
    "validate_trace_file",
]
