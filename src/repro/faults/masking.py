"""Node compaction: present a faulted cluster to ONES as a smaller one.

The greedy baselines pick GPUs from ``state.free_gpus()``, so hiding the
GPUs of down nodes from that list is enough to make them fault-aware.
ONES is different: its genome spans *every* GPU id of the cluster
(Fig. 1), and the evolutionary operators would happily place workers on
a dead node.

Rather than teaching idle/blocked semantics to both evolution engines
(and re-proving their bit-exact parity), this module exploits the
node-granular availability contract of :mod:`repro.faults.plan`: because
outages always remove *whole, homogeneous* servers from a uniform star
fabric, the surviving nodes are — up to a relabelling — exactly a
smaller Longhorn cluster.  :func:`compact_state` maps the up-nodes onto
a dense virtual topology (virtual node ``k`` = ``k``-th surviving real
node, GPUs renumbered contiguously), re-expresses the deployed
allocation in virtual ids, and hands ONES a perfectly ordinary
``ClusterState`` to evolve against.  The winning allocation is then
translated back to real GPU ids with :meth:`CompactView.expand`.

Throughput is preserved exactly: nodes are homogeneous, the interconnect
is a uniform star, and the mapping keeps node boundaries — a placement
and its virtual image span the same number of servers with the same
bandwidths, so ``ThroughputModel`` returns bit-identical values on
either side of the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.base import ClusterState
from repro.cluster.allocation import Allocation, WorkerAssignment
from repro.cluster.topology import ClusterTopology
from repro.jobs.job import Job
from repro.jobs.throughput import ThroughputModel


@dataclass
class CompactView:
    """A virtual (dense) view of a faulted cluster plus its id mappings."""

    state: ClusterState  # the virtual ClusterState handed to the scheduler
    to_real: np.ndarray  # virtual gpu id -> real gpu id
    from_real: Dict[int, int]  # real gpu id -> virtual gpu id

    def expand(self, allocation: Allocation) -> Allocation:
        """Translate a virtual-id allocation back to real GPU ids."""
        return Allocation(
            {
                int(self.to_real[gpu]): WorkerAssignment(job_id, batch)
                for gpu, (job_id, batch) in allocation.as_dict().items()
            }
        )

    def compress(self, allocation: Allocation) -> Allocation:
        """Translate a real-id allocation (on up nodes only) to virtual ids."""
        mapping: Dict[int, WorkerAssignment] = {}
        for gpu, (job_id, batch) in allocation.as_dict().items():
            virtual = self.from_real.get(int(gpu))
            if virtual is None:
                raise ValueError(
                    f"allocation places job {job_id!r} on unavailable GPU {gpu}"
                )
            mapping[virtual] = WorkerAssignment(job_id, batch)
        return Allocation(mapping)


def _up_nodes(state: ClusterState) -> Tuple[int, ...]:
    """Surviving node ids, asserting the node-granular availability contract."""
    topology = state.topology
    unavailable = set(state.unavailable_gpus)
    down_nodes = sorted({int(topology.node_of(g)) for g in unavailable})
    covered = set()
    for node in down_nodes:
        covered.update(int(g) for g in topology.gpus_of_node(node))
    if covered != unavailable:
        raise ValueError(
            "unavailable GPUs are not whole nodes; node compaction requires "
            "node-granular outages (see repro.faults.plan)"
        )
    up = tuple(n for n in range(topology.num_nodes) if n not in set(down_nodes))
    if not up:
        raise ValueError("every node is down; nothing to compact onto")
    return up


def compact_nodes(
    state: ClusterState,
    nodes: Sequence[int],
    topology: ClusterTopology,
    throughput_model: ThroughputModel,
    *,
    jobs: Optional[Dict[str, Job]] = None,
    strict: bool = True,
) -> CompactView:
    """Compact an explicit node subset of ``state`` onto a dense cluster.

    The generalisation underneath both fault masking and hierarchical
    partitioning: ``nodes`` names the real nodes the virtual cluster is
    built from (in that order), ``topology`` / ``throughput_model`` are
    the matching dense instances (``len(nodes)`` nodes), and ``jobs``
    optionally restricts the view to a job subset — the per-partition
    case, where a partition's scheduler must only see its own jobs.

    ``strict=True`` raises if a visible job holds a GPU outside the node
    subset (the fault-masking contract: surviving jobs sit entirely on
    surviving nodes).  ``strict=False`` silently drops such workers from
    the compacted allocation instead — the *drain* semantics partitions
    need when a node is being reclaimed for a wide job: the partition
    evolves a schedule without the leaving node, and deploying it
    releases the stragglers.
    """
    gpus_per_node = state.topology.gpus_per_node
    to_real = np.concatenate(
        [np.asarray(state.topology.gpus_of_node(node), dtype=np.int64) for node in nodes]
    )
    if to_real.shape[0] != topology.num_gpus or topology.gpus_per_node != gpus_per_node:
        raise ValueError("virtual topology does not match the selected nodes")
    from_real = {int(real): virtual for virtual, real in enumerate(to_real)}
    view = CompactView(
        state=None,  # type: ignore[arg-type]  # filled right below
        to_real=to_real,
        from_real=from_real,
    )
    visible_jobs = state.jobs if jobs is None else jobs
    mapping: Dict[int, WorkerAssignment] = {}
    for gpu, (job_id, batch) in state.allocation.as_dict().items():
        if jobs is not None and job_id not in visible_jobs:
            continue
        virtual = from_real.get(int(gpu))
        if virtual is None:
            if strict:
                raise ValueError(
                    f"allocation places job {job_id!r} on GPU {gpu}, outside the "
                    f"compacted node subset"
                )
            continue
        mapping[virtual] = WorkerAssignment(job_id, batch)
    view.state = ClusterState(
        now=state.now,
        topology=topology,
        throughput_model=throughput_model,
        allocation=Allocation(mapping),
        jobs=visible_jobs,
    )
    return view


def compact_state(
    state: ClusterState,
    topology: ClusterTopology,
    throughput_model: ThroughputModel,
) -> CompactView:
    """Build the virtual :class:`ClusterState` over ``topology``.

    ``topology`` / ``throughput_model`` are the virtual-cluster instances
    (usually cached per down-node set via :func:`virtual_cluster`); the
    job dictionary is shared by reference, so the scheduler observes the
    same live :class:`~repro.jobs.job.Job` objects either way.
    """
    return compact_nodes(state, _up_nodes(state), topology, throughput_model)


def virtual_cluster(
    state: ClusterState,
) -> Tuple[ClusterTopology, ThroughputModel]:
    """The dense virtual topology/model for the current down-node set.

    Pure construction — callers cache the result keyed by
    ``state.unavailable_gpus`` (the ONES scheduler keeps such a cache so
    repeated events during one outage reuse the same instances).
    """
    up = _up_nodes(state)
    topology = ClusterTopology(len(up), state.topology.node_spec)
    model = ThroughputModel(
        topology,
        allreduce_efficiency=state.throughput_model.allreduce_efficiency,
    )
    return topology, model
