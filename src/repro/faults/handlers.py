"""Fault event handlers: the kernel-side half of fault injection.

These are ordinary :class:`~repro.sim.kernel.EventHandler` strategies,
built exactly by the add-an-event-kind recipe in
:mod:`repro.sim.handlers` and registered alongside the arrival /
epoch-end / timer handlers.  Each consumes one of the fault
:class:`~repro.cluster.events.EventKind` members; the event's ``payload``
is the originating :class:`~repro.faults.plan.FaultInjection`.

``NODE_DOWN``
    Marks the node down, **evicts every job with a worker on it** (the
    whole job — losing one member kills the all-reduce gang), charges
    the checkpoint/restart cost model (progress since the last implicit
    checkpoint is rolled back; a restore delay is owed at the next
    start), shrinks the cluster's available capacity, and asks the
    scheduler to react via :meth:`SchedulerBase.on_fault` — its normal
    rescheduling path, so ONES and every baseline recover using the
    same policy logic they schedule with.
``NODE_UP``
    Restores the node's capacity and again triggers ``on_fault`` so the
    scheduler can immediately re-expand onto the recovered GPUs.
``GPU_DEGRADED``
    Applies a throughput multiplier to the node (straggler); running
    jobs with workers there have their progress rate re-derived and
    their epoch boundary re-scheduled.  A factor of 1.0 restores full
    speed.  No capacity changes and no evictions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.cluster.allocation import Allocation
from repro.cluster.events import Event, EventKind
from repro.faults.plan import FaultInjection
from repro.obs.trace import active_tracer
from repro.sim.kernel import EventHandler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (facade imports us)
    from repro.sim.simulator import ClusterSimulator


def _injection(event: Event) -> FaultInjection:
    payload = event.payload
    if not isinstance(payload, FaultInjection):
        raise TypeError(
            f"fault event at t={event.time} carries payload {payload!r}; "
            f"expected a FaultInjection"
        )
    return payload


def _dispatch_on_fault(sim: "ClusterSimulator") -> None:
    """Let the scheduler react to the capacity change through its own policy."""
    proposal = sim.scheduler.on_fault(sim._state())
    if proposal is not None:
        sim._apply_allocation(proposal)


class NodeDownHandler(EventHandler):
    """``NODE_DOWN``: evict affected jobs, shrink capacity, reschedule."""

    kind = EventKind.NODE_DOWN

    def __init__(self, sim: "ClusterSimulator") -> None:
        self.sim = sim

    def handle(self, event: Event) -> None:
        sim = self.sim
        injection = _injection(event)
        if not sim.faults.mark_down(injection.node_id):
            return  # duplicate injection: the node is already down
        dead_gpus = {int(g) for g in sim.topology.gpus_of_node(injection.node_id)}
        mapping = sim.allocation.as_dict()  # {gpu: (job_id, local_batch)}
        victims = sorted({worker[0] for gpu, worker in mapping.items() if gpu in dead_gpus})
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "node_down",
                "fault",
                sim.now,
                node=int(injection.node_id),
                victims=len(victims),
            )
        for job_id in victims:
            self._evict(job_id)
        if victims:
            # Drop every victim's workers (even those on healthy nodes:
            # the gang is broken) from the deployed allocation.
            dead_jobs = set(victims)
            survivors = {
                gpu: worker
                for gpu, worker in mapping.items()
                if worker[0] not in dead_jobs
            }
            sim.allocation = Allocation(
                {gpu: _assignment(worker) for gpu, worker in survivors.items()}
            )
        _dispatch_on_fault(sim)

    def _evict(self, job_id: str) -> None:
        """Kill one job's gang: roll back uncheckpointed work, owe a restore."""
        sim = self.sim
        job = sim.jobs[job_id]
        sim.ledger.materialize(job_id)
        lost = sim.fault_costs.lost_samples(job)
        rate = sim.ledger.rate_of(job_id)
        lost_seconds = lost / rate if rate > 0 else 0.0
        if lost > 0:
            batch = max(1, job.global_batch)
            gain = job.spec.convergence.epoch_progress(batch, job.lr_scaled)
            fraction = lost / job.dataset_size
            job.samples_processed = max(0.0, job.samples_processed - lost)
            job.effective_epochs = max(0.0, job.effective_epochs - fraction * gain)
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "evict",
                "fault",
                sim.now,
                job=job_id,
                lost_samples=float(lost),
                num_gpus=job.num_gpus,
            )
        sim.faults.charge_eviction(lost, lost_seconds, job.num_gpus)
        sim.faults.owe_restart(
            job_id, sim.fault_costs.restart_delay(job, sim.overheads)
        )
        # stop_running bumps the generation, so pending EPOCH_END events
        # scheduled for the dead configuration are lazily invalidated.
        job.stop_running(sim.now)
        sim.ledger.clear_runtime(job_id)
        sim.ledger.pull(job)


class NodeUpHandler(EventHandler):
    """``NODE_UP``: restore capacity and let the scheduler re-expand."""

    kind = EventKind.NODE_UP

    def __init__(self, sim: "ClusterSimulator") -> None:
        self.sim = sim

    def handle(self, event: Event) -> None:
        sim = self.sim
        injection = _injection(event)
        if not sim.faults.mark_up(injection.node_id):
            return  # duplicate injection: the node was not down
        tracer = active_tracer()
        if tracer is not None:
            tracer.event("node_up", "fault", sim.now, node=int(injection.node_id))
        _dispatch_on_fault(sim)


class GpuDegradedHandler(EventHandler):
    """``GPU_DEGRADED``: apply a straggler multiplier to a node's GPUs."""

    kind = EventKind.GPU_DEGRADED

    def __init__(self, sim: "ClusterSimulator") -> None:
        self.sim = sim

    def handle(self, event: Event) -> None:
        sim = self.sim
        injection = _injection(event)
        sim.faults.set_degrade(injection.node_id, injection.factor)
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "degrade",
                "fault",
                sim.now,
                node=int(injection.node_id),
                factor=float(injection.factor),
            )
        slow_gpus = {int(g) for g in sim.topology.gpus_of_node(injection.node_id)}
        affected: List[str] = sorted(
            {
                worker[0]
                for gpu, worker in sim.allocation.as_dict().items()
                if gpu in slow_gpus
            }
        )
        for job_id in affected:
            job = sim.jobs[job_id]
            if not job.is_running:
                continue
            config = sim.allocation.config_of(job_id)
            if config is None:
                continue
            sim.ledger.materialize(job_id)
            # The rate changes without a re-configuration: bump the
            # generation so the stale epoch boundary is dropped, then
            # re-derive the rate under the new multiplier and reschedule.
            job.generation += 1
            base_rate = sim.throughput_model.throughput(
                job.spec.model, list(config.local_batches), list(config.gpu_ids)
            )
            sim.ledger.set_rate(
                job_id, base_rate * sim.faults.placement_factor(config.gpu_ids)
            )
            sim._schedule_epoch_end(job)


def fault_handlers(sim: "ClusterSimulator") -> List[EventHandler]:
    """The three fault-kind strategies bound to one simulator."""
    return [NodeDownHandler(sim), NodeUpHandler(sim), GpuDegradedHandler(sim)]


def _assignment(worker):
    from repro.cluster.allocation import WorkerAssignment

    if isinstance(worker, WorkerAssignment):
        return worker
    job_id, local_batch = worker
    return WorkerAssignment(job_id=job_id, local_batch=local_batch)
