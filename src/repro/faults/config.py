"""Declarative fault configuration: the experiment-grid axis.

A :class:`FaultConfig` describes *which* faults a simulation is exposed
to — a named seeded profile plus its parameters, or an explicit list of
injections parsed from JSON — together with the checkpoint/restart cost
knobs.  Like :class:`~repro.workload.trace.TraceConfig` it is pure data:
JSON round-trippable, hashable, and content-keyed, so it can ride inside
a :class:`~repro.sim.simulator.SimulationConfig` through
:meth:`~repro.experiments.spec.RunSpec.cell_key` and across process
boundaries.  The concrete :class:`~repro.faults.plan.FaultPlan` is only
materialised inside the simulator (``build_plan``), from the config, the
cluster's node count and the simulation horizon — all of which are part
of the cell — so a faulted cell stays a pure function of its spec.

A config with ``profile="none"`` and no explicit injections is
*disabled*: :class:`~repro.sim.simulator.SimulationConfig` normalises it
to ``None``, which keeps zero-fault cell keys (and trajectories)
bit-identical to builds that predate the fault subsystem.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

from repro.faults.plan import FaultInjection, FaultPlan
from repro.utils.validation import check_non_negative, check_positive

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FaultConfig:
    """Everything needed to derive a deterministic fault plan for a run.

    Parameters
    ----------
    profile:
        Name of a registered fault profile (``repro-ones fault-profiles``
        lists them); ``"none"`` disables injection.
    seed:
        Seed of the profile's own RNG — independent of the trace /
        scheduler seed so fault weather can be varied (or held fixed)
        orthogonally to the workload.
    mtbf_hours:
        Mean time between failures per node (``mtbf`` / ``stragglers``)
        or per rack (``rack``).
    repair_minutes:
        Mean repair / maintenance-window duration.
    rack_size:
        Nodes per failure domain for the ``rack`` profile.
    maintenance_interval_hours:
        Period of the rolling ``maintenance`` windows.
    degrade_factor / degrade_minutes:
        Straggler throughput multiplier and episode length.
    max_down_fraction:
        Capacity floor: profiles never take down more than this fraction
        of the nodes at once (and always leave at least one node up).
    restart_delay_multiplier:
        Scales the per-model checkpoint-restart cost charged when an
        evicted job is restarted (see :mod:`repro.faults.costs`).
    lost_work_fraction:
        Fraction of the progress since the last epoch boundary (the
        implicit checkpoint) that an eviction destroys; 1.0 means jobs
        roll all the way back to the boundary.
    injections:
        Explicit plan entries (e.g. parsed from JSON).  When non-empty
        they take precedence over the profile.
    """

    profile: str = "none"
    seed: int = 2021
    mtbf_hours: float = 2.0
    repair_minutes: float = 15.0
    rack_size: int = 2
    maintenance_interval_hours: float = 6.0
    degrade_factor: float = 0.5
    degrade_minutes: float = 20.0
    max_down_fraction: float = 0.5
    restart_delay_multiplier: float = 1.0
    lost_work_fraction: float = 1.0
    injections: Tuple[FaultInjection, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "profile", str(self.profile).lower().strip() or "none")
        object.__setattr__(self, "seed", int(self.seed))
        check_positive(self.mtbf_hours, "mtbf_hours")
        check_positive(self.repair_minutes, "repair_minutes")
        if int(self.rack_size) < 1:
            raise ValueError("rack_size must be >= 1")
        object.__setattr__(self, "rack_size", int(self.rack_size))
        check_positive(self.maintenance_interval_hours, "maintenance_interval_hours")
        if not 0.0 < float(self.degrade_factor) <= 1.0:
            raise ValueError("degrade_factor must be in (0, 1]")
        check_positive(self.degrade_minutes, "degrade_minutes")
        if not 0.0 < float(self.max_down_fraction) <= 1.0:
            raise ValueError("max_down_fraction must be in (0, 1]")
        check_non_negative(self.restart_delay_multiplier, "restart_delay_multiplier")
        if not 0.0 <= float(self.lost_work_fraction) <= 1.0:
            raise ValueError("lost_work_fraction must be in [0, 1]")
        object.__setattr__(self, "injections", tuple(self.injections))

    # -- state queries ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether this config injects anything at all."""
        return self.profile != "none" or bool(self.injections)

    def describe(self) -> str:
        """Compact label used in logs, cell labels and report tables."""
        if not self.enabled:
            return "none"
        if self.injections:
            return f"plan-{self.config_key()[:8]}"
        return f"{self.profile}-s{self.seed}"

    def build_plan(self, num_nodes: int, horizon: float) -> FaultPlan:
        """The deterministic :class:`FaultPlan` for one cluster/horizon."""
        from repro.faults.profiles import build_plan

        return build_plan(self, num_nodes, horizon)

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        payload: Dict[str, object] = {
            "profile": self.profile,
            "seed": int(self.seed),
            "mtbf_hours": float(self.mtbf_hours),
            "repair_minutes": float(self.repair_minutes),
            "rack_size": int(self.rack_size),
            "maintenance_interval_hours": float(self.maintenance_interval_hours),
            "degrade_factor": float(self.degrade_factor),
            "degrade_minutes": float(self.degrade_minutes),
            "max_down_fraction": float(self.max_down_fraction),
            "restart_delay_multiplier": float(self.restart_delay_multiplier),
            "lost_work_fraction": float(self.lost_work_fraction),
        }
        if self.injections:
            payload["injections"] = [inj.to_dict() for inj in self.injections]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultConfig":
        """Rebuild a :class:`FaultConfig` from :meth:`to_dict` output."""
        return cls(
            profile=str(payload.get("profile", "none")),
            seed=int(payload.get("seed", 2021)),
            mtbf_hours=float(payload.get("mtbf_hours", 2.0)),
            repair_minutes=float(payload.get("repair_minutes", 15.0)),
            rack_size=int(payload.get("rack_size", 2)),
            maintenance_interval_hours=float(
                payload.get("maintenance_interval_hours", 6.0)
            ),
            degrade_factor=float(payload.get("degrade_factor", 0.5)),
            degrade_minutes=float(payload.get("degrade_minutes", 20.0)),
            max_down_fraction=float(payload.get("max_down_fraction", 0.5)),
            restart_delay_multiplier=float(payload.get("restart_delay_multiplier", 1.0)),
            lost_work_fraction=float(payload.get("lost_work_fraction", 1.0)),
            injections=tuple(
                FaultInjection.from_dict(entry)
                for entry in payload.get("injections", [])
            ),
        )

    def config_key(self) -> str:
        """Content hash of the config (folds into experiment cell keys)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- constructors -------------------------------------------------------------------

    @classmethod
    def from_plan_file(cls, path: PathLike, **overrides) -> "FaultConfig":
        """A config replaying an explicit JSON plan (see ``FaultPlan.save``)."""
        plan = FaultPlan.load(path)
        return cls(profile="plan", injections=plan.injections, **overrides)

    def with_seed(self, seed: int) -> "FaultConfig":
        """The same fault weather distribution under a different seed."""
        return replace(self, seed=int(seed))
