"""Deterministic fault plans: timed node outages and degradations.

A :class:`FaultPlan` is the *data* half of the fault-injection subsystem:
an immutable, time-sorted sequence of :class:`FaultInjection` entries
(``NODE_DOWN`` / ``NODE_UP`` / ``GPU_DEGRADED``), fully described by
plain JSON.  Plans never execute anything themselves — the simulator
turns each injection into a kernel event
(:mod:`repro.faults.handlers`) — which is what makes a faulted run a
pure function of its spec, exactly like every other
:class:`~repro.experiments.spec.RunSpec` cell: the same plan replayed in
another process (or on another machine) produces a bit-identical
trajectory.

Plans are either generated from a seeded profile
(:mod:`repro.faults.profiles`) or parsed from JSON (``FaultPlan.from_json``
/ ``load``), and carry a content hash (:meth:`FaultPlan.plan_key`) so
experiment cell keys change whenever the injected faults do.

Granularity contract
--------------------
Availability changes are **node-granular**: an outage takes down a whole
server and every GPU in it.  This matches how GPU clusters actually fail
(PSU, NIC, host kernel) and is what lets the ONES masking layer
(:mod:`repro.faults.masking`) compact the surviving nodes onto a dense
virtual topology without breaking placement locality.  ``GPU_DEGRADED``
does *not* remove capacity — it multiplies the throughput of every GPU
on the node by ``factor`` (a straggler), and a later injection with
``factor = 1.0`` restores full speed.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.utils.validation import check_non_negative

PathLike = Union[str, Path]


class FaultKind(enum.Enum):
    """What one injection does to its node."""

    NODE_DOWN = "node_down"
    NODE_UP = "node_up"
    GPU_DEGRADED = "gpu_degraded"


#: Same-timestamp ordering of injections (mirrors the EventKind
#: tie-break priorities): a DOWN at time t is applied before an UP at
#: the same instant, so coincident outage hand-offs never observe a
#: transiently empty cluster as *extra* capacity.
_KIND_ORDER = {FaultKind.NODE_DOWN: 0, FaultKind.NODE_UP: 1, FaultKind.GPU_DEGRADED: 2}


@dataclass(frozen=True)
class FaultInjection:
    """One timed fault: a node goes down, comes back, or degrades.

    Attributes
    ----------
    time:
        Simulation timestamp (seconds) at which the fault strikes.
    kind:
        The :class:`FaultKind`.
    node_id:
        The affected server (every GPU on it is affected).
    factor:
        Throughput multiplier for ``GPU_DEGRADED`` (``0 < factor <= 1``;
        ``1.0`` restores full speed).  Ignored by the availability kinds.
    """

    time: float
    kind: FaultKind
    node_id: int
    factor: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative(self.time, "time")
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if int(self.node_id) < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        object.__setattr__(self, "node_id", int(self.node_id))
        if not 0.0 < float(self.factor) <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")
        object.__setattr__(self, "factor", float(self.factor))

    def sort_key(self) -> Tuple[float, int, int]:
        """Canonical ordering key: time, kind priority, node id."""
        return (self.time, _KIND_ORDER[self.kind], self.node_id)

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {
            "time": float(self.time),
            "kind": self.kind.value,
            "node_id": int(self.node_id),
            "factor": float(self.factor),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultInjection":
        """Rebuild a :class:`FaultInjection` from :meth:`to_dict` output."""
        return cls(
            time=float(payload["time"]),
            kind=FaultKind(payload["kind"]),
            node_id=int(payload["node_id"]),
            factor=float(payload.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, canonically-ordered sequence of fault injections."""

    injections: Tuple[FaultInjection, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.injections, key=FaultInjection.sort_key))
        object.__setattr__(self, "injections", ordered)

    # -- views --------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.injections)

    def __iter__(self) -> Iterator[FaultInjection]:
        return iter(self.injections)

    def __bool__(self) -> bool:
        return bool(self.injections)

    @property
    def max_time(self) -> float:
        """Timestamp of the last injection (0.0 for an empty plan)."""
        return self.injections[-1].time if self.injections else 0.0

    def counts(self) -> Dict[str, int]:
        """Number of injections per kind (keys are ``FaultKind`` values)."""
        counts = {kind.value: 0 for kind in FaultKind}
        for injection in self.injections:
            counts[injection.kind.value] += 1
        return counts

    # -- validation ---------------------------------------------------------------------

    def validate(self, num_nodes: int) -> None:
        """Check the plan against a cluster of ``num_nodes`` servers.

        Raises :class:`ValueError` when an injection references a node
        outside the cluster, when the plan is inconsistent (an UP for a
        node that is not down, a DOWN for a node already down), or when
        at any instant *every* node would be down (a blackout no
        scheduler could survive — plans must leave at least one server).
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        down: set = set()
        for injection in self.injections:
            if injection.node_id >= num_nodes:
                raise ValueError(
                    f"injection references node {injection.node_id} outside "
                    f"the cluster range [0, {num_nodes})"
                )
            if injection.kind is FaultKind.NODE_DOWN:
                if injection.node_id in down:
                    raise ValueError(
                        f"node {injection.node_id} goes down at t={injection.time} "
                        f"while already down"
                    )
                down.add(injection.node_id)
                if len(down) >= num_nodes:
                    raise ValueError(
                        f"plan takes down every node at t={injection.time}; "
                        f"at least one server must stay up"
                    )
            elif injection.kind is FaultKind.NODE_UP:
                if injection.node_id not in down:
                    raise ValueError(
                        f"node {injection.node_id} comes up at t={injection.time} "
                        f"without being down"
                    )
                down.discard(injection.node_id)

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {"injections": [injection.to_dict() for injection in self.injections]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultPlan":
        """Rebuild a :class:`FaultPlan` from :meth:`to_dict` output."""
        return cls(
            injections=tuple(
                FaultInjection.from_dict(entry) for entry in payload.get("injections", [])
            )
        )

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Deserialize from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: PathLike) -> Path:
        """Write the plan to ``path`` as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        """Read a plan previously written by :meth:`save` (or hand-authored)."""
        return cls.from_json(Path(path).read_text())

    def plan_key(self) -> str:
        """Content hash of the plan (folded into experiment cell keys)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class Outage:
    """One contiguous node outage used by the profile generators."""

    node_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("outage end must be after its start")


def assemble_plan(
    outages: Sequence[Outage],
    degrades: Sequence[FaultInjection] = (),
    *,
    num_nodes: int,
    max_down_fraction: float = 0.5,
) -> FaultPlan:
    """Turn generator output into a valid :class:`FaultPlan`.

    Outages are admitted in ``(start, node_id)`` order; any outage that
    would push the number of concurrently-down nodes above
    ``max_down_fraction`` of the cluster (always leaving at least one
    node up) is dropped deterministically.  An outage *touching* an
    active one (start exactly at its end) counts as overlapping: at that
    instant the ``NODE_DOWN`` is applied before the coincident
    ``NODE_UP`` (the event tie-break), so admitting it would transiently
    exceed the floor — e.g. black out a two-node cluster during a
    rolling-maintenance hand-off.  Admitted outages become paired
    ``NODE_DOWN`` / ``NODE_UP`` injections; ``degrades`` are passed
    through unchanged.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not 0.0 < max_down_fraction <= 1.0:
        raise ValueError("max_down_fraction must be in (0, 1]")
    cap = min(max(1, int(num_nodes * max_down_fraction)), num_nodes - 1)
    injections: List[FaultInjection] = list(degrades)
    if cap >= 1:
        active: Dict[int, float] = {}  # node -> outage end
        for outage in sorted(outages, key=lambda o: (o.start, o.node_id)):
            active = {n: end for n, end in active.items() if end >= outage.start}
            if len(active) >= cap or outage.node_id in active:
                continue  # would exceed the capacity floor / node already down
            active[outage.node_id] = outage.end
            injections.append(
                FaultInjection(outage.start, FaultKind.NODE_DOWN, outage.node_id)
            )
            injections.append(
                FaultInjection(outage.end, FaultKind.NODE_UP, outage.node_id)
            )
    plan = FaultPlan(tuple(injections))
    plan.validate(num_nodes)
    return plan
