"""Seeded fault-profile generators: reproducible cluster weather.

Each profile turns a :class:`~repro.faults.config.FaultConfig` plus the
cluster size and simulation horizon into a deterministic
:class:`~repro.faults.plan.FaultPlan`.  Determinism contract: a profile
may use **only** its own ``numpy`` generator (seeded from the config),
sorted/integer iteration orders and the config's scalar parameters — no
wall clock, no ``hash()``, no set/dict iteration over strings — so the
same config produces a bit-identical plan in any process regardless of
``PYTHONHASHSEED`` (pinned by ``tests/test_faults_plan.py``).

Built-in profiles
-----------------
``mtbf``
    Independent node failures: per-node exponential time-between-failures
    (``mtbf_hours``) with exponential repair times (``repair_minutes``).
    The classic memoryless hardware-failure model.
``rack``
    Correlated outages: nodes are grouped into racks of ``rack_size``
    and a whole rack fails together (shared PSU / top-of-rack switch),
    with rack-level exponential MTBF and a common repair time.
``maintenance``
    Planned rolling windows: every ``maintenance_interval_hours`` the
    next node (round-robin) is drained for ``repair_minutes``.  No
    randomness beyond a seeded phase offset.
``stragglers``
    No capacity loss: nodes intermittently degrade to
    ``degrade_factor`` of their throughput for ``degrade_minutes``
    (thermal throttling, noisy neighbours), then recover.

New profiles self-register with :func:`register_profile` and become
reachable from configs and the ``repro-ones fault-profiles`` listing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

import numpy as np

from repro.faults.plan import (
    FaultInjection,
    FaultKind,
    FaultPlan,
    Outage,
    assemble_plan,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config imports us)
    from repro.faults.config import FaultConfig

#: Profile signature: ``(config, num_nodes, horizon, rng) -> FaultPlan``.
ProfileFn = Callable[["FaultConfig", int, float, np.random.Generator], FaultPlan]

_PROFILES: Dict[str, Tuple[ProfileFn, str]] = {}


class UnknownFaultProfileError(KeyError):
    """Raised when a profile name does not resolve to a generator."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown fault profile {name!r}; available: "
            f"{', '.join(available_profiles())}"
        )

    def __str__(self) -> str:  # KeyError quotes its repr by default
        return self.args[0]


def register_profile(
    name: str, description: str = ""
) -> Callable[[ProfileFn], ProfileFn]:
    """Decorator registering a fault-profile generator under ``name``."""
    key = str(name).lower()
    if not key:
        raise ValueError("profile name must be a non-empty string")

    def decorator(fn: ProfileFn) -> ProfileFn:
        if key in _PROFILES:
            raise ValueError(f"fault profile {key!r} is already registered")
        _PROFILES[key] = (fn, description)
        return fn

    return decorator


def available_profiles() -> Tuple[str, ...]:
    """Names of every registered profile, in registration order."""
    return tuple(_PROFILES)


def profile_table() -> List[Dict[str, str]]:
    """``{profile, description}`` rows for the CLI listing."""
    return [
        {"profile": name, "description": description}
        for name, (_, description) in _PROFILES.items()
    ]


def build_plan(config: "FaultConfig", num_nodes: int, horizon: float) -> FaultPlan:
    """Generate the deterministic plan of ``config`` for one cluster/horizon.

    Explicit injections on the config (a parsed JSON plan) take
    precedence over the profile; the profile's RNG is seeded from the
    config seed alone, so the plan depends only on
    ``(config, num_nodes, horizon)``.
    """
    if config.injections:
        plan = FaultPlan(tuple(config.injections))
        plan.validate(num_nodes)
        return plan
    key = str(config.profile).lower()
    if key in ("", "none"):
        return FaultPlan()
    entry = _PROFILES.get(key)
    if entry is None:
        raise UnknownFaultProfileError(config.profile)
    rng = np.random.Generator(np.random.PCG64(int(config.seed)))
    return entry[0](config, int(num_nodes), float(horizon), rng)


# --- built-in profiles ---------------------------------------------------------------


@register_profile("mtbf", "independent node failures (exponential MTBF + repair)")
def _mtbf_profile(
    config: "FaultConfig", num_nodes: int, horizon: float, rng: np.random.Generator
) -> FaultPlan:
    mtbf_s = config.mtbf_hours * 3600.0
    repair_s = config.repair_minutes * 60.0
    outages: List[Outage] = []
    for node in range(num_nodes):
        t = float(rng.exponential(mtbf_s))
        while t < horizon:
            down_for = max(30.0, float(rng.exponential(repair_s)))
            outages.append(Outage(node, t, t + down_for))
            t = t + down_for + float(rng.exponential(mtbf_s))
    return assemble_plan(
        outages, num_nodes=num_nodes, max_down_fraction=config.max_down_fraction
    )


@register_profile("rack", "correlated rack outages (whole racks fail together)")
def _rack_profile(
    config: "FaultConfig", num_nodes: int, horizon: float, rng: np.random.Generator
) -> FaultPlan:
    rack_size = max(1, int(config.rack_size))
    mtbf_s = config.mtbf_hours * 3600.0
    repair_s = config.repair_minutes * 60.0
    num_racks = (num_nodes + rack_size - 1) // rack_size
    outages: List[Outage] = []
    for rack in range(num_racks):
        members = list(range(rack * rack_size, min((rack + 1) * rack_size, num_nodes)))
        t = float(rng.exponential(mtbf_s))
        while t < horizon:
            down_for = max(60.0, float(rng.exponential(repair_s)))
            for node in members:
                outages.append(Outage(node, t, t + down_for))
            t = t + down_for + float(rng.exponential(mtbf_s))
    return assemble_plan(
        outages, num_nodes=num_nodes, max_down_fraction=config.max_down_fraction
    )


@register_profile("maintenance", "rolling planned-maintenance windows (round-robin)")
def _maintenance_profile(
    config: "FaultConfig", num_nodes: int, horizon: float, rng: np.random.Generator
) -> FaultPlan:
    interval_s = config.maintenance_interval_hours * 3600.0
    # A drain window never consumes its whole interval: back-to-back
    # windows would make consecutive hand-offs *touch*, and touching
    # outages count as overlapping under the capacity floor (see
    # ``assemble_plan``) — on a two-node cluster that would drop every
    # other window instead of rolling through the fleet.
    window_s = min(max(60.0, config.repair_minutes * 60.0), 0.9 * interval_s)
    # A seeded phase so different seeds shift the schedule but stay periodic.
    t = float(rng.uniform(0.25, 1.0)) * interval_s
    node = int(rng.integers(num_nodes))
    outages: List[Outage] = []
    while t < horizon:
        outages.append(Outage(node, t, t + window_s))
        node = (node + 1) % num_nodes
        t += interval_s
    return assemble_plan(
        outages, num_nodes=num_nodes, max_down_fraction=config.max_down_fraction
    )


@register_profile("stragglers", "intermittent slow nodes (throughput degradation)")
def _stragglers_profile(
    config: "FaultConfig", num_nodes: int, horizon: float, rng: np.random.Generator
) -> FaultPlan:
    mtbf_s = config.mtbf_hours * 3600.0
    slow_s = max(60.0, config.degrade_minutes * 60.0)
    degrades: List[FaultInjection] = []
    for node in range(num_nodes):
        t = float(rng.exponential(mtbf_s))
        while t < horizon:
            degrades.append(
                FaultInjection(t, FaultKind.GPU_DEGRADED, node, config.degrade_factor)
            )
            degrades.append(FaultInjection(t + slow_s, FaultKind.GPU_DEGRADED, node, 1.0))
            t = t + slow_s + float(rng.exponential(mtbf_s))
    return assemble_plan(
        (), degrades, num_nodes=num_nodes, max_down_fraction=config.max_down_fraction
    )
