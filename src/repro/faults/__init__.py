"""Deterministic fault injection and cluster dynamics.

This package adds *cluster weather* to the simulator: node outages,
recoveries and stragglers, injected as ordinary kernel events so ONES
and every baseline react through their normal scheduling path.  It is
layered like the rest of the repo:

* :mod:`repro.faults.plan` — the data model: timed
  :class:`~repro.faults.plan.FaultInjection` entries collected into an
  immutable, JSON-round-trippable :class:`~repro.faults.plan.FaultPlan`
  with a content hash.
* :mod:`repro.faults.profiles` — seeded generators (``mtbf``, ``rack``,
  ``maintenance``, ``stragglers``) producing bit-identical plans across
  processes; new profiles self-register with
  :func:`~repro.faults.profiles.register_profile`.
* :mod:`repro.faults.config` — the declarative
  :class:`~repro.faults.config.FaultConfig` that rides inside
  :class:`~repro.sim.simulator.SimulationConfig` (and hence inside
  experiment cell keys) and materialises its plan inside the simulator.
* :mod:`repro.faults.costs` — the checkpoint/restart economics: lost
  work since the last implicit (epoch-boundary) checkpoint plus a
  per-model restore delay.
* :mod:`repro.faults.runtime` — per-run mutable state (down/degraded
  nodes, owed restarts) and the recovery metrics exported in
  ``SimulationResult.faults``.
* :mod:`repro.faults.handlers` — the ``NODE_DOWN`` / ``NODE_UP`` /
  ``GPU_DEGRADED`` event-handler strategies.
* :mod:`repro.faults.masking` — node compaction, which lets ONES evolve
  schedules over the surviving nodes as if they were a smaller cluster.
"""

from repro.faults.config import FaultConfig
from repro.faults.costs import FaultCostModel
from repro.faults.plan import FaultInjection, FaultKind, FaultPlan
from repro.faults.profiles import (
    UnknownFaultProfileError,
    available_profiles,
    build_plan,
    profile_table,
    register_profile,
)
from repro.faults.runtime import FaultRuntime

__all__ = [
    "FaultConfig",
    "FaultCostModel",
    "FaultInjection",
    "FaultKind",
    "FaultPlan",
    "FaultRuntime",
    "UnknownFaultProfileError",
    "available_profiles",
    "build_plan",
    "profile_table",
    "register_profile",
]
