"""Checkpoint/restart cost model for fault-evicted jobs.

The simulator's jobs checkpoint *implicitly* at every epoch boundary —
that is when workers upload progress to the scheduler (§3.1), and a
state dict written at that point is the natural recovery line.  When a
node failure evicts a job, two costs apply:

* **Lost work** — the progress made since the last epoch boundary is
  rolled back (scaled by ``lost_work_fraction``; 1.0 = everything since
  the boundary is gone).  The destroyed samples, wall-clock and
  GPU-seconds are charged to the run's recovery metrics.
* **Restart delay** — the next time the job starts it pays a
  checkpoint restore on top of the normal cold-start overhead.  The
  delay is *per job class*: it reuses the per-model checkpoint path of
  :class:`~repro.scaling.overhead.OverheadModel` (state-dict size over
  storage bandwidth + framework restart + per-family data preparation),
  scaled by ``restart_delay_multiplier``.

Both knobs live on :class:`~repro.faults.config.FaultConfig`, so a cell
fully determines its recovery economics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.scaling.overhead import OverheadModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jobs.job import Job


@dataclass(frozen=True)
class FaultCostModel:
    """Lost-work and restart-delay charges for fault evictions."""

    restart_delay_multiplier: float = 1.0
    lost_work_fraction: float = 1.0

    def lost_samples(self, job: "Job") -> float:
        """Samples destroyed by evicting ``job`` right now.

        Progress up to the last epoch boundary survives in the implicit
        checkpoint; a configurable fraction of everything after it is
        lost.
        """
        into_epoch = max(0.0, job.samples_into_current_epoch())
        return into_epoch * self.lost_work_fraction

    def restart_delay(self, job: "Job", overheads: OverheadModel) -> float:
        """Checkpoint-restore seconds charged at the job's next start."""
        if self.restart_delay_multiplier <= 0.0:
            return 0.0
        return self.restart_delay_multiplier * overheads.checkpoint_overhead(
            job.spec.model
        )
