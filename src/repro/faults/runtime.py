"""Mutable fault state owned by one simulator run.

The :class:`FaultRuntime` is the simulator-side counterpart of the
immutable :class:`~repro.faults.plan.FaultPlan`: it tracks which nodes
are currently down or degraded, the restart delays owed by evicted jobs,
and the recovery metrics that end up in
``SimulationResult.faults``.  It is deliberately cheap when no fault has
fired — every hot-path query short-circuits on empty state, so the
zero-fault event loop does the same work it did before the subsystem
existed (gated by the ``faults`` section of ``BENCH_scoring.json``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.cluster.topology import ClusterTopology

_EMPTY: FrozenSet[int] = frozenset()


class FaultRuntime:
    """Down/degraded node state plus recovery accounting for one run."""

    def __init__(self, topology: ClusterTopology) -> None:
        self._topology = topology
        self.down_nodes: Set[int] = set()
        self.degraded: Dict[int, float] = {}  # node -> throughput multiplier
        self.pending_restart: Dict[str, float] = {}  # job -> restore seconds owed
        self._unavailable: FrozenSet[int] = _EMPTY
        # recovery metrics (all floats so the dict serialises uniformly)
        self.node_down_events = 0
        self.node_up_events = 0
        self.degrade_events = 0
        self.evictions = 0
        self.restarts = 0
        self.lost_samples = 0.0
        self.lost_work_seconds = 0.0
        self.lost_gpu_seconds = 0.0
        self.restart_delay_seconds = 0.0
        self.downtime_gpu_seconds = 0.0

    # -- availability -------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any fault state is currently in effect."""
        return bool(self.down_nodes) or bool(self.degraded)

    def unavailable_gpus(self) -> FrozenSet[int]:
        """GPU ids on down nodes (cached; empty frozenset when healthy)."""
        return self._unavailable

    def mark_down(self, node_id: int) -> bool:
        """Record a node outage; returns False if the node was already down."""
        if node_id in self.down_nodes:
            return False
        self.down_nodes.add(node_id)
        self.node_down_events += 1
        self._refresh_unavailable()
        return True

    def mark_up(self, node_id: int) -> bool:
        """Record a node recovery; returns False if the node was not down."""
        if node_id not in self.down_nodes:
            return False
        self.down_nodes.discard(node_id)
        self.node_up_events += 1
        self._refresh_unavailable()
        return True

    def set_degrade(self, node_id: int, factor: float) -> None:
        """Set (or clear, at ``factor >= 1``) a node's throughput multiplier."""
        self.degrade_events += 1
        if factor >= 1.0:
            self.degraded.pop(node_id, None)
        else:
            self.degraded[node_id] = float(factor)

    def _refresh_unavailable(self) -> None:
        if not self.down_nodes:
            self._unavailable = _EMPTY
            return
        gpus: Set[int] = set()
        for node in self.down_nodes:
            gpus.update(int(g) for g in self._topology.gpus_of_node(node))
        self._unavailable = frozenset(gpus)

    # -- throughput degradation ---------------------------------------------------------

    def placement_factor(self, gpu_ids: Iterable[int]) -> float:
        """Throughput multiplier of a placement (slowest node bounds the ring)."""
        if not self.degraded:
            return 1.0
        factor = 1.0
        for node in {int(n) for n in self._topology.node_of(list(gpu_ids))}:
            factor = min(factor, self.degraded.get(node, 1.0))
        return factor

    # -- restart bookkeeping ------------------------------------------------------------

    def owe_restart(self, job_id: str, delay: float) -> None:
        """Record that ``job_id`` owes a checkpoint restore at its next start."""
        if delay > 0.0:
            self.pending_restart[job_id] = self.pending_restart.get(job_id, 0.0) + delay

    def consume_restart(self, job_id: str) -> float:
        """Pop (and account) the restart delay owed by ``job_id``, if any."""
        delay = self.pending_restart.pop(job_id, 0.0)
        if delay > 0.0:
            self.restarts += 1
            self.restart_delay_seconds += delay
        return delay

    def charge_eviction(
        self, lost_samples: float, lost_seconds: float, num_gpus: int
    ) -> None:
        """Account one eviction's destroyed work."""
        self.evictions += 1
        self.lost_samples += float(lost_samples)
        self.lost_work_seconds += float(lost_seconds)
        self.lost_gpu_seconds += float(lost_seconds) * int(num_gpus)

    def charge_downtime(self, duration: float) -> None:
        """Account capacity lost to down nodes over ``duration`` seconds."""
        if self.down_nodes and duration > 0.0:
            self.downtime_gpu_seconds += len(self._unavailable) * duration

    # -- export -------------------------------------------------------------------------

    def metrics(
        self,
        *,
        gpu_time_busy: Optional[float] = None,
        gpu_time_total: Optional[float] = None,
    ) -> Dict[str, float]:
        """The recovery-metric table stored in ``SimulationResult.faults``.

        ``goodput`` is the fraction of the *surviving* capacity that did
        work which counted: busy GPU-seconds minus the GPU-seconds whose
        progress an eviction later destroyed, over the total GPU-seconds
        net of downtime.
        """
        table: Dict[str, float] = {
            "node_down_events": float(self.node_down_events),
            "node_up_events": float(self.node_up_events),
            "degrade_events": float(self.degrade_events),
            "evictions": float(self.evictions),
            "restarts": float(self.restarts),
            "lost_samples": float(self.lost_samples),
            "lost_work_seconds": float(self.lost_work_seconds),
            "lost_gpu_seconds": float(self.lost_gpu_seconds),
            "restart_delay_seconds": float(self.restart_delay_seconds),
            "downtime_gpu_seconds": float(self.downtime_gpu_seconds),
        }
        if gpu_time_busy is not None and gpu_time_total is not None:
            available = max(gpu_time_total - self.downtime_gpu_seconds, 1e-9)
            useful = max(gpu_time_busy - self.lost_gpu_seconds, 0.0)
            table["goodput"] = min(useful / available, 1.0)
        return table
