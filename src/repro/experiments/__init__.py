"""Experiment harness: configurations and runners for every table and figure.

* :mod:`repro.experiments.config` — experiment configuration objects.
* :mod:`repro.experiments.runner` — run one scheduler (or all of them)
  over a shared trace; scalability sweeps.
* :mod:`repro.experiments.figures` — generators that return the data
  behind each figure/table of the paper; the benchmark scripts call
  these and print the results.
"""

from repro.experiments.config import ExperimentConfig, default_schedulers
from repro.experiments.runner import (
    ComparisonResult,
    run_comparison,
    run_scalability_sweep,
    run_single,
)
from repro.experiments.report import build_comparison_report, write_comparison_report
from repro.experiments import figures

__all__ = [
    "ExperimentConfig",
    "default_schedulers",
    "ComparisonResult",
    "run_comparison",
    "run_scalability_sweep",
    "run_single",
    "build_comparison_report",
    "write_comparison_report",
    "figures",
]
