"""Experiment orchestration: declarative specs, registry, runner, artifacts.

The public API for producing every table and figure of the paper:

* :mod:`repro.experiments.registry` — scheduler registry: string names
  -> factories + Table-3 capabilities; new schedulers self-register with
  the :func:`~repro.experiments.registry.register_scheduler` decorator.
* :mod:`repro.experiments.spec` — declarative
  :class:`~repro.experiments.spec.ExperimentSpec` grids (schedulers x
  capacities x seeds x traces) that expand to individual
  :class:`~repro.experiments.spec.RunSpec` cells.
* :mod:`repro.experiments.backends` — pluggable execution backends:
  serial, a process pool producing bit-identical results in parallel,
  or the durable lease-based work queue.
* :mod:`repro.experiments.queue` / :mod:`repro.experiments.worker` —
  the crash-safe file-backed :class:`~repro.experiments.queue.WorkQueue`
  (append-only work log + atomic leases) and the worker loop that
  executes cells from it, surviving ``kill -9`` worker churn.
* :mod:`repro.experiments.orchestrator` — the
  :class:`~repro.experiments.orchestrator.Runner`: executes grids with
  content-keyed on-disk caching and ``resume`` support.
* :mod:`repro.experiments.artifacts` — serializable
  :class:`~repro.experiments.artifacts.RunArtifact` /
  :class:`~repro.experiments.artifacts.SweepArtifact` results (JSON
  round-trip, per-job metrics, telemetry summaries).
* :mod:`repro.experiments.runner` — the legacy ``run_single`` /
  ``run_comparison`` / ``run_scalability_sweep`` shims.
* :mod:`repro.experiments.figures` — generators for the analytic
  figures that need no cluster simulation.
"""

from repro.experiments.artifacts import RunArtifact, SweepArtifact, dead_cell_artifact
from repro.experiments.backends import (
    CellTimeoutError,
    ExecutionBackend,
    ExecutionPolicy,
    ProcessPoolBackend,
    QueueBackend,
    SerialBackend,
    execute_run,
    make_backend,
    simulate_run,
    simulate_trace,
)
from repro.experiments.queue import CellState, LeaseLostError, WorkQueue
from repro.experiments.config import ExperimentConfig, default_schedulers
from repro.experiments.orchestrator import Runner, RunnerStats, run_experiment
from repro.experiments.registry import (
    SchedulerEntry,
    UnknownSchedulerError,
    available_schedulers,
    capabilities_table,
    create_scheduler,
    paper_schedulers,
    register_scheduler,
)
from repro.experiments.report import build_comparison_report, write_comparison_report
from repro.experiments.runner import (
    ComparisonResult,
    generate_trace,
    run_comparison,
    run_scalability_sweep,
    run_single,
)
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.experiments import figures

__all__ = [
    # declarative API
    "ExperimentSpec",
    "RunSpec",
    "Runner",
    "RunnerStats",
    "run_experiment",
    "RunArtifact",
    "SweepArtifact",
    "dead_cell_artifact",
    # backends
    "CellTimeoutError",
    "ExecutionBackend",
    "ExecutionPolicy",
    "SerialBackend",
    "ProcessPoolBackend",
    "QueueBackend",
    "make_backend",
    # durable work queue
    "WorkQueue",
    "CellState",
    "LeaseLostError",
    "simulate_trace",
    "simulate_run",
    "execute_run",
    # registry
    "SchedulerEntry",
    "UnknownSchedulerError",
    "register_scheduler",
    "create_scheduler",
    "available_schedulers",
    "paper_schedulers",
    "capabilities_table",
    # legacy shims
    "ExperimentConfig",
    "default_schedulers",
    "ComparisonResult",
    "generate_trace",
    "run_comparison",
    "run_scalability_sweep",
    "run_single",
    "build_comparison_report",
    "write_comparison_report",
    "figures",
]
