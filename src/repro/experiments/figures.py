"""Generators for every figure and table of the paper's evaluation.

Each function returns plain data structures (dicts / numpy arrays) so
they can be consumed both by the benchmark harness (which prints them)
and by tests (which assert their *shape* — who wins, which curve is
monotone, where the crossover falls).

These are the *analytic* figures (throughput scaling, convergence,
overheads) that need no cluster simulation.  The simulation-driven
figures (15, 17, 18 and Table 4) are produced by running an
:class:`~repro.experiments.spec.ExperimentSpec` grid through the
:class:`~repro.experiments.orchestrator.Runner` and aggregating the
resulting :class:`~repro.experiments.artifacts.SweepArtifact`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import compare_results, completion_fraction_within
from repro.analysis.stats import significance_table
from repro.baselines.base import SchedulerBase
from repro.cluster.topology import make_longhorn_cluster
from repro.core.ones_scheduler import ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ComparisonResult, run_comparison, run_scalability_sweep
from repro.jobs.convergence import ConvergenceProfile, LossCurveSimulator
from repro.jobs.model_zoo import MODEL_ZOO, get_model
from repro.jobs.throughput import ThroughputModel
from repro.prediction.predictor import PredictorConfig, ProgressPredictor
from repro.scaling.overhead import OverheadModel
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.tasks import build_workload_catalog, catalog_summary, make_job_spec
from repro.workload.trace import TraceConfig, TraceGenerator


# --------------------------------------------------------------------------------------------------
# Fig. 2 — throughput scaling, elastic vs fixed batch size
# --------------------------------------------------------------------------------------------------


def figure2_throughput_scaling(
    worker_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    fixed_batch: int = 256,
    elastic_max_batch: int = 2048,
) -> Dict[str, np.ndarray]:
    """Throughput of ResNet50/CIFAR10 vs worker count, elastic vs fixed batch."""
    catalog = [t for t in build_workload_catalog() if t.dataset == "cifar10" and "resnet18" not in t.model_name]
    template = next(t for t in build_workload_catalog() if t.dataset == "cifar10" and t.model_name == "resnet18")
    # Use a ResNet-style CIFAR model (the paper trains ResNet50 on CIFAR10).
    resnet_cifar = get_model("resnet50").scaled(0.12, "@cifar10")
    topology = make_longhorn_cluster(8)
    model = ThroughputModel(topology)
    fixed = model.scaling_curve(resnet_cifar, worker_counts, global_batch=fixed_batch)
    # Elastic: the local batch stays at ``fixed_batch`` per worker until the
    # global batch hits ``elastic_max_batch``.
    elastic = []
    for count in worker_counts:
        global_batch = min(fixed_batch * count, elastic_max_batch)
        elastic.append(model.throughput_even(resnet_cifar, global_batch, list(range(count))))
    return {
        "workers": np.asarray(list(worker_counts), dtype=int),
        "fixed_batch": fixed,
        "elastic_batch": np.asarray(elastic, dtype=float),
    }


# --------------------------------------------------------------------------------------------------
# Fig. 3 — convergence vs number of GPUs at a fixed local batch size
# --------------------------------------------------------------------------------------------------


def figure3_convergence_vs_gpus(
    gpu_counts: Sequence[int] = (1, 2, 4, 8),
    local_batch: int = 256,
    epochs: int = 200,
) -> Dict[str, np.ndarray]:
    """Accuracy curves with a fixed local batch of 256 and 1/2/4/8 GPUs."""
    template = next(
        t for t in build_workload_catalog() if t.dataset == "cifar10" and t.model_name == "resnet18"
    )
    profile = template.convergence_profile()
    curves: Dict[str, np.ndarray] = {"epochs": np.arange(1, epochs + 1)}
    for count in gpu_counts:
        global_batch = local_batch * count
        curves[f"{count}_gpus"] = profile.accuracy_curve(
            epochs, global_batch, lr_scaled=False
        )
    return curves


# --------------------------------------------------------------------------------------------------
# Fig. 6 — online prediction with uncertainty
# --------------------------------------------------------------------------------------------------


def figure6_prediction_example(
    num_training_jobs: int = 12,
    seed: int = 11,
    backend: str = "gpr",
) -> Dict[str, np.ndarray]:
    """Train the progress predictor on a few completed jobs and predict a new one."""
    config = ExperimentConfig.small(num_gpus=16, num_jobs=num_training_jobs, seed=seed)
    trace = TraceGenerator(config.trace, seed=seed).generate()
    scheduler = ONESScheduler(seed=seed)
    topology = make_longhorn_cluster(config.num_gpus)
    result = ClusterSimulator(topology, scheduler, trace, config=config.simulation).run()
    predictor = ProgressPredictor(PredictorConfig(backend=backend), seed=seed)
    completed = [job for job in result.jobs.values() if job.is_completed]
    if len(completed) < 2:
        raise RuntimeError("not enough completed jobs to fit the predictor")
    holdout = completed[-1]
    for job in completed[:-1]:
        predictor.observe_completion(job)
    curve = predictor.prediction_curve(holdout)
    observed = np.asarray(
        [r.samples_processed for r in holdout.epoch_records], dtype=float
    )
    total = holdout.samples_processed
    curve["observed_samples"] = observed
    curve["observed_progress"] = observed / max(total, 1.0)
    curve["holdout_job"] = np.asarray([len(holdout.epoch_records)], dtype=float)
    return curve


# --------------------------------------------------------------------------------------------------
# Fig. 13 / Fig. 14 — abrupt vs gradual batch-size scaling
# --------------------------------------------------------------------------------------------------


def _cifar_resnet_profile() -> ConvergenceProfile:
    template = next(
        t for t in build_workload_catalog() if t.dataset == "cifar10" and t.model_name == "resnet18"
    )
    return template.convergence_profile()


def figure13_abrupt_scaling(
    initial_batch: int = 256,
    scaled_batch: int = 4096,
    switch_epoch: int = 30,
    total_epochs: int = 70,
) -> Dict[str, np.ndarray]:
    """Loss curves with an abrupt batch jump at ``switch_epoch`` vs a fixed batch."""
    profile = _cifar_resnet_profile()
    scaled = LossCurveSimulator(profile)
    scaled.run_schedule(
        [(initial_batch, switch_epoch), (scaled_batch, total_epochs - switch_epoch)]
    )
    fixed = LossCurveSimulator(profile)
    fixed.run_schedule([(initial_batch, total_epochs)])
    return {
        "epochs": np.arange(1, total_epochs + 1),
        "scaled_batch": np.asarray(scaled.losses),
        "fixed_batch": np.asarray(fixed.losses),
        "switch_epoch": np.asarray([switch_epoch]),
    }


def figure14_gradual_scaling(
    stages: Sequence[Tuple[int, int]] = ((256, 30), (1024, 30), (4096, 30)),
) -> Dict[str, np.ndarray]:
    """Loss curve when the batch size grows gradually (256 → 1024 → 4096)."""
    profile = _cifar_resnet_profile()
    sim = LossCurveSimulator(profile)
    losses = sim.run_schedule(list(stages))
    boundaries = np.cumsum([epochs for _, epochs in stages])
    return {
        "epochs": np.arange(1, len(losses) + 1),
        "loss": losses,
        "stage_boundaries": boundaries,
        "stage_batches": np.asarray([batch for batch, _ in stages]),
    }


# --------------------------------------------------------------------------------------------------
# Table 2 / Table 3
# --------------------------------------------------------------------------------------------------


def table2_workload_catalog() -> Dict[str, int]:
    """Counts of workload templates per task/dataset (must total 50)."""
    return catalog_summary()


def table3_capabilities() -> Sequence[Dict[str, str]]:
    """The scheduler-capability matrix."""
    from repro.baselines.drl import DRLScheduler
    from repro.baselines.optimus import OptimusScheduler
    from repro.baselines.tiresias import TiresiasScheduler

    schedulers: Sequence[SchedulerBase] = (
        ONESScheduler(),
        DRLScheduler(),
        TiresiasScheduler(),
        OptimusScheduler(),
    )
    return [scheduler.describe() for scheduler in schedulers]


# --------------------------------------------------------------------------------------------------
# Fig. 15 / Table 4 — the main comparison
# --------------------------------------------------------------------------------------------------


def figure15_comparison(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Run the main JCT / execution-time / queuing-time comparison.

    Returns the raw :class:`ComparisonResult` plus the per-metric
    summaries and the Table-4 significance reports.
    """
    comparison = run_comparison(config)
    results = list(comparison.results.values())
    ones = comparison.results.get("ONES")
    payload: Dict[str, object] = {
        "comparison": comparison,
        "averages_jct": comparison.averages("jct"),
        "averages_execution": comparison.averages("execution_time"),
        "averages_queuing": comparison.averages("queuing_time"),
        "summaries_jct": compare_results(results, "jct"),
        "summaries_execution": compare_results(results, "execution_time"),
        "summaries_queuing": compare_results(results, "queuing_time"),
        "fraction_within_200s": completion_fraction_within(results, 200.0),
    }
    if ones is not None:
        payload["improvements"] = comparison.improvements("ONES", "jct")
        baselines = [r for name, r in comparison.results.items() if name != "ONES"]
        payload["table4"] = significance_table(ones, baselines)
    return payload


# --------------------------------------------------------------------------------------------------
# Fig. 16 — scaling overhead
# --------------------------------------------------------------------------------------------------


def figure16_overheads(
    model_names: Sequence[str] = (
        "alexnet",
        "resnet18",
        "resnet50",
        "vgg16",
        "googlenet",
        "inceptionv3",
        "lstm",
    ),
) -> Dict[str, Dict[str, float]]:
    """Elastic vs checkpoint-based re-configuration overhead per model."""
    overheads = OverheadModel()
    return overheads.comparison_table({name: get_model(name) for name in model_names})


# --------------------------------------------------------------------------------------------------
# Fig. 17 / Fig. 18 — scalability
# --------------------------------------------------------------------------------------------------


def figure17_18_scalability(
    capacities: Sequence[int] = (16, 32, 48, 64),
    base_config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Average JCT and relative JCT across cluster capacities."""
    sweep = run_scalability_sweep(capacities, base_config)
    average_jct: Dict[str, list] = {}
    relative: Dict[str, list] = {}
    for capacity in capacities:
        comparison = sweep[int(capacity)]
        for name, value in comparison.averages("jct").items():
            average_jct.setdefault(name, []).append(value)
        for name, value in comparison.relative_jct("ONES").items():
            relative.setdefault(name, []).append(value)
    return {
        "capacities": list(int(c) for c in capacities),
        "average_jct": average_jct,
        "relative_jct": relative,
        "sweep": sweep,
    }
