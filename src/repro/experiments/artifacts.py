"""Serializable experiment results: run and sweep artifacts.

A :class:`RunArtifact` pairs the :class:`~repro.experiments.spec.RunSpec`
that produced a simulation with the (job-less, JSON-round-trippable)
:class:`~repro.sim.simulator.SimulationResult` and a telemetry summary
computed while the live ``Job`` objects were still available.  Artifacts
are deliberately *pure data*: two executions of the same spec — in the
same process, in a worker of a process pool, or days apart on different
machines — produce equal artifacts, which is what the backend-parity
tests assert and what makes content-keyed caching sound.

A :class:`SweepArtifact` is the result of an expanded
:class:`~repro.experiments.spec.ExperimentSpec`: one artifact per cell,
in grid order, plus aggregation helpers for the paper's figures (mean
metric per capacity, relative JCT, ...) and a bridge back to the legacy
``ComparisonResult`` shape for existing reports and exporters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Union

from repro.analysis.metrics import mean_metric
from repro.experiments.spec import SCHEMA_VERSION, ExperimentSpec, RunSpec
from repro.sim.simulator import SimulationResult
from repro.sim.telemetry import summarize_run

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from repro.experiments.runner import ComparisonResult

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RunArtifact:
    """The serializable outcome of executing one :class:`RunSpec` cell.

    ``error`` is set only on *dead-cell placeholders* — cells a queue
    sweep gave up on after exhausting their retry budget.  Placeholders
    keep the sweep's grid shape intact (one artifact per cell, in order)
    while making the failure impossible to miss: ``is_dead`` is True,
    the result carries no completed jobs, and the CLI turns any of them
    into a failure summary plus a non-zero exit.  Successful artifacts
    never set the field, so their serialized payloads are byte-identical
    to the historical schema.
    """

    spec: RunSpec
    result: SimulationResult
    telemetry: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    @classmethod
    def from_simulation(cls, spec: RunSpec, result: SimulationResult) -> "RunArtifact":
        """Build an artifact from a freshly-run simulation.

        The telemetry summary is computed *now*, while ``result`` still
        carries its live ``Job`` objects; the stored result is stripped
        down to its serializable core so artifacts from the serial and
        process-pool backends are indistinguishable.
        """
        telemetry = {
            key: (value if isinstance(value, str) else float(value))
            for key, value in summarize_run(result).as_dict().items()
        }
        return cls(
            spec=spec,
            result=SimulationResult.from_dict(result.to_dict()),
            telemetry=telemetry,
        )

    # -- metric views -------------------------------------------------------------------

    @property
    def is_dead(self) -> bool:
        """Whether this is a dead-cell placeholder (no simulation ran)."""
        return self.error is not None

    @property
    def scheduler_name(self) -> str:
        """The scheduler's human-readable name (``SchedulerBase.name``)."""
        return self.result.scheduler_name

    @property
    def average_jct(self) -> float:
        """Mean job completion time over completed jobs."""
        return self.result.average_jct

    def mean(self, metric: str = "jct") -> float:
        """Mean of one per-job metric (``jct`` / ``execution_time`` / ``queuing_time``)."""
        return mean_metric(self.result, metric)

    @property
    def recovery(self) -> Dict[str, float]:
        """Recovery metrics of a faulted cell (empty for zero-fault cells).

        Keys come from :meth:`repro.faults.runtime.FaultRuntime.metrics`:
        ``goodput``, ``lost_gpu_seconds``, ``evictions``, ``restarts``,
        ``downtime_gpu_seconds``, ...
        """
        return dict(self.result.faults)

    def to_result(self) -> SimulationResult:
        """The underlying (job-less) simulation result."""
        return self.result

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`).

        The ``error`` key appears only on dead-cell placeholders, so
        payloads of successful runs are byte-identical to the historical
        schema (and to every cached artifact on disk).
        """
        payload: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "cell_key": self.spec.cell_key(),
            "spec": self.spec.to_dict(),
            "result": self.result.to_dict(),
            "telemetry": dict(self.telemetry),
        }
        if self.error is not None:
            payload["error"] = str(self.error)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunArtifact":
        """Rebuild a :class:`RunArtifact` from :meth:`to_dict` output."""
        error = payload.get("error")
        return cls(
            spec=RunSpec.from_dict(payload["spec"]),
            result=SimulationResult.from_dict(payload["result"]),
            telemetry=dict(payload.get("telemetry", {})),
            error=None if error is None else str(error),
        )

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        """Deserialize from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def dead_cell_artifact(spec: RunSpec, error: str, attempts: int = 0) -> RunArtifact:
    """Placeholder artifact for a cell the queue gave up on.

    Carries the spec (so the sweep keeps its grid shape and cell lookup
    keeps working), an empty result under the spec's scheduler name, and
    the final error.  Aggregations skip dead cells; the CLI reports them
    and exits non-zero.
    """
    result = SimulationResult(
        scheduler_name=str(spec.scheduler),
        num_gpus=int(spec.num_gpus),
        completed={},
        incomplete=[],
        makespan=0.0,
        gpu_time_busy=0.0,
        gpu_time_total=0.0,
        num_reconfigurations=0,
        events_processed=0,
    )
    message = str(error)
    if attempts:
        message = f"{message} (after {int(attempts)} failed attempts)"
    return RunArtifact(spec=spec, result=result, telemetry={}, error=message)


@dataclass
class SweepArtifact:
    """All cell artifacts of one expanded :class:`ExperimentSpec` grid."""

    spec: ExperimentSpec
    runs: List[RunArtifact] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunArtifact]:
        return iter(self.runs)

    def dead_runs(self) -> List[RunArtifact]:
        """The dead-cell placeholders of this sweep (empty when all ran)."""
        return [run for run in self.runs if run is not None and run.is_dead]

    # -- cell lookup --------------------------------------------------------------------

    def _index(self) -> Dict[tuple, RunArtifact]:
        """One O(runs) pass building ``(scheduler, capacity, seed, trace, faults) -> artifact``.

        Built per call (the ``runs`` list is mutable) so aggregations over
        large grids stay linear instead of scanning once per cell.  The
        final key component is the cell's
        :class:`~repro.faults.config.FaultConfig` (``None`` for the
        zero-fault grid), so faulted cells and their clean twins never
        collide.
        """
        return {
            (
                run.spec.scheduler,
                run.spec.num_gpus,
                run.spec.seed,
                run.spec.trace,
                run.spec.faults,
            ): run
            for run in self.runs
        }

    def get(
        self,
        scheduler: str,
        capacity: Optional[int] = None,
        seed: Optional[int] = None,
        trace_index: int = 0,
        fault_index: int = 0,
    ) -> RunArtifact:
        """The artifact of one cell (defaults: first capacity / seed / fault)."""
        capacity = int(capacity if capacity is not None else self.spec.capacities[0])
        seed = int(seed if seed is not None else self.spec.seeds[0])
        trace = self.spec.traces[trace_index]
        fault = self.spec.faults[fault_index]
        run = self._index().get((scheduler, capacity, seed, trace, fault))
        if run is None:
            raise KeyError(
                f"no cell for scheduler={scheduler!r} capacity={capacity} "
                f"seed={seed} trace_index={trace_index} fault_index={fault_index}"
            )
        return run

    def results_for(
        self,
        capacity: int,
        seed: Optional[int] = None,
        trace_index: int = 0,
        fault_index: int = 0,
    ) -> Dict[str, SimulationResult]:
        """Per-scheduler results of one (capacity, seed, trace, fault) slice."""
        index = self._index()
        capacity = int(capacity)
        seed = int(seed if seed is not None else self.spec.seeds[0])
        trace = self.spec.traces[trace_index]
        fault = self.spec.faults[fault_index]
        return {
            name: index[(name, capacity, seed, trace, fault)].to_result()
            for name in self.spec.schedulers
        }

    # -- aggregation (Fig. 17/18 views) -------------------------------------------------

    def mean_metric_table(
        self, metric: str = "jct", fault_index: int = 0
    ) -> Dict[str, Dict[int, float]]:
        """``scheduler -> capacity -> mean(metric)`` averaged over seeds and traces.

        One fault-axis slice at a time (default: the first entry, which
        is the zero-fault grid in every built-in construction) so a
        robustness sweep never silently mixes clean and faulted runs
        into one Fig. 17 table.
        """
        fault = self.spec.faults[fault_index]
        table: Dict[str, Dict[int, List[float]]] = {
            name: {capacity: [] for capacity in self.spec.capacities}
            for name in self.spec.schedulers
        }
        for run in self.runs:
            if run.spec.faults != fault or run.is_dead:
                continue
            table[run.spec.scheduler][run.spec.num_gpus].append(run.mean(metric))
        return {
            name: {
                capacity: float(sum(values) / len(values))
                for capacity, values in by_capacity.items()
                if values
            }
            for name, by_capacity in table.items()
        }

    def relative_to(
        self, reference: str = "ONES", metric: str = "jct", fault_index: int = 0
    ) -> Dict[str, Dict[int, float]]:
        """``scheduler -> capacity -> metric / reference-metric`` (Fig. 18 shape).

        The ratio is taken per (trace, seed, capacity) slice — i.e. against
        the reference run that saw exactly the same workload (and the
        same fault weather, selected by ``fault_index``) — and then
        averaged over seeds and traces.
        """
        if reference not in self.spec.schedulers:
            raise KeyError(f"{reference!r} is not part of this sweep")
        index = self._index()
        fault = self.spec.faults[fault_index]
        ratios: Dict[str, Dict[int, List[float]]] = {
            name: {capacity: [] for capacity in self.spec.capacities}
            for name in self.spec.schedulers
        }
        for trace in self.spec.traces:
            for capacity in self.spec.capacities:
                for seed in self.spec.seeds:
                    ref = index[(reference, capacity, seed, trace, fault)].mean(metric)
                    if not ref > 0:
                        raise ValueError(
                            f"reference mean {metric} must be positive "
                            f"(capacity={capacity}, seed={seed})"
                        )
                    for name in self.spec.schedulers:
                        value = index[(name, capacity, seed, trace, fault)].mean(metric)
                        ratios[name][capacity].append(value / ref)
        return {
            name: {
                capacity: float(sum(values) / len(values))
                for capacity, values in by_capacity.items()
                if values
            }
            for name, by_capacity in ratios.items()
        }

    # -- recovery aggregation (robustness-benchmark views) ------------------------------

    def fault_degradation(
        self, metric: str = "jct", fault_index: int = 1
    ) -> Dict[str, float]:
        """``scheduler -> mean(metric under faults / metric of zero-fault twin)``.

        The JCT-degradation headline of a robustness benchmark: 1.0 means
        the scheduler fully absorbed the fault plan, 1.5 means average
        JCT grew 50% under it.  Each faulted cell is compared against the
        cell that differs *only* in its fault config (same scheduler,
        capacity, seed and trace), then ratios are averaged.  Requires a
        sweep whose fault axis contains both the zero-fault entry and the
        selected faulted entry (the built-in constructors' ``faults=``
        argument produces exactly that).
        """
        fault = self.spec.faults[fault_index]
        if fault is None:
            raise ValueError("fault_index selects the zero-fault axis entry")
        if None not in self.spec.faults:
            raise ValueError("sweep has no zero-fault twin cells to compare against")
        index = self._index()
        ratios: Dict[str, List[float]] = {name: [] for name in self.spec.schedulers}
        for trace in self.spec.traces:
            for capacity in self.spec.capacities:
                for seed in self.spec.seeds:
                    for name in self.spec.schedulers:
                        clean = index[(name, capacity, seed, trace, None)].mean(metric)
                        faulted = index[(name, capacity, seed, trace, fault)].mean(metric)
                        if clean > 0:
                            ratios[name].append(faulted / clean)
        return {
            name: float(sum(values) / len(values))
            for name, values in ratios.items()
            if values
        }

    def recovery_table(self, fault_index: int = 1) -> List[Dict[str, object]]:
        """Per-cell recovery metrics of one faulted slice (report rows)."""
        fault = self.spec.faults[fault_index]
        if fault is None:
            raise ValueError("fault_index selects the zero-fault axis entry")
        rows: List[Dict[str, object]] = []
        for run in self.runs:
            if run.spec.faults != fault:
                continue
            recovery = run.recovery
            rows.append(
                {
                    "cell": run.spec.label(),
                    "average_jct": run.mean("jct"),
                    "goodput": recovery.get("goodput", float("nan")),
                    "evictions": int(recovery.get("evictions", 0)),
                    "restarts": int(recovery.get("restarts", 0)),
                    "lost_gpu_seconds": recovery.get("lost_gpu_seconds", 0.0),
                    "downtime_gpu_seconds": recovery.get("downtime_gpu_seconds", 0.0),
                    "incomplete": len(run.result.incomplete),
                }
            )
        return rows

    # -- legacy bridge ------------------------------------------------------------------

    def to_comparisons(self, fault_index: int = 0) -> Dict[int, "ComparisonResult"]:
        """Per-capacity legacy ``ComparisonResult`` objects (report/export bridge).

        Only defined for single-seed single-trace sweeps — the legacy shape
        has no room for a seed axis.  The shared trace is regenerated from
        its configuration (cheap: no simulation is run).
        """
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import ComparisonResult, generate_trace

        if len(self.spec.seeds) != 1 or len(self.spec.traces) != 1:
            raise ValueError(
                "to_comparisons() requires a single-seed, single-trace sweep; "
                f"got {len(self.spec.seeds)} seeds and {len(self.spec.traces)} traces"
            )
        seed = self.spec.seeds[0]
        trace_config = self.spec.traces[0]
        # Robustness grids carry several fault-axis entries; the legacy
        # shape has no fault dimension, so bridge one slice at a time.
        fault = self.spec.faults[fault_index]
        index = self._index()
        comparisons: Dict[int, ComparisonResult] = {}
        shared_trace = None  # same for every capacity: depends on trace+seed only
        for capacity in self.spec.capacities:
            config = ExperimentConfig(
                num_gpus=capacity,
                trace=trace_config,
                simulation=self.spec._cell_simulation(fault),
                seed=seed,
            )
            if shared_trace is None:
                shared_trace = generate_trace(config)
            comparison = ComparisonResult(config=config, trace=list(shared_trace))
            for name in self.spec.schedulers:
                artifact = index[(name, capacity, seed, trace_config, fault)]
                comparison.results[name] = artifact.to_result()
                comparison.artifacts[name] = artifact
            comparisons[capacity] = comparison
        return comparisons

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {
            "schema": SCHEMA_VERSION,
            "sweep_key": self.spec.sweep_key(),
            "spec": self.spec.to_dict(),
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepArtifact":
        """Rebuild a :class:`SweepArtifact` from :meth:`to_dict` output."""
        return cls(
            spec=ExperimentSpec.from_dict(payload["spec"]),
            runs=[RunArtifact.from_dict(run) for run in payload["runs"]],
        )

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepArtifact":
        """Deserialize from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: PathLike) -> Path:
        """Write the artifact to ``path`` as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "SweepArtifact":
        """Read an artifact previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())
