"""Queue worker: claim cells, heartbeat the lease, publish artifacts.

Run any number of these against one queue directory — on the same host
or on several hosts sharing a filesystem::

    python -m repro.experiments.worker results/queue --exit-when-done

(also exposed as ``repro-ones worker``).  Each worker loops: expire
stale leases left by dead peers, claim the next PENDING cell under a TTL
lease, execute it through the same pure-spec path every other backend
uses (so artifacts are bit-identical to serial execution), renew the
lease from a heartbeat thread while the cell runs, then publish the
artifact (COMPLETED) or record the failure (FAILED → backoff retry →
DEAD).  A worker needs no coordination beyond the queue directory: kill
it at any point — ``kill -9`` included — and the cell it was holding
returns to PENDING once the lease TTL passes.

``--hold-s`` inserts a sleep between claiming and executing.  It exists
for chaos drills (CI kills a worker *mid-cell* deterministically by
holding it open) and doubles as a stand-in for slow cells when sizing
lease TTLs.
"""

from __future__ import annotations

import argparse
import threading
import time
import uuid
from typing import Optional, Sequence

from repro.experiments.backends import execute_run, execute_run_in_subprocess
from repro.experiments.queue import LeaseLostError, WorkQueue
from repro.obs.trace import TraceRecorder, active_tracer, install_tracer, uninstall_tracer


class _Heartbeat(threading.Thread):
    """Renews one lease on a fixed cadence until stopped (or lost)."""

    def __init__(self, queue: WorkQueue, cell: str, worker: str, interval: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{cell[:8]}")
        self._queue = queue
        self._cell = cell
        self._worker = worker
        self._interval = interval
        # NB: not named _stop — threading.Thread has an internal _stop().
        self._halt = threading.Event()
        self.lost = False

    def run(self) -> None:  # pragma: no cover - timing-dependent thread body
        # Pace renewals off the monotonic clock: an NTP step or slew of
        # the wall clock can neither stall the cadence (risking a lease
        # expiry under a healthy worker) nor burst it.  Only the deadline
        # *written into the lease* is wall-clock — that is the value
        # other hosts compare against, with the queue's skew margin.
        next_beat = time.monotonic() + self._interval
        while True:
            delay = next_beat - time.monotonic()
            if self._halt.wait(max(delay, 0.0)):
                return
            # If a renewal overslept (GC pause, slow filesystem), beat
            # again immediately instead of compounding the drift.
            next_beat = max(next_beat + self._interval, time.monotonic())
            try:
                self._queue.heartbeat(self._cell, self._worker)
            except LeaseLostError:
                self.lost = True
                return
            except OSError:
                # Transient filesystem hiccup: keep the cadence and let
                # the next beat retry — the TTL gives us headroom.
                continue

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def run_worker(
    queue_dir: str,
    worker_id: Optional[str] = None,
    lease_ttl: Optional[float] = None,
    poll_interval: float = 0.5,
    exit_when_done: bool = False,
    max_cells: Optional[int] = None,
    hold_s: float = 0.0,
    verbose: bool = True,
    skew_margin: Optional[float] = None,
    trace_out: Optional[str] = None,
) -> int:
    """The worker loop; returns the number of cells this worker settled.

    ``exit_when_done`` returns once every cell in the queue is terminal
    (COMPLETED or DEAD) — including cells other workers are still
    holding, which this worker waits out rather than abandons.  Without
    it the worker polls forever, picking up cells as they are enqueued.

    ``trace_out`` installs a trace recorder for this worker's lifetime
    and exports it (JSONL) on exit: every queue lease transition —
    claim, heartbeat, complete, fail, expire, dead — plus the worker's
    own execute spans land in one file.
    """
    installed_here = False
    if trace_out is not None and active_tracer() is None:
        install_tracer(TraceRecorder())
        installed_here = True
    queue = WorkQueue(queue_dir, lease_ttl=lease_ttl, skew_margin=skew_margin)
    worker = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
    heartbeat_interval = max(queue.lease_ttl / 3.0, 0.05)
    settled = 0

    def say(message: str) -> None:
        if verbose:
            print(f"[{worker}] {message}", flush=True)

    say(f"attached to {queue.path} (lease TTL {queue.lease_ttl:.1f}s, "
        f"policy retries={queue.policy.max_retries} "
        f"backoff={queue.policy.retry_backoff_s:.1f}s)")
    try:
        while True:
            queue.expire_leases()
            claim = queue.claim(worker)
            if claim is None:
                status = queue.status()
                if exit_when_done and status.terminal:
                    say(f"queue drained: {status.completed} completed, "
                        f"{status.dead} dead")
                    return settled
                if max_cells is not None and settled >= max_cells:
                    return settled
                time.sleep(poll_interval)
                continue
            key, spec = claim
            say(f"claimed {key} ({spec.label()}, attempt {queue.attempts(key) + 1})")
            if hold_s > 0:
                time.sleep(hold_s)
            heartbeat = _Heartbeat(queue, key, worker, heartbeat_interval)
            heartbeat.start()
            tracer = active_tracer()
            span = None
            if tracer is not None:
                span = tracer.begin_span(
                    "execute", "worker", time.time(),
                    cell=key, label=spec.label(), worker=worker,
                )
            try:
                if queue.policy.timeout_s is not None:
                    artifact = execute_run_in_subprocess(spec, queue.policy.timeout_s)
                else:
                    artifact = execute_run(spec)
            except Exception as exc:  # noqa: BLE001 - recorded in the durable log
                heartbeat.stop()
                state = queue.fail(key, worker, f"{type(exc).__name__}: {exc}")
                say(f"cell {key} failed ({exc}); now {state.value}")
                if span is not None:
                    span["attrs"]["outcome"] = state.value
            else:
                heartbeat.stop()
                queue.complete(key, worker, artifact)
                say(f"completed {key}")
                if span is not None:
                    span["attrs"]["outcome"] = "completed"
            if span is not None:
                tracer.end_span(span, t=time.time())
            settled += 1
            if max_cells is not None and settled >= max_cells:
                return settled
    finally:
        if trace_out is not None:
            tracer = active_tracer()
            if tracer is not None:
                count = tracer.export_jsonl(trace_out)
                say(f"wrote {count} trace records to {trace_out}")
            if installed_here:
                uninstall_tracer()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.worker",
        description="Claim and execute experiment cells from a durable queue directory.",
    )
    parser.add_argument("queue_dir", help="the queue directory (created by the queue backend)")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker name for the log (default: random)")
    parser.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                        help="override the queue's lease TTL for this worker")
    parser.add_argument("--skew-margin", type=float, default=None, metavar="SECONDS",
                        help="override the queue's clock-skew safety margin on "
                             "lease-expiry checks")
    parser.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="idle poll interval when no cell is claimable")
    parser.add_argument("--exit-when-done", action="store_true",
                        help="exit once every cell is COMPLETED or DEAD "
                             "(default: poll forever)")
    parser.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="exit after settling N cells (ephemeral-worker mode)")
    parser.add_argument("--hold-s", type=float, default=0.0, metavar="SECONDS",
                        help="chaos hook: sleep this long between claiming and "
                             "executing (gives kill-mid-cell drills a window)")
    parser.add_argument("--quiet", action="store_true", help="suppress progress lines")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="record queue/worker trace events and write them "
                             "as JSONL on exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    run_worker(
        args.queue_dir,
        worker_id=args.worker_id,
        lease_ttl=args.ttl,
        poll_interval=args.poll,
        exit_when_done=args.exit_when_done,
        max_cells=args.max_cells,
        hold_s=args.hold_s,
        verbose=not args.quiet,
        skew_margin=args.skew_margin,
        trace_out=args.trace_out,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
