"""Durable, file-backed work queue for distributed experiment sweeps.

The Runner already treats an experiment cell as pure, content-hashed
data: the spec fully determines the artifact, artifacts are cached by
cell key, and a cell can be re-executed anywhere bit-identically.  This
module supplies the missing robustness layer — an explicit cell
lifecycle with crash-safe claims — so a grid can be fanned out over any
number of worker *processes* (same host, or several hosts over a shared
filesystem) with no server and no broker.

Lifecycle (the queuectl job-lifecycle model)::

    PENDING --claim--> PROCESSING --complete--> COMPLETED
       ^                   |   |
       |                   |   +--fail----> FAILED (awaiting backoff retry)
       +---lease expired---+                  |
       |                                      |
       +------------retry---------------------+
                         ...after max_retries+1 attempts: DEAD

Everything lives in one *queue directory*:

``log.jsonl``
    Append-only work log, one JSON record per line (``enqueued`` /
    ``claimed`` / ``completed`` / ``failed`` / ``expired`` / ``dead``).
    The log is the durable source of truth for attempt counts and retry
    backoff; every :class:`WorkQueue` instance tails it incrementally,
    so a fresh process resumes exactly where the queue stopped.
``queue.json``
    Queue-wide configuration (lease TTL + retry policy), written by
    whoever creates the queue and shared by all workers.
``cells/cell-<key>.json``
    The enqueued :class:`~repro.experiments.spec.RunSpec` payloads,
    keyed by content hash — enqueueing is idempotent by construction.
``leases/<key>.json``
    One live lease per PROCESSING cell.  A lease is *claimed* with an
    exclusive ``O_CREAT | O_EXCL`` create (atomic on POSIX, including
    NFS), renewed by heartbeat rewrites, and carries a wall-clock
    deadline: a worker that dies simply stops renewing, and any other
    process may expire the stale lease back to PENDING.
``results/cell-<key>.json``
    Completed artifacts in the Runner's cell-cache format (written
    atomically via rename).  A partially-written artifact cannot parse
    or carries a mismatching spec, so it is detected and re-run — the
    same content check the Runner's resume path applies.
``dead/<key>.json``
    Cells that exhausted their retry budget, with the final error.
    Dead cells are reported (placeholder artifacts, non-zero CLI exit),
    never silently dropped.

Concurrency model: every mutation is either an atomic filesystem
operation (exclusive create, rename) or an append of one short line to
the log, so no locks are needed and any number of workers — plus the
waiting Runner — can operate on the same queue directory concurrently.
"""

from __future__ import annotations

import enum
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.experiments.artifacts import RunArtifact
from repro.experiments.backends import ExecutionPolicy
from repro.experiments.spec import RunSpec
from repro.obs.trace import active_tracer

PathLike = Union[str, Path]


class CellState(str, enum.Enum):
    """Lifecycle state of one cell in the queue."""

    PENDING = "pending"
    PROCESSING = "processing"
    COMPLETED = "completed"
    FAILED = "failed"  # failed at least once, awaiting its backoff retry
    DEAD = "dead"


class LeaseLostError(RuntimeError):
    """The worker's lease was expired and taken over by someone else."""


@dataclass(frozen=True)
class Lease:
    """One live claim on a cell: who holds it and until when."""

    cell: str
    worker: str
    deadline: float
    attempt: int

    def expired(self, now: float, margin: float = 0.0) -> bool:
        """Whether the lease is stale at ``now``, with ``margin`` slack.

        ``margin`` is the queue's clock-skew safety margin: deadlines are
        wall-clock timestamps compared across hosts (and across NTP
        steps), so expiry only triggers once the lease is *at least*
        ``margin`` seconds past its deadline.  A healthy worker whose
        clock disagrees with the observer's by less than the margin can
        never have its lease stolen mid-cell.
        """
        return now >= self.deadline + margin

    def to_dict(self) -> Dict[str, object]:
        return {
            "cell": self.cell,
            "worker": self.worker,
            "deadline": float(self.deadline),
            "attempt": int(self.attempt),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Lease":
        return cls(
            cell=str(payload["cell"]),
            worker=str(payload["worker"]),
            deadline=float(payload["deadline"]),
            attempt=int(payload["attempt"]),
        )


@dataclass
class QueueStatus:
    """Per-state cell counts plus the attempt bookkeeping of one queue."""

    pending: int = 0
    processing: int = 0
    completed: int = 0
    failed: int = 0
    dead: int = 0
    claims: int = 0
    expired_leases: int = 0

    @property
    def total(self) -> int:
        return self.pending + self.processing + self.completed + self.failed + self.dead

    @property
    def terminal(self) -> bool:
        """Whether every cell has reached COMPLETED or DEAD."""
        return self.total > 0 and self.completed + self.dead == self.total

    def as_dict(self) -> Dict[str, int]:
        return {
            "pending": self.pending,
            "processing": self.processing,
            "completed": self.completed,
            "failed": self.failed,
            "dead": self.dead,
            "claims": self.claims,
            "expired_leases": self.expired_leases,
        }


@dataclass
class _CellRecord:
    """In-memory bookkeeping of one cell, rebuilt from the log tail."""

    key: str
    attempts: int = 0  # failures + expiries charged so far
    not_before: float = 0.0  # backoff gate for the next claim
    completed: bool = False
    dead: bool = False
    error: Optional[str] = None
    claims: int = 0
    expiries: int = 0
    last_event_ts: float = 0.0  # wall-clock ts of the newest log record


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + rename)."""
    tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class WorkQueue:
    """Crash-safe claim/heartbeat/complete semantics over a queue directory.

    Instances are cheap, stateless views over the shared directory: all
    durable state lives in the log, the lease files and the result
    files, so any number of :class:`WorkQueue` objects (in any number of
    processes) can point at the same directory.  ``lease_ttl``,
    ``policy`` and ``skew_margin`` default to the values stored in
    ``queue.json`` when the queue already exists; explicit arguments
    override them for this instance only.

    Lease deadlines are wall-clock timestamps compared across hosts, so
    every expiry decision adds ``skew_margin`` seconds of slack (default
    :data:`DEFAULT_SKEW_MARGIN`): an NTP step or cross-host offset
    smaller than the margin can neither steal a healthy worker's lease
    (duplicate execution) nor matter to failover latency.
    """

    #: Default clock-skew safety margin (seconds) added to every expiry
    #: check.  Covers typical NTP slews/steps between hosts sharing the
    #: queue directory; raise it via ``skew_margin`` for fleets with
    #: looser clock discipline (it only delays failover, never safety).
    DEFAULT_SKEW_MARGIN = 1.0

    def __init__(
        self,
        path: PathLike,
        lease_ttl: Optional[float] = None,
        policy: Optional[ExecutionPolicy] = None,
        skew_margin: Optional[float] = None,
    ) -> None:
        self.path = Path(path)
        for sub in ("cells", "leases", "results", "dead", "expired"):
            (self.path / sub).mkdir(parents=True, exist_ok=True)
        stored = self._load_config()
        if stored is not None:
            ttl, stored_policy, stored_margin = stored
            self.lease_ttl = float(lease_ttl if lease_ttl is not None else ttl)
            self.policy = policy if policy is not None else stored_policy
            self.skew_margin = float(
                skew_margin if skew_margin is not None else stored_margin
            )
        else:
            self.lease_ttl = float(lease_ttl if lease_ttl is not None else 30.0)
            self.policy = policy if policy is not None else ExecutionPolicy()
            self.skew_margin = float(
                skew_margin if skew_margin is not None else self.DEFAULT_SKEW_MARGIN
            )
            self._write_config()
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if self.skew_margin < 0:
            raise ValueError("skew_margin must be >= 0")
        self._log_offset = 0
        self._cells: Dict[str, _CellRecord] = {}
        self._order: List[str] = []  # enqueue order (== spec order)

    # -- paths --------------------------------------------------------------------------

    @property
    def log_path(self) -> Path:
        return self.path / "log.jsonl"

    def _cell_path(self, key: str) -> Path:
        return self.path / "cells" / f"cell-{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.path / "leases" / f"{key}.json"

    def result_path(self, key: str) -> Path:
        """Where the cell's artifact lands (Runner cell-cache format)."""
        return self.path / "results" / f"cell-{key}.json"

    def _dead_path(self, key: str) -> Path:
        return self.path / "dead" / f"{key}.json"

    # -- queue config -------------------------------------------------------------------

    def _load_config(self) -> Optional[Tuple[float, ExecutionPolicy, float]]:
        config_path = self.path / "queue.json"
        if not config_path.exists():
            return None
        payload = json.loads(config_path.read_text())
        return (
            float(payload["lease_ttl"]),
            ExecutionPolicy.from_dict(payload["policy"]),
            # Queues created before the margin existed behave as written
            # (no slack), not as the new default would dictate.
            float(payload.get("skew_margin", 0.0)),
        )

    def _write_config(self) -> None:
        _atomic_write(
            self.path / "queue.json",
            json.dumps(
                {
                    "lease_ttl": self.lease_ttl,
                    "policy": self.policy.to_dict(),
                    "skew_margin": self.skew_margin,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )

    # -- the work log -------------------------------------------------------------------

    def _append(self, event: str, key: str, **extra: object) -> None:
        record = {"event": event, "cell": key, "ts": time.time(), **extra}
        tracer = active_tracer()
        if tracer is not None:
            # Mirror every durable lease transition (enqueued / claimed /
            # completed / failed / expired / dead) into the trace.  These
            # carry wall-clock timestamps, so they are root-level records
            # outside the virtual-time content-comparison contract.
            tracer.event(
                event,
                "queue",
                record["ts"],
                parent=None,
                cell=key,
                **{
                    name: value
                    for name, value in extra.items()
                    if isinstance(value, (str, int, float, bool))
                },
            )
        line = json.dumps(record, sort_keys=True) + "\n"
        # One short O_APPEND write per record: concurrent appenders on a
        # POSIX filesystem interleave whole lines, never partial ones.
        with open(self.log_path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        # Pick our own record up through the normal tail path (along with
        # anything a concurrent writer appended), so it is applied once.
        self._refresh()

    def _refresh(self) -> None:
        """Tail the shared log: apply records appended since the last read."""
        if not self.log_path.exists():
            return
        with open(self.log_path, "r") as handle:
            handle.seek(self._log_offset)
            chunk = handle.read()
            self._log_offset = handle.tell()
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line of a crashed writer; skip
            self._apply(record)

    def _apply(self, record: Mapping[str, object]) -> None:
        key = str(record.get("cell", ""))
        if not key:
            return
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _CellRecord(key=key)
            self._order.append(key)
        try:
            cell.last_event_ts = max(cell.last_event_ts, float(record.get("ts", 0.0)))
        except (TypeError, ValueError):
            pass
        event = record.get("event")
        if event == "claimed":
            cell.claims += 1
        elif event == "completed":
            cell.completed = True
        elif event == "failed":
            cell.attempts = max(cell.attempts, int(record.get("attempt", cell.attempts + 1)))
            cell.not_before = max(cell.not_before, float(record.get("not_before", 0.0)))
            cell.error = str(record.get("error", ""))
        elif event == "expired":
            cell.expiries += 1
            cell.attempts = max(cell.attempts, int(record.get("attempt", cell.attempts + 1)))
        elif event == "dead":
            cell.dead = True
            cell.error = str(record.get("error", cell.error or ""))

    # -- enqueue ------------------------------------------------------------------------

    def enqueue(self, spec: RunSpec) -> Tuple[str, bool]:
        """Add one cell; idempotent by content key.

        Returns ``(cell_key, newly_enqueued)``.  Re-enqueueing a cell
        that is already in the queue (in any state) is a no-op, which is
        what makes a fresh ``Runner.run`` against an existing queue
        directory resume instead of duplicating work.
        """
        self._refresh()
        key = spec.cell_key()
        path = self._cell_path(key)
        if key in self._cells or path.exists():
            return key, False
        _atomic_write(path, json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n")
        self._append("enqueued", key, label=spec.label())
        return key, True

    def enqueue_all(self, specs: Iterable[RunSpec]) -> List[str]:
        """Enqueue a batch (idempotently); returns the cell keys in order."""
        return [self.enqueue(spec)[0] for spec in specs]

    def spec(self, key: str) -> RunSpec:
        """Load the enqueued spec of one cell."""
        return RunSpec.from_dict(json.loads(self._cell_path(key).read_text()))

    # -- claims / leases ----------------------------------------------------------------

    def _read_lease(self, key: str) -> Optional[Lease]:
        try:
            return Lease.from_dict(json.loads(self._lease_path(key).read_text()))
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None

    def _retire_lease(self, lease: Lease, now: float) -> bool:
        """Move one expired lease aside; returns True if *we* retired it.

        The rename is the arbitration point: exactly one process wins it,
        appends the ``expired`` record, and charges the attempt — then
        everyone competes again on the exclusive create of a new lease.
        """
        tombstone = self.path / "expired" / f"{lease.cell}.{uuid.uuid4().hex}.json"
        try:
            os.replace(self._lease_path(lease.cell), tombstone)
        except OSError:
            return False  # someone else already retired it
        cell = self._cells.get(lease.cell)
        attempt = (cell.attempts if cell else 0) + 1
        self._append(
            "expired", lease.cell, worker=lease.worker, attempt=attempt, deadline=lease.deadline
        )
        if attempt > int(self.policy.max_retries):
            self._mark_dead(
                lease.cell,
                f"lease of worker {lease.worker!r} expired on attempt {attempt} "
                f"(retry budget {self.policy.max_retries} spent)",
            )
        return True

    def expire_leases(self, now: Optional[float] = None) -> int:
        """Return every stale lease to PENDING (or DEAD); returns the count.

        Safe to call from any process at any time — workers do it before
        claiming, and the waiting Runner does it while polling, so
        recovery does not depend on a surviving worker.
        """
        now = time.time() if now is None else now
        self._refresh()
        retired = 0
        for path in sorted((self.path / "leases").glob("*.json")):
            lease = self._read_lease(path.stem)
            if (
                lease is not None
                and lease.expired(now, self.skew_margin)
                and self._retire_lease(lease, now)
            ):
                retired += 1
        return retired

    def claim(self, worker: str, now: Optional[float] = None) -> Optional[Tuple[str, RunSpec]]:
        """Claim the next claimable cell for ``worker`` (or ``None``).

        Cells are offered in enqueue order; a cell inside its backoff
        window is skipped until ``not_before`` passes.  The claim itself
        is an exclusive lease-file create, so two workers scanning the
        same queue can never both win one cell.
        """
        now = time.time() if now is None else now
        self._refresh()
        for key in self._order:
            cell = self._cells[key]
            if cell.completed or cell.dead:
                continue
            if cell.not_before > now:
                continue
            lease_path = self._lease_path(key)
            existing = self._read_lease(key)
            if existing is not None:
                if not existing.expired(now, self.skew_margin):
                    continue
                self._retire_lease(existing, now)
                if self._cells[key].dead:
                    continue
            lease = Lease(cell=key, worker=worker, deadline=now + self.lease_ttl,
                          attempt=cell.attempts + 1)
            try:
                handle = os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # lost the race for this cell; try the next one
            with os.fdopen(handle, "w") as fh:
                fh.write(json.dumps(lease.to_dict(), sort_keys=True) + "\n")
            self._append("claimed", key, worker=worker, attempt=lease.attempt)
            return key, self.spec(key)
        return None

    def heartbeat(self, key: str, worker: str, now: Optional[float] = None) -> float:
        """Renew ``worker``'s lease on ``key``; returns the new deadline.

        Raises :class:`LeaseLostError` if the lease expired and was taken
        over (the worker must abandon the cell — its result would still
        be correct, but the attempt is no longer accounted to it).
        """
        now = time.time() if now is None else now
        lease = self._read_lease(key)
        if lease is None or lease.worker != worker:
            raise LeaseLostError(f"worker {worker!r} no longer holds the lease on {key}")
        renewed = Lease(cell=key, worker=worker, deadline=now + self.lease_ttl,
                        attempt=lease.attempt)
        _atomic_write(self._lease_path(key), json.dumps(renewed.to_dict(), sort_keys=True) + "\n")
        tracer = active_tracer()
        if tracer is not None:
            # Heartbeats renew the lease file without a log record, so
            # they need their own trace event (emitted from the worker's
            # heartbeat thread: parent=None keeps them root-level).
            tracer.event(
                "heartbeat",
                "queue",
                now,
                parent=None,
                cell=key,
                worker=worker,
                deadline=renewed.deadline,
            )
        return renewed.deadline

    def _release_lease(self, key: str, worker: str) -> None:
        lease = self._read_lease(key)
        if lease is not None and lease.worker == worker:
            try:
                os.unlink(self._lease_path(key))
            except OSError:
                pass

    # -- completion / failure -----------------------------------------------------------

    def complete(self, key: str, worker: str, artifact: RunArtifact) -> None:
        """Publish a finished cell: artifact to ``results/``, COMPLETED in the log.

        The artifact write is atomic and its content is a pure function
        of the spec, so even a worker whose lease was lost mid-run can
        publish safely — the takeover worker would write the identical
        bytes.
        """
        _atomic_write(self.result_path(key), artifact.to_json() + "\n")
        self._append("completed", key, worker=worker)
        self._release_lease(key, worker)

    def fail(
        self,
        key: str,
        worker: str,
        error: str,
        now: Optional[float] = None,
    ) -> CellState:
        """Record a failed attempt; schedules a backoff retry or marks DEAD.

        The exponential backoff (``retry_backoff_s * 2**(attempt-1)``) is
        written into the log record, so every process — and a post-mortem
        reader — sees when the cell becomes claimable again.
        """
        now = time.time() if now is None else now
        self._refresh()
        cell = self._cells.get(key) or _CellRecord(key=key)
        attempt = cell.attempts + 1
        if attempt > int(self.policy.max_retries):
            self._append("failed", key, worker=worker, attempt=attempt, error=str(error),
                         not_before=now)
            self._mark_dead(key, str(error))
            self._release_lease(key, worker)
            return CellState.DEAD
        backoff = self.policy.backoff_delay(attempt - 1)
        self._append("failed", key, worker=worker, attempt=attempt, error=str(error),
                     backoff_s=backoff, not_before=now + backoff)
        self._release_lease(key, worker)
        return CellState.FAILED

    def _mark_dead(self, key: str, error: str) -> None:
        _atomic_write(
            self._dead_path(key),
            json.dumps(
                {"cell": key, "error": error,
                 "attempts": self._cells[key].attempts if key in self._cells else None},
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )
        self._append("dead", key, error=error)

    # -- results ------------------------------------------------------------------------

    def load_result(self, key: str) -> Optional[RunArtifact]:
        """The completed artifact of ``key`` — validated, else ``None``.

        Applies the same content check as the Runner's resume path: a
        truncated or hand-edited file (or a hash collision) fails to
        parse or carries a different spec and is treated as absent, so
        the cell re-runs instead of serving garbage.
        """
        path = self.result_path(key)
        if not path.exists():
            return None
        try:
            artifact = RunArtifact.from_json(path.read_text())
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            return None
        if artifact.spec.cell_key() != key:
            return None
        return artifact

    def dead_info(self, key: str) -> Optional[Dict[str, object]]:
        """The error record of a DEAD cell (``None`` otherwise)."""
        path = self._dead_path(key)
        if not path.exists():
            return None
        try:
            return dict(json.loads(path.read_text()))
        except (OSError, ValueError, json.JSONDecodeError):
            return None

    # -- state views --------------------------------------------------------------------

    def state(self, key: str, now: Optional[float] = None) -> CellState:
        """Current lifecycle state of one cell."""
        now = time.time() if now is None else now
        self._refresh()
        cell = self._cells.get(key)
        if cell is None:
            raise KeyError(f"cell {key!r} is not in this queue")
        if cell.dead:
            return CellState.DEAD
        if cell.completed:
            return CellState.COMPLETED
        lease = self._read_lease(key)
        if lease is not None and not lease.expired(now, self.skew_margin):
            return CellState.PROCESSING
        if cell.attempts > 0:
            return CellState.FAILED
        return CellState.PENDING

    def states(self, now: Optional[float] = None) -> Dict[str, CellState]:
        """``cell key -> state`` for every cell, in enqueue order."""
        now = time.time() if now is None else now
        self._refresh()
        return {key: self.state(key, now) for key in list(self._order)}

    def attempts(self, key: str) -> int:
        """Failures + expiries charged to ``key`` so far."""
        self._refresh()
        cell = self._cells.get(key)
        return cell.attempts if cell else 0

    def status(self, now: Optional[float] = None) -> QueueStatus:
        """Aggregate per-state counts (the ``queue-status`` CLI view)."""
        status = QueueStatus()
        for key, state in self.states(now).items():
            setattr(status, state.value, getattr(status, state.value) + 1)
            cell = self._cells[key]
            status.claims += cell.claims
            status.expired_leases += cell.expiries
        return status

    def cell_rows(
        self, now: Optional[float] = None, since: Optional[float] = None
    ) -> List[Dict[str, object]]:
        """Per-cell report rows (label, state, attempts, holder) for the CLI.

        ``since`` filters over the event log: only cells whose newest log
        record is at most ``since`` seconds old (relative to ``now``) are
        reported — the ``queue-status --cells --since`` view of what a
        live sweep touched recently.
        """
        now = time.time() if now is None else now
        rows: List[Dict[str, object]] = []
        for key, state in self.states(now).items():
            cell = self._cells[key]
            if since is not None and cell.last_event_ts < now - since:
                continue
            lease = self._read_lease(key) if state is CellState.PROCESSING else None
            try:
                label = self.spec(key).label()
            except (OSError, ValueError, KeyError):
                label = "?"
            rows.append(
                {
                    "cell": key,
                    "label": label,
                    "state": state.value,
                    "attempts": cell.attempts,
                    "worker": lease.worker if lease else "",
                    "last_event_age_s": (
                        round(now - cell.last_event_ts, 3)
                        if cell.last_event_ts
                        else None
                    ),
                    "error": (cell.error or "")[:60],
                }
            )
        return rows

    def as_json(self, now: Optional[float] = None) -> Dict[str, object]:
        """Machine-readable queue snapshot (the ``queue-status --json`` view).

        Everything the human table shows plus the lease timing of every
        PROCESSING cell: ``lease_age_s`` (how long the current attempt
        has held it) and ``lease_remaining_s`` (until the lease expires
        and the cell becomes re-claimable).  All values are plain JSON
        types so dashboards and shell pipelines can consume the snapshot
        without parsing the table layout.
        """
        now = time.time() if now is None else now
        cells: List[Dict[str, object]] = []
        for key, state in self.states(now).items():
            cell = self._cells[key]
            lease = self._read_lease(key) if state is CellState.PROCESSING else None
            try:
                label = self.spec(key).label()
            except (OSError, ValueError, KeyError):
                label = "?"
            entry: Dict[str, object] = {
                "cell": key,
                "label": label,
                "state": state.value,
                "attempts": int(cell.attempts),
                "claims": int(cell.claims),
                "expired_leases": int(cell.expiries),
                "worker": lease.worker if lease else "",
                "error": cell.error or "",
            }
            if lease is not None:
                remaining = max(lease.deadline - now, 0.0)
                entry["lease_remaining_s"] = round(remaining, 3)
                entry["lease_age_s"] = round(max(self.lease_ttl - remaining, 0.0), 3)
            cells.append(entry)
        return {
            "queue_dir": str(self.path),
            "lease_ttl": float(self.lease_ttl),
            "skew_margin": float(self.skew_margin),
            "max_retries": int(self.policy.max_retries),
            "states": self.status(now).as_dict(),
            "cells": cells,
        }
