"""Declarative experiment specifications.

A :class:`RunSpec` fully determines ONE simulation cell — which
scheduler (by registry name), on how many GPUs, with which trace and
simulation configuration, and under which seed.  Because the spec is
plain data (JSON-serializable, content-hashable via :meth:`RunSpec.cell_key`),
a cell can be shipped to a worker process, cached on disk, and re-run
bit-identically: the simulation is a pure function of its spec.

An :class:`ExperimentSpec` describes a *grid* — schedulers x capacities
x seeds x trace configs — and :meth:`ExperimentSpec.expand`\\ s it into
the individual cells in a deterministic order.  The paper's evaluations
are instances of this grid:

* Fig. 15 / Table 4: four schedulers x one capacity x one trace,
* Fig. 17/18: four schedulers x {16, 32, 48, 64} GPUs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from dataclasses import replace as _dc_replace

from repro.faults.config import FaultConfig
from repro.sim.simulator import SimulationConfig
from repro.utils.validation import check_positive_int
from repro.workload.trace import TraceConfig

#: Bumped whenever the serialized layout of specs/artifacts changes.
#: v2: ``SimulationConfig.collect_profile`` + ``SimulationResult.profile``
#: (per-phase wall-clock profiling threaded through run specs).
#: v3: fault injection — optional ``FaultConfig`` inside
#: ``SimulationConfig`` (and hence inside ``cell_key()``), a ``faults``
#: grid axis on ``ExperimentSpec``, and recovery metrics in
#: ``SimulationResult.faults``.  Zero-fault payloads are byte-identical
#: to v2, so v2 cell keys (and cached artifacts) remain valid.
SCHEMA_VERSION = 3


def _canonical_json(payload: object) -> str:
    """Canonical JSON used for content keys (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to execute one simulation cell.

    ``scheduler`` is a registry name (see :mod:`repro.experiments.registry`);
    ``scheduler_options`` are JSON-friendly keyword options forwarded to
    the registered factory (e.g. ``{"population_size": 4}`` for ONES).
    The trace is *generated* from ``trace`` + ``seed`` inside the worker
    executing the cell, so the spec stays tiny and self-contained.
    """

    scheduler: str
    num_gpus: int = 64
    seed: int = 2021
    trace: TraceConfig = field(default_factory=TraceConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    scheduler_options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scheduler or not str(self.scheduler).strip():
            raise ValueError("scheduler must be a non-empty registry name")
        check_positive_int(self.num_gpus, "num_gpus")
        check_positive_int(self.seed, "seed")
        object.__setattr__(self, "scheduler_options", dict(self.scheduler_options))

    def label(self) -> str:
        """Compact human-readable cell label used in logs and progress lines."""
        label = f"{self.scheduler}@{self.num_gpus}g/seed{self.seed}"
        if self.simulation.faults is not None:
            label += f"/faults:{self.simulation.faults.describe()}"
        return label

    @property
    def faults(self) -> Optional[FaultConfig]:
        """The cell's fault configuration (``None`` for a zero-fault cell)."""
        return self.simulation.faults

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {
            "scheduler": str(self.scheduler),
            "num_gpus": int(self.num_gpus),
            "seed": int(self.seed),
            "trace": self.trace.to_dict(),
            "simulation": self.simulation.to_dict(),
            "scheduler_options": dict(self.scheduler_options),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunSpec":
        """Rebuild a :class:`RunSpec` from :meth:`to_dict` output."""
        return cls(
            scheduler=str(payload["scheduler"]),
            num_gpus=int(payload["num_gpus"]),
            seed=int(payload["seed"]),
            trace=TraceConfig.from_dict(payload["trace"]),
            simulation=SimulationConfig.from_dict(payload["simulation"]),
            scheduler_options=dict(payload.get("scheduler_options", {})),
        )

    def cell_key(self) -> str:
        """Content hash of the cell; the cache key for resume-able sweeps.

        Any change to the spec (scheduler, options, capacity, seed, trace
        or simulation parameters) changes the key, so cached artifacts can
        never be served for a different experiment.
        """
        digest = hashlib.sha256(_canonical_json(self.to_dict()).encode()).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative grid of runs: schedulers x capacities x seeds x traces.

    ``scheduler_options`` maps a scheduler name to the options every cell
    of that scheduler receives (e.g. scale ONES's population down for a
    smoke grid).  :meth:`expand` produces the cells in a fixed order —
    fault configs (outermost), then traces, capacities, seeds,
    schedulers (inner) — which is also the execution/submission order of
    every backend, so results line up deterministically regardless of
    how the grid is executed.  The default ``faults`` axis is the single
    entry ``None`` (no injection), under which the expansion — and every
    cell key — is exactly the historical v2 grid.  Adding a
    :class:`~repro.faults.config.FaultConfig` next to ``None`` turns any
    experiment into a robustness benchmark: every faulted cell has its
    zero-fault *twin* in the same sweep, which is what the recovery
    aggregations on :class:`~repro.experiments.artifacts.SweepArtifact`
    compare against.
    """

    schedulers: Tuple[str, ...]
    capacities: Tuple[int, ...] = (64,)
    seeds: Tuple[int, ...] = (2021,)
    traces: Tuple[TraceConfig, ...] = field(default_factory=lambda: (TraceConfig(),))
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    scheduler_options: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    faults: Tuple[Optional[FaultConfig], ...] = (None,)
    #: Grid axis over per-scheduler option overlays.  Each entry is a
    #: ``{scheduler name: {option: value}}`` mapping merged on top of the
    #: shared ``scheduler_options`` for every cell of that axis value —
    #: e.g. ``({"ONES-hier": {"partition_size": 64}},
    #: {"ONES-hier": {"partition_size": 128}})`` sweeps the hierarchy's
    #: shard size.  The default single empty overlay reproduces the
    #: historical grid exactly (and is omitted from serialization, so
    #: existing sweep keys are unchanged).
    option_axis: Tuple[Mapping[str, Mapping[str, object]], ...] = ({},)

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedulers", tuple(str(s) for s in self.schedulers))
        object.__setattr__(self, "capacities", tuple(int(c) for c in self.capacities))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        traces = tuple(self.traces)
        object.__setattr__(self, "traces", traces)
        # Disabled fault configs are the same cell as no fault config at
        # all (SimulationConfig normalises them away) — fold them to None
        # here so the duplicate check below sees the collision.
        faults = tuple(
            fault if fault is not None and fault.enabled else None
            for fault in self.faults
        )
        if self.simulation.faults is not None:
            # A fault config on the shared simulation is hoisted onto the
            # faults axis, so every aggregation keyed by the axis (the
            # SweepArtifact index, twin lookups, ...) sees it.  Expansion
            # re-applies it per cell, so the cells are unchanged.
            if faults != (None,):
                raise ValueError(
                    "set fault configs either on the faults axis or on the shared "
                    "simulation config, not both"
                )
            faults = (self.simulation.faults,)
            object.__setattr__(
                self, "simulation", _dc_replace(self.simulation, faults=None)
            )
        object.__setattr__(self, "faults", faults)
        object.__setattr__(
            self,
            "scheduler_options",
            {str(name): dict(options) for name, options in self.scheduler_options.items()},
        )
        option_axis = tuple(
            {str(name): dict(options) for name, options in entry.items()}
            for entry in self.option_axis
        )
        if not option_axis:
            raise ValueError("option_axis must not be empty")
        overlay_keys = [_canonical_json(entry) for entry in option_axis]
        if len(set(overlay_keys)) != len(overlay_keys):
            raise ValueError("option_axis contains duplicates")
        object.__setattr__(self, "option_axis", option_axis)
        for label, values in (
            ("schedulers", self.schedulers),
            ("capacities", self.capacities),
            ("seeds", self.seeds),
            ("traces", traces),
            ("faults", faults),
        ):
            if not values:
                raise ValueError(f"{label} must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(f"{label} contains duplicates")
        unknown = set(self.scheduler_options) - set(self.schedulers)
        for entry in option_axis:
            unknown |= set(entry) - set(self.schedulers)
        if unknown:
            raise ValueError(
                f"scheduler_options for schedulers not in the grid: {sorted(unknown)}"
            )

    # -- grid expansion -----------------------------------------------------------------

    def _cell_simulation(self, fault: Optional[FaultConfig]) -> SimulationConfig:
        """The shared simulation config with one fault-axis value applied."""
        if fault is None:
            return self.simulation
        return _dc_replace(self.simulation, faults=fault)

    def _cell_options(
        self, scheduler: str, overlay: Mapping[str, Mapping[str, object]]
    ) -> Dict[str, object]:
        """Shared options for ``scheduler`` with one option-axis overlay applied."""
        options = dict(self.scheduler_options.get(scheduler, {}))
        options.update(overlay.get(scheduler, {}))
        return options

    def expand(self) -> List[RunSpec]:
        """The individual cells of the grid, in deterministic order."""
        cells: List[RunSpec] = []
        for fault in self.faults:
            simulation = self._cell_simulation(fault)
            for overlay in self.option_axis:
                for trace in self.traces:
                    for capacity in self.capacities:
                        for seed in self.seeds:
                            for scheduler in self.schedulers:
                                cells.append(
                                    RunSpec(
                                        scheduler=scheduler,
                                        num_gpus=capacity,
                                        seed=seed,
                                        trace=trace,
                                        simulation=simulation,
                                        scheduler_options=self._cell_options(
                                            scheduler, overlay
                                        ),
                                    )
                                )
        return cells

    @property
    def num_cells(self) -> int:
        """Size of the grid (``len(self.expand())`` without materialising it)."""
        return (
            len(self.schedulers)
            * len(self.capacities)
            * len(self.seeds)
            * len(self.traces)
            * len(self.faults)
            * len(self.option_axis)
        )

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`).

        Like the cell serialization, the ``faults`` axis is only present
        when it differs from the zero-fault default, so sweep keys of
        historical grids are unchanged.
        """
        payload: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "schedulers": list(self.schedulers),
            "capacities": list(self.capacities),
            "seeds": list(self.seeds),
            "traces": [trace.to_dict() for trace in self.traces],
            "simulation": self.simulation.to_dict(),
            "scheduler_options": {
                name: dict(options) for name, options in self.scheduler_options.items()
            },
        }
        if self.faults != (None,):
            payload["faults"] = [
                fault.to_dict() if fault is not None else None for fault in self.faults
            ]
        if self.option_axis != ({},):
            payload["option_axis"] = [
                {name: dict(options) for name, options in entry.items()}
                for entry in self.option_axis
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentSpec":
        """Rebuild an :class:`ExperimentSpec` from :meth:`to_dict` output."""
        faults = payload.get("faults")
        return cls(
            schedulers=tuple(payload["schedulers"]),
            capacities=tuple(payload["capacities"]),
            seeds=tuple(payload["seeds"]),
            traces=tuple(TraceConfig.from_dict(t) for t in payload["traces"]),
            simulation=SimulationConfig.from_dict(payload["simulation"]),
            scheduler_options=payload.get("scheduler_options", {}),
            faults=tuple(
                FaultConfig.from_dict(entry) if entry is not None else None
                for entry in faults
            )
            if faults is not None
            else (None,),
            option_axis=tuple(payload.get("option_axis", [{}])),
        )

    def sweep_key(self) -> str:
        """Content hash of the whole grid (names the sweep artifact on disk)."""
        digest = hashlib.sha256(_canonical_json(self.to_dict()).encode()).hexdigest()
        return digest[:16]

    # -- convenience constructors -------------------------------------------------------

    @classmethod
    def comparison(
        cls,
        schedulers: Optional[Sequence[str]] = None,
        num_gpus: int = 64,
        seed: int = 2021,
        trace: TraceConfig | None = None,
        simulation: SimulationConfig | None = None,
        scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
        faults: "Optional[FaultConfig]" = None,
    ) -> "ExperimentSpec":
        """The paper's main comparison (Fig. 15 / Table 4) as a one-capacity grid.

        ``schedulers`` defaults to the registry's paper set (the Fig. 15
        four), so the registry stays the single source of truth.  Passing
        a ``faults`` config turns the comparison into a robustness
        benchmark: the grid runs every scheduler twice, once clean and
        once under the fault profile, so recovery metrics always have
        their zero-fault twin.
        """
        return cls(
            schedulers=_default_schedulers(schedulers),
            capacities=(num_gpus,),
            seeds=(seed,),
            traces=(trace or TraceConfig(),),
            simulation=simulation or SimulationConfig(),
            scheduler_options=scheduler_options or {},
            faults=_fault_axis(faults),
        )

    @classmethod
    def scalability(
        cls,
        schedulers: Optional[Sequence[str]] = None,
        capacities: Sequence[int] = (16, 32, 48, 64),
        seeds: Sequence[int] = (2021,),
        trace: TraceConfig | None = None,
        simulation: SimulationConfig | None = None,
        scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
        faults: "Optional[FaultConfig]" = None,
    ) -> "ExperimentSpec":
        """The Fig. 17/18 scalability sweep over cluster capacities.

        As with :meth:`comparison`, a ``faults`` config adds a faulted
        twin of every cell next to the zero-fault grid.
        """
        return cls(
            schedulers=_default_schedulers(schedulers),
            capacities=tuple(capacities),
            seeds=tuple(seeds),
            traces=(trace or TraceConfig(),),
            simulation=simulation or SimulationConfig(),
            scheduler_options=scheduler_options or {},
            faults=_fault_axis(faults),
        )


def _fault_axis(faults: Optional[FaultConfig]) -> Tuple[Optional[FaultConfig], ...]:
    """``None`` -> the zero-fault axis; a config -> (clean twin, faulted)."""
    if faults is None or not faults.enabled:
        return (None,)
    return (None, faults)


def _default_schedulers(schedulers: Optional[Sequence[str]]) -> tuple:
    """``schedulers`` as a tuple, defaulting to the registry's paper set."""
    if schedulers is not None:
        return tuple(schedulers)
    # Imported lazily: the spec layer is pure data and must not pull the
    # scheduler implementations in at module-import time.
    from repro.experiments.registry import paper_schedulers

    return paper_schedulers()
