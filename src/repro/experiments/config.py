"""Experiment configuration objects.

The main evaluation of the paper (Fig. 15, Table 4) runs a 50-job
Table-2 trace on a 64-GPU Longhorn cluster against four schedulers; the
scalability study (Fig. 17/18) repeats it at 16/32/48/64 GPUs.  The
defaults below mirror that setup but every knob (trace size, arrival
rate, cluster size, schedulers, seeds) is configurable so the test suite
can run scaled-down versions quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.base import SchedulerBase
from repro.baselines.drl import DRLScheduler
from repro.baselines.optimus import OptimusScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.sim.simulator import SimulationConfig
from repro.utils.validation import check_positive, check_positive_int
from repro.workload.trace import TraceConfig

#: Factory signature: ``(seed) -> SchedulerBase``.
SchedulerFactory = Callable[[int], SchedulerBase]


def default_schedulers(
    evolution: Optional[EvolutionConfig] = None,
) -> Dict[str, SchedulerFactory]:
    """The four schedulers of the paper's evaluation, as factories.

    Factories (rather than instances) are used because every scheduler
    must be constructed fresh per run — schedulers are stateful.
    """
    evolution = evolution or EvolutionConfig()

    return {
        "ONES": lambda seed: ONESScheduler(ONESConfig(evolution=evolution), seed=seed),
        "DRL": lambda seed: DRLScheduler(seed=seed, greedy=True),
        "Tiresias": lambda seed: TiresiasScheduler(),
        "Optimus": lambda seed: OptimusScheduler(),
    }


@dataclass
class ExperimentConfig:
    """Configuration of one trace-driven comparison experiment."""

    num_gpus: int = 64
    trace: TraceConfig = field(default_factory=TraceConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    seed: int = 2021
    schedulers: Optional[Dict[str, SchedulerFactory]] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_gpus, "num_gpus")
        check_positive_int(self.seed, "seed")

    def scheduler_factories(self) -> Dict[str, SchedulerFactory]:
        """The scheduler factories to compare (defaults to the paper's four)."""
        if self.schedulers is not None:
            return self.schedulers
        return default_schedulers()

    @classmethod
    def small(cls, num_gpus: int = 16, num_jobs: int = 10, seed: int = 7) -> "ExperimentConfig":
        """A scaled-down configuration suitable for unit/integration tests."""
        return cls(
            num_gpus=num_gpus,
            trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / 15.0),
            simulation=SimulationConfig(max_time=24 * 3600.0),
            seed=seed,
        )
