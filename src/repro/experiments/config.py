"""Experiment configuration objects (legacy, factory-based).

The main evaluation of the paper (Fig. 15, Table 4) runs a 50-job
Table-2 trace on a 64-GPU Longhorn cluster against four schedulers; the
scalability study (Fig. 17/18) repeats it at 16/32/48/64 GPUs.  The
defaults below mirror that setup but every knob (trace size, arrival
rate, cluster size, schedulers, seeds) is configurable so the test suite
can run scaled-down versions quickly.

:class:`ExperimentConfig` predates the declarative Spec/Runner/Artifact
API and is kept for the legacy ``run_comparison``/``run_scalability_sweep``
shims and their callers.  Scheduler construction is delegated to the
:mod:`repro.experiments.registry`, which is the single source of truth
for name -> factory mappings; :meth:`ExperimentConfig.to_spec` converts
a config into an :class:`~repro.experiments.spec.ExperimentSpec` for the
new Runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence

from repro.baselines.base import SchedulerBase
from repro.core.evolution import EvolutionConfig
from repro.experiments.registry import create_scheduler, paper_schedulers
from repro.sim.simulator import SimulationConfig
from repro.utils.validation import check_positive_int
from repro.workload.trace import TraceConfig

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from repro.experiments.spec import ExperimentSpec

#: Factory signature: ``(seed) -> SchedulerBase``.
SchedulerFactory = Callable[[int], SchedulerBase]


def default_schedulers(
    evolution: Optional[EvolutionConfig] = None,
) -> Dict[str, SchedulerFactory]:
    """The four schedulers of the paper's evaluation, as seed-only factories.

    Factories (rather than instances) are used because every scheduler
    must be constructed fresh per run — schedulers are stateful.  Each
    factory delegates to the scheduler registry; ``evolution`` optionally
    overrides the ONES evolution hyper-parameters.
    """

    def factory_for(name: str) -> SchedulerFactory:
        if name == "ONES" and evolution is not None:
            return lambda seed: create_scheduler("ONES", seed, evolution=evolution)
        return lambda seed: create_scheduler(name, seed)

    return {name: factory_for(name) for name in paper_schedulers()}


@dataclass
class ExperimentConfig:
    """Configuration of one trace-driven comparison experiment."""

    num_gpus: int = 64
    trace: TraceConfig = field(default_factory=TraceConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    seed: int = 2021
    schedulers: Optional[Dict[str, SchedulerFactory]] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_gpus, "num_gpus")
        check_positive_int(self.seed, "seed")

    def scheduler_factories(self) -> Dict[str, SchedulerFactory]:
        """The scheduler factories to compare (defaults to the paper's four)."""
        if self.schedulers is not None:
            return self.schedulers
        return default_schedulers()

    def to_spec(self, schedulers: Optional[Sequence[str]] = None) -> "ExperimentSpec":
        """This configuration as a declarative single-capacity grid.

        ``schedulers`` selects registry names (default: the paper's four).
        Configs carrying ad-hoc factory objects in ``self.schedulers``
        cannot be made declarative — register the scheduler instead.
        """
        from repro.experiments.spec import ExperimentSpec

        if schedulers is None:
            if self.schedulers is not None:
                raise ValueError(
                    "config carries ad-hoc scheduler factories; pass registry "
                    "names explicitly via schedulers=..."
                )
            schedulers = paper_schedulers()
        return ExperimentSpec(
            schedulers=tuple(schedulers),
            capacities=(self.num_gpus,),
            seeds=(self.seed,),
            traces=(self.trace,),
            simulation=self.simulation,
        )

    @classmethod
    def small(cls, num_gpus: int = 16, num_jobs: int = 10, seed: int = 7) -> "ExperimentConfig":
        """A scaled-down configuration suitable for unit/integration tests."""
        return cls(
            num_gpus=num_gpus,
            trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / 15.0),
            simulation=SimulationConfig(max_time=24 * 3600.0),
            seed=seed,
        )
