"""Pluggable execution backends for experiment grids.

A backend turns a list of :class:`~repro.experiments.spec.RunSpec` cells
into :class:`~repro.experiments.artifacts.RunArtifact`\\ s, preserving
input order.  Two backends ship with the repo:

* :class:`SerialBackend` — executes cells one after another in-process.
* :class:`ProcessPoolBackend` — fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Because a cell is a
  pure function of its spec (the scheduler is constructed fresh from the
  registry, the trace is generated from the spec's own seed inside the
  worker, and nothing is shared between cells), the pool produces
  artifacts *bit-identical* to serial execution — only faster.  Specs and
  artifacts cross the process boundary as plain dicts, so nothing
  unpicklable (scheduler instances, lambdas, RNG state) ever has to.

The free functions are the single execution path everything funnels
through: the legacy ``run_single``/``run_comparison`` shims call
:func:`simulate_trace`, and both backends call :func:`execute_run`.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import subprocess
import sys
import time
import uuid
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines.base import SchedulerBase
from repro.cluster.topology import make_longhorn_cluster
from repro.experiments.artifacts import RunArtifact
from repro.experiments.registry import create_scheduler
from repro.experiments.spec import RunSpec
from repro.jobs.job import JobSpec
from repro.sim.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.workload.trace import TraceGenerator

#: Resolver signature: ``(name, seed, **options) -> SchedulerBase``.
SchedulerResolver = Callable[..., SchedulerBase]


def simulate_trace(
    scheduler: SchedulerBase,
    trace: Sequence[JobSpec],
    num_gpus: int,
    simulation: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Replay an explicit ``trace`` under an instantiated ``scheduler``.

    The lowest-level entry point: builds the Longhorn-style topology and
    runs the discrete-event simulator.  Use :func:`simulate_run` when the
    run is described by a declarative :class:`RunSpec` instead.
    """
    topology = make_longhorn_cluster(num_gpus)
    simulator = ClusterSimulator(
        topology=topology,
        scheduler=scheduler,
        trace=list(trace),
        config=simulation,
    )
    return simulator.run()


def simulate_run(
    spec: RunSpec, resolver: Optional[SchedulerResolver] = None
) -> SimulationResult:
    """Execute one declarative cell and return the full in-process result.

    The returned :class:`SimulationResult` still carries its live ``Job``
    objects (unlike the serializable artifact), which examples use for
    per-job timelines.  ``resolver`` overrides how scheduler names are
    turned into instances; it defaults to the registry.
    """
    resolve = resolver or create_scheduler
    scheduler = resolve(spec.scheduler, spec.seed, **spec.scheduler_options)
    trace = TraceGenerator(spec.trace, seed=spec.seed).generate()
    return simulate_trace(scheduler, trace, spec.num_gpus, spec.simulation)


def execute_run(
    spec: RunSpec, resolver: Optional[SchedulerResolver] = None
) -> RunArtifact:
    """Execute one declarative cell and package it as a serializable artifact.

    When tracing is active the whole cell runs inside a ``cell`` span
    labelled with the spec, so multi-cell traces (``compare`` on the
    serial backend, queue workers) stay separable per cell.
    """
    from repro.obs.trace import active_tracer

    tracer = active_tracer()
    if tracer is None:
        return RunArtifact.from_simulation(spec, simulate_run(spec, resolver))
    with tracer.span("cell", "experiment", 0.0, label=spec.label()) as span:
        artifact = RunArtifact.from_simulation(spec, simulate_run(spec, resolver))
        span["end_t"] = float(artifact.result.makespan)
    return artifact


#: Progress callback: ``(index_into_specs, artifact)``; called as each cell
#: completes (not necessarily in order on parallel backends).
ResultCallback = Callable[[int, RunArtifact], None]


class CellTimeoutError(RuntimeError):
    """One cell exceeded its per-cell wall-clock budget (all retries spent)."""


@dataclass(frozen=True)
class ExecutionPolicy:
    """Per-cell execution guard-rails applied by the backends.

    ``timeout_s`` bounds one *attempt's* wall-clock: the cell runs in a
    watchdogged child process that is terminated on overrun (so a
    pathological cell cannot wedge a sweep).  ``max_retries`` re-runs a
    cell after a timeout or an execution error, up to that many extra
    attempts; determinism makes retries of a *logic* error futile, but a
    loaded host can make an honest cell blow a tight timeout once.
    ``retry_backoff_s`` spaces those retries out exponentially (base
    delay, doubled per extra attempt), which matters on a loaded host —
    an immediate re-run hits the same contention that caused the first
    timeout.  The same policy object drives the queue backend, where the
    backoff is recorded in the durable work log as the cell's
    ``not_before`` gate.
    """

    timeout_s: Optional[float] = None
    max_retries: int = 0
    retry_backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and float(self.timeout_s) <= 0:
            raise ValueError("timeout_s must be positive (or None to disable)")
        if int(self.max_retries) < 0:
            raise ValueError("max_retries must be >= 0")
        if float(self.retry_backoff_s) < 0:
            raise ValueError("retry_backoff_s must be >= 0")

    @property
    def is_default(self) -> bool:
        """Whether the policy changes nothing (no timeout, no retries)."""
        return self.timeout_s is None and self.max_retries == 0

    def backoff_delay(self, retry_index: int) -> float:
        """Seconds to wait before retry ``retry_index`` (0-based, exponential)."""
        if self.retry_backoff_s <= 0:
            return 0.0
        return float(self.retry_backoff_s) * (2.0 ** int(retry_index))

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (shared via the queue's ``queue.json``)."""
        return {
            "timeout_s": None if self.timeout_s is None else float(self.timeout_s),
            "max_retries": int(self.max_retries),
            "retry_backoff_s": float(self.retry_backoff_s),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExecutionPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        timeout = payload.get("timeout_s")
        return cls(
            timeout_s=None if timeout is None else float(timeout),
            max_retries=int(payload.get("max_retries", 0)),
            retry_backoff_s=float(payload.get("retry_backoff_s", 0.0)),
        )


def _subprocess_cell_main(payload: Dict[str, object], conn) -> None:
    """Child entry point of a watchdogged cell: artifact (or error) out."""
    try:
        conn.send(("ok", _execute_payload(payload)))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def execute_run_in_subprocess(spec: RunSpec, timeout_s: float) -> RunArtifact:
    """Execute one cell in a child process with a hard wall-clock bound.

    The child is terminated on overrun — this is the only portable way
    to *stop* a running simulation, which is why timeouts imply
    subprocess execution (and registry-named schedulers; resolvers
    cannot cross the process boundary).  Artifacts come back as plain
    dicts, exactly like the process-pool backend's, so they are
    bit-identical to in-process execution.
    """
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_subprocess_cell_main, args=(spec.to_dict(), child_conn)
    )
    process.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout_s):
            raise CellTimeoutError(
                f"cell {spec.label()} exceeded its {timeout_s:.1f}s budget"
            )
        status, payload = parent_conn.recv()
    finally:
        if process.is_alive():
            process.terminate()
        process.join()
        parent_conn.close()
    if status != "ok":
        raise RuntimeError(f"cell {spec.label()} failed in its worker: {payload}")
    return RunArtifact.from_dict(payload)


class AttemptCounter:
    """Mutable attempt bookkeeping updated *live* by the policy executor.

    Counts survive a final failure (the counter is written before the
    exception propagates), which is what lets ``RunnerStats`` report
    honest timed-out counts even when a sweep aborts.
    """

    __slots__ = ("retries", "timeouts")

    def __init__(self) -> None:
        self.retries = 0
        self.timeouts = 0


def execute_run_with_policy(
    spec: RunSpec,
    policy: Optional[ExecutionPolicy],
    resolver: Optional[SchedulerResolver] = None,
    counter: Optional[AttemptCounter] = None,
) -> RunArtifact:
    """Execute one cell under a policy, recording attempts on ``counter``.

    ``counter.retries`` counts extra attempts that were needed,
    ``counter.timeouts`` the attempts that hit the wall-clock bound (a
    retried timeout increments both).  Between attempts the policy's
    exponential backoff is honoured (``backoff_delay(0)`` before the
    first retry, doubling after).  The last attempt's failure propagates
    unchanged once the retry budget is spent — with the counter already
    updated.
    """
    counter = counter if counter is not None else AttemptCounter()
    if policy is None or policy.is_default:
        return execute_run(spec, resolver)
    if policy.timeout_s is not None and resolver is not None:
        raise ValueError(
            "per-cell timeouts run cells in subprocesses, which resolve "
            "schedulers via the registry only"
        )
    attempts = int(policy.max_retries) + 1
    for attempt in range(attempts):
        try:
            if policy.timeout_s is not None:
                return execute_run_in_subprocess(spec, policy.timeout_s)
            return execute_run(spec, resolver)
        except CellTimeoutError:
            counter.timeouts += 1
            if attempt + 1 >= attempts:
                raise
            counter.retries += 1
        except Exception:
            if attempt + 1 >= attempts:
                raise
            counter.retries += 1
        delay = policy.backoff_delay(attempt)
        if delay > 0:
            time.sleep(delay)
    raise AssertionError("unreachable: the attempt loop returns or raises")


class ExecutionBackend(abc.ABC):
    """Strategy for executing a batch of cells; results keep input order."""

    #: Registry name used by :func:`make_backend` and the CLI.
    name: str = "backend"
    #: Extra attempts the last :meth:`run` needed (policy bookkeeping).
    last_run_retries: int = 0
    #: Attempts of the last :meth:`run` that hit the per-cell timeout.
    last_run_timeouts: int = 0
    #: Cells the last :meth:`run` saw claimed by a worker (queue backend).
    last_run_claimed: int = 0
    #: Worker leases that expired during the last :meth:`run` (queue backend).
    last_run_expired_leases: int = 0
    #: Cells that ended DEAD in the last :meth:`run` (queue backend).
    last_run_dead: int = 0

    @abc.abstractmethod
    def run(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[ResultCallback] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[RunArtifact]:
        """Execute every cell and return one artifact per cell, in order.

        ``on_result`` fires as each cell completes, so callers (the
        Runner's cell cache) can persist progress before the whole batch
        is done — an interrupted sweep keeps its finished cells.
        ``policy`` applies per-cell timeout/retry guard-rails; the
        attempt counters land in ``last_run_retries`` /
        ``last_run_timeouts`` for the Runner's stats.
        """


class SerialBackend(ExecutionBackend):
    """Execute cells one after another in the current process.

    Accepts an optional ``resolver`` so ad-hoc (unregistered, possibly
    unpicklable) scheduler factories can be used — the escape hatch the
    legacy ``run_comparison(schedulers={...})`` API is built on.
    """

    name = "serial"

    def __init__(self, resolver: Optional[SchedulerResolver] = None) -> None:
        self._resolver = resolver

    def run(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[ResultCallback] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[RunArtifact]:
        self.last_run_retries = 0
        self.last_run_timeouts = 0
        counter = AttemptCounter()
        artifacts: List[RunArtifact] = []
        try:
            for index, spec in enumerate(specs):
                artifact = execute_run_with_policy(
                    spec, policy, self._resolver, counter
                )
                if on_result is not None:
                    on_result(index, artifact)
                artifacts.append(artifact)
        finally:
            self.last_run_retries = counter.retries
            self.last_run_timeouts = counter.timeouts
        return artifacts


def _execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: spec dict in, artifact dict out.

    Module-level (not a closure) so it is importable from spawned workers
    as well as forked ones.
    """
    return execute_run(RunSpec.from_dict(payload)).to_dict()


def _execute_payload_with_policy(
    payload: Dict[str, object], policy: Optional[ExecutionPolicy]
) -> Dict[str, object]:
    """Pool-worker entry point applying the execution policy in the worker.

    Timeout enforcement spawns a (grand)child process from the pool
    worker — pool workers are non-daemonic on the supported Python
    versions, so the watchdogged child is legal — and the attempt
    counters ride back next to the artifact dict.  A final failure is
    marshalled (not raised) so the counters survive; the parent
    re-raises after accounting for them.
    """
    spec = RunSpec.from_dict(payload)
    counter = AttemptCounter()
    try:
        artifact = execute_run_with_policy(spec, policy, counter=counter)
    except CellTimeoutError as exc:
        return {
            "error": str(exc),
            "timed_out": True,
            "retries": counter.retries,
            "timeouts": counter.timeouts,
        }
    except Exception as exc:  # noqa: BLE001 - marshalled to the parent
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "timed_out": False,
            "retries": counter.retries,
            "timeouts": counter.timeouts,
        }
    return {
        "artifact": artifact.to_dict(),
        "retries": counter.retries,
        "timeouts": counter.timeouts,
    }


class ProcessPoolBackend(ExecutionBackend):
    """Fan cells out over worker processes; bit-identical to serial order.

    Only registry-named schedulers are supported (specs are resolved
    inside the workers); ad-hoc factory objects cannot cross the process
    boundary.  ``max_workers=None`` uses one worker per CPU, capped at
    the number of cells.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = None if max_workers is None else int(max_workers)

    def run(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[ResultCallback] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[RunArtifact]:
        specs = list(specs)
        self.last_run_retries = 0
        self.last_run_timeouts = 0
        if not specs:
            return []
        use_policy = policy is not None and not policy.is_default
        workers = self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(specs)))
        artifacts: List[Optional[RunArtifact]] = [None] * len(specs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if use_policy:
                futures = {
                    pool.submit(_execute_payload_with_policy, spec.to_dict(), policy): index
                    for index, spec in enumerate(specs)
                }
            else:
                futures = {
                    pool.submit(_execute_payload, spec.to_dict()): index
                    for index, spec in enumerate(specs)
                }
            # Surface results (and persist them via on_result) as they
            # finish, not when the whole batch is done.
            for future in as_completed(futures):
                index = futures[future]
                payload = future.result()
                if use_policy:
                    self.last_run_retries += int(payload["retries"])
                    self.last_run_timeouts += int(payload["timeouts"])
                    if "error" in payload:
                        if payload["timed_out"]:
                            raise CellTimeoutError(payload["error"])
                        raise RuntimeError(payload["error"])
                    artifact = RunArtifact.from_dict(payload["artifact"])
                else:
                    artifact = RunArtifact.from_dict(payload)
                if on_result is not None:
                    on_result(index, artifact)
                artifacts[index] = artifact
        return list(artifacts)


class QueueBackend(ExecutionBackend):
    """Durable lease-based queue backend: sweeps that survive worker churn.

    Cells are enqueued (idempotently, by content key) into a file-backed
    :class:`~repro.experiments.queue.WorkQueue`; any number of worker
    processes — spawned locally by this backend and/or started by hand
    via ``python -m repro.experiments.worker <queue-dir>`` on any host
    sharing the filesystem — claim cells under a TTL lease, renew it by
    heartbeat, and publish artifacts through the content-keyed result
    store.  :meth:`run` waits for every cell to reach a terminal state
    and reassembles the results in input order, so from the Runner's
    perspective this backend is just a slower-to-start, crash-proof
    sibling of the process pool: artifacts are bit-identical to serial
    execution.

    Robustness semantics:

    * a worker that dies (SIGKILL, OOM, node loss) stops renewing its
      lease; once the TTL passes, *any* process — another worker or the
      waiting backend itself — expires the lease and the cell returns to
      PENDING;
    * a cell that keeps failing (or keeps killing its workers) is
      retried with exponential backoff up to ``policy.max_retries``
      extra attempts and then moves to DEAD — reported as a placeholder
      artifact, never silently dropped;
    * a fresh :meth:`run` against an existing queue directory resumes
      from the work log: completed cells are collected instantly,
      missing ones are (re-)enqueued by content key.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: PathLike,
        workers: Optional[int] = None,
        lease_ttl: float = 30.0,
        poll_interval: float = 0.2,
        wait_timeout_s: Optional[float] = None,
    ) -> None:
        if workers is not None and int(workers) < 0:
            raise ValueError("workers must be >= 0 (0 = external workers only)")
        self.queue_dir = Path(queue_dir)
        #: Local worker subprocesses spawned per run; 0 means the backend
        #: only waits — workers are attached externally (other processes
        #: or hosts).  ``None`` defaults to one local worker.
        self.workers = 1 if workers is None else int(workers)
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = float(poll_interval)
        self.wait_timeout_s = wait_timeout_s

    def _spawn_worker(self, index: int) -> subprocess.Popen:
        # The worker re-imports repro; make sure it resolves to the same
        # installation even when the parent runs off a bare PYTHONPATH.
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.worker",
                str(self.queue_dir),
                "--worker-id",
                f"local-{index}-{uuid.uuid4().hex[:6]}",
                "--exit-when-done",
            ],
            env=env,
        )

    def run(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[ResultCallback] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[RunArtifact]:
        from repro.experiments.artifacts import dead_cell_artifact
        from repro.experiments.queue import WorkQueue

        specs = list(specs)
        self.last_run_retries = 0
        self.last_run_timeouts = 0
        self.last_run_claimed = 0
        self.last_run_expired_leases = 0
        self.last_run_dead = 0
        if not specs:
            return []
        queue = WorkQueue(self.queue_dir, lease_ttl=self.lease_ttl, policy=policy)
        keys = queue.enqueue_all(specs)
        index_of = {key: index for index, key in enumerate(keys)}
        artifacts: List[Optional[RunArtifact]] = [None] * len(specs)
        settled: set = set()
        procs = [self._spawn_worker(i) for i in range(self.workers)]
        deadline = (
            None if self.wait_timeout_s is None else time.monotonic() + self.wait_timeout_s
        )
        try:
            while len(settled) < len(specs):
                # Drive lease expiry from the waiting side too: recovery
                # must not depend on a surviving worker noticing.
                queue.expire_leases()
                states = queue.states()
                for key in keys:
                    if key in settled:
                        continue
                    state = states.get(key)
                    if state is None:
                        continue
                    if state.value == "completed":
                        artifact = queue.load_result(key)
                        if artifact is None:
                            continue  # torn write; the queue will re-run it
                        settled.add(key)
                        artifacts[index_of[key]] = artifact
                        if on_result is not None:
                            on_result(index_of[key], artifact)
                    elif state.value == "dead":
                        settled.add(key)
                        info = queue.dead_info(key) or {}
                        artifacts[index_of[key]] = dead_cell_artifact(
                            specs[index_of[key]],
                            error=str(info.get("error", "cell died in the queue")),
                            attempts=queue.attempts(key),
                        )
                if len(settled) >= len(specs):
                    break
                if procs and all(proc.poll() is not None for proc in procs):
                    failed = [proc.returncode for proc in procs if proc.returncode]
                    if failed:
                        raise RuntimeError(
                            f"all local queue workers exited (return codes {failed}) "
                            f"with unsettled cells remaining in {self.queue_dir}"
                        )
                    # Workers exited cleanly yet cells remain unsettled:
                    # they are inside a backoff window — spin one back up.
                    procs = [self._spawn_worker(len(procs))]
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"queue sweep did not settle within {self.wait_timeout_s:.0f}s "
                        f"({len(settled)}/{len(specs)} cells terminal)"
                    )
                time.sleep(self.poll_interval)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
            status = queue.status()
            self.last_run_claimed = status.claims
            self.last_run_expired_leases = status.expired_leases
            self.last_run_dead = status.dead
            # Queue-side retries = attempts beyond the first claim.
            self.last_run_retries = max(0, status.claims - len(specs))
        return list(artifacts)


#: Backend-name registry used by :func:`make_backend` and the CLI flags.
BACKENDS: Dict[str, type] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    QueueBackend.name: QueueBackend,
}


def make_backend(
    backend: Union[str, ExecutionBackend] = "serial",
    workers: Optional[int] = None,
    resolver: Optional[SchedulerResolver] = None,
    queue_dir: Optional[PathLike] = None,
    lease_ttl: float = 30.0,
) -> ExecutionBackend:
    """Build an execution backend from a name (or pass an instance through).

    ``workers`` selects the pool size for the process backend and the
    number of locally-spawned worker processes for the queue backend
    (0 = wait for externally-attached workers); asking for more than one
    worker with ``backend="serial"`` is an error (pick the process
    backend instead), as is a resolver with the process or queue backend
    (resolvers cannot be shipped to workers).  ``queue_dir`` is required
    by — and only meaningful for — the queue backend.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = str(backend).lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(sorted(BACKENDS))}"
        )
    if name == QueueBackend.name:
        if resolver is not None:
            raise ValueError("the queue backend resolves schedulers via the registry only")
        if queue_dir is None:
            raise ValueError("the queue backend needs a queue_dir")
        return QueueBackend(queue_dir, workers=workers, lease_ttl=lease_ttl)
    if queue_dir is not None:
        raise ValueError("queue_dir is only meaningful with backend='queue'")
    if name == SerialBackend.name:
        if workers is not None and int(workers) > 1:
            raise ValueError("the serial backend is single-worker; use backend='process'")
        return SerialBackend(resolver=resolver)
    if resolver is not None:
        raise ValueError("the process backend resolves schedulers via the registry only")
    return ProcessPoolBackend(max_workers=workers)
