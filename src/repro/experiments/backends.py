"""Pluggable execution backends for experiment grids.

A backend turns a list of :class:`~repro.experiments.spec.RunSpec` cells
into :class:`~repro.experiments.artifacts.RunArtifact`\\ s, preserving
input order.  Two backends ship with the repo:

* :class:`SerialBackend` — executes cells one after another in-process.
* :class:`ProcessPoolBackend` — fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Because a cell is a
  pure function of its spec (the scheduler is constructed fresh from the
  registry, the trace is generated from the spec's own seed inside the
  worker, and nothing is shared between cells), the pool produces
  artifacts *bit-identical* to serial execution — only faster.  Specs and
  artifacts cross the process boundary as plain dicts, so nothing
  unpicklable (scheduler instances, lambdas, RNG state) ever has to.

The free functions are the single execution path everything funnels
through: the legacy ``run_single``/``run_comparison`` shims call
:func:`simulate_trace`, and both backends call :func:`execute_run`.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.base import SchedulerBase
from repro.cluster.topology import make_longhorn_cluster
from repro.experiments.artifacts import RunArtifact
from repro.experiments.registry import create_scheduler
from repro.experiments.spec import RunSpec
from repro.jobs.job import JobSpec
from repro.sim.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.workload.trace import TraceGenerator

#: Resolver signature: ``(name, seed, **options) -> SchedulerBase``.
SchedulerResolver = Callable[..., SchedulerBase]


def simulate_trace(
    scheduler: SchedulerBase,
    trace: Sequence[JobSpec],
    num_gpus: int,
    simulation: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Replay an explicit ``trace`` under an instantiated ``scheduler``.

    The lowest-level entry point: builds the Longhorn-style topology and
    runs the discrete-event simulator.  Use :func:`simulate_run` when the
    run is described by a declarative :class:`RunSpec` instead.
    """
    topology = make_longhorn_cluster(num_gpus)
    simulator = ClusterSimulator(
        topology=topology,
        scheduler=scheduler,
        trace=list(trace),
        config=simulation,
    )
    return simulator.run()


def simulate_run(
    spec: RunSpec, resolver: Optional[SchedulerResolver] = None
) -> SimulationResult:
    """Execute one declarative cell and return the full in-process result.

    The returned :class:`SimulationResult` still carries its live ``Job``
    objects (unlike the serializable artifact), which examples use for
    per-job timelines.  ``resolver`` overrides how scheduler names are
    turned into instances; it defaults to the registry.
    """
    resolve = resolver or create_scheduler
    scheduler = resolve(spec.scheduler, spec.seed, **spec.scheduler_options)
    trace = TraceGenerator(spec.trace, seed=spec.seed).generate()
    return simulate_trace(scheduler, trace, spec.num_gpus, spec.simulation)


def execute_run(
    spec: RunSpec, resolver: Optional[SchedulerResolver] = None
) -> RunArtifact:
    """Execute one declarative cell and package it as a serializable artifact."""
    return RunArtifact.from_simulation(spec, simulate_run(spec, resolver))


#: Progress callback: ``(index_into_specs, artifact)``; called as each cell
#: completes (not necessarily in order on parallel backends).
ResultCallback = Callable[[int, RunArtifact], None]


class CellTimeoutError(RuntimeError):
    """One cell exceeded its per-cell wall-clock budget (all retries spent)."""


@dataclass(frozen=True)
class ExecutionPolicy:
    """Per-cell execution guard-rails applied by the backends.

    ``timeout_s`` bounds one *attempt's* wall-clock: the cell runs in a
    watchdogged child process that is terminated on overrun (so a
    pathological cell cannot wedge a sweep).  ``max_retries`` re-runs a
    cell after a timeout or an execution error, up to that many extra
    attempts; determinism makes retries of a *logic* error futile, but a
    loaded host can make an honest cell blow a tight timeout once.
    """

    timeout_s: Optional[float] = None
    max_retries: int = 0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and float(self.timeout_s) <= 0:
            raise ValueError("timeout_s must be positive (or None to disable)")
        if int(self.max_retries) < 0:
            raise ValueError("max_retries must be >= 0")

    @property
    def is_default(self) -> bool:
        """Whether the policy changes nothing (no timeout, no retries)."""
        return self.timeout_s is None and self.max_retries == 0


def _subprocess_cell_main(payload: Dict[str, object], conn) -> None:
    """Child entry point of a watchdogged cell: artifact (or error) out."""
    try:
        conn.send(("ok", _execute_payload(payload)))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def execute_run_in_subprocess(spec: RunSpec, timeout_s: float) -> RunArtifact:
    """Execute one cell in a child process with a hard wall-clock bound.

    The child is terminated on overrun — this is the only portable way
    to *stop* a running simulation, which is why timeouts imply
    subprocess execution (and registry-named schedulers; resolvers
    cannot cross the process boundary).  Artifacts come back as plain
    dicts, exactly like the process-pool backend's, so they are
    bit-identical to in-process execution.
    """
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_subprocess_cell_main, args=(spec.to_dict(), child_conn)
    )
    process.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout_s):
            raise CellTimeoutError(
                f"cell {spec.label()} exceeded its {timeout_s:.1f}s budget"
            )
        status, payload = parent_conn.recv()
    finally:
        if process.is_alive():
            process.terminate()
        process.join()
        parent_conn.close()
    if status != "ok":
        raise RuntimeError(f"cell {spec.label()} failed in its worker: {payload}")
    return RunArtifact.from_dict(payload)


class AttemptCounter:
    """Mutable attempt bookkeeping updated *live* by the policy executor.

    Counts survive a final failure (the counter is written before the
    exception propagates), which is what lets ``RunnerStats`` report
    honest timed-out counts even when a sweep aborts.
    """

    __slots__ = ("retries", "timeouts")

    def __init__(self) -> None:
        self.retries = 0
        self.timeouts = 0


def execute_run_with_policy(
    spec: RunSpec,
    policy: Optional[ExecutionPolicy],
    resolver: Optional[SchedulerResolver] = None,
    counter: Optional[AttemptCounter] = None,
) -> RunArtifact:
    """Execute one cell under a policy, recording attempts on ``counter``.

    ``counter.retries`` counts extra attempts that were needed,
    ``counter.timeouts`` the attempts that hit the wall-clock bound (a
    retried timeout increments both).  The last attempt's failure
    propagates unchanged once the retry budget is spent — with the
    counter already updated.
    """
    counter = counter if counter is not None else AttemptCounter()
    if policy is None or policy.is_default:
        return execute_run(spec, resolver)
    if policy.timeout_s is not None and resolver is not None:
        raise ValueError(
            "per-cell timeouts run cells in subprocesses, which resolve "
            "schedulers via the registry only"
        )
    attempts = int(policy.max_retries) + 1
    for attempt in range(attempts):
        try:
            if policy.timeout_s is not None:
                return execute_run_in_subprocess(spec, policy.timeout_s)
            return execute_run(spec, resolver)
        except CellTimeoutError:
            counter.timeouts += 1
            if attempt + 1 >= attempts:
                raise
            counter.retries += 1
        except Exception:
            if attempt + 1 >= attempts:
                raise
            counter.retries += 1
    raise AssertionError("unreachable: the attempt loop returns or raises")


class ExecutionBackend(abc.ABC):
    """Strategy for executing a batch of cells; results keep input order."""

    #: Registry name used by :func:`make_backend` and the CLI.
    name: str = "backend"
    #: Extra attempts the last :meth:`run` needed (policy bookkeeping).
    last_run_retries: int = 0
    #: Attempts of the last :meth:`run` that hit the per-cell timeout.
    last_run_timeouts: int = 0

    @abc.abstractmethod
    def run(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[ResultCallback] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[RunArtifact]:
        """Execute every cell and return one artifact per cell, in order.

        ``on_result`` fires as each cell completes, so callers (the
        Runner's cell cache) can persist progress before the whole batch
        is done — an interrupted sweep keeps its finished cells.
        ``policy`` applies per-cell timeout/retry guard-rails; the
        attempt counters land in ``last_run_retries`` /
        ``last_run_timeouts`` for the Runner's stats.
        """


class SerialBackend(ExecutionBackend):
    """Execute cells one after another in the current process.

    Accepts an optional ``resolver`` so ad-hoc (unregistered, possibly
    unpicklable) scheduler factories can be used — the escape hatch the
    legacy ``run_comparison(schedulers={...})`` API is built on.
    """

    name = "serial"

    def __init__(self, resolver: Optional[SchedulerResolver] = None) -> None:
        self._resolver = resolver

    def run(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[ResultCallback] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[RunArtifact]:
        self.last_run_retries = 0
        self.last_run_timeouts = 0
        counter = AttemptCounter()
        artifacts: List[RunArtifact] = []
        try:
            for index, spec in enumerate(specs):
                artifact = execute_run_with_policy(
                    spec, policy, self._resolver, counter
                )
                if on_result is not None:
                    on_result(index, artifact)
                artifacts.append(artifact)
        finally:
            self.last_run_retries = counter.retries
            self.last_run_timeouts = counter.timeouts
        return artifacts


def _execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: spec dict in, artifact dict out.

    Module-level (not a closure) so it is importable from spawned workers
    as well as forked ones.
    """
    return execute_run(RunSpec.from_dict(payload)).to_dict()


def _execute_payload_with_policy(
    payload: Dict[str, object], policy: Optional[ExecutionPolicy]
) -> Dict[str, object]:
    """Pool-worker entry point applying the execution policy in the worker.

    Timeout enforcement spawns a (grand)child process from the pool
    worker — pool workers are non-daemonic on the supported Python
    versions, so the watchdogged child is legal — and the attempt
    counters ride back next to the artifact dict.  A final failure is
    marshalled (not raised) so the counters survive; the parent
    re-raises after accounting for them.
    """
    spec = RunSpec.from_dict(payload)
    counter = AttemptCounter()
    try:
        artifact = execute_run_with_policy(spec, policy, counter=counter)
    except CellTimeoutError as exc:
        return {
            "error": str(exc),
            "timed_out": True,
            "retries": counter.retries,
            "timeouts": counter.timeouts,
        }
    except Exception as exc:  # noqa: BLE001 - marshalled to the parent
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "timed_out": False,
            "retries": counter.retries,
            "timeouts": counter.timeouts,
        }
    return {
        "artifact": artifact.to_dict(),
        "retries": counter.retries,
        "timeouts": counter.timeouts,
    }


class ProcessPoolBackend(ExecutionBackend):
    """Fan cells out over worker processes; bit-identical to serial order.

    Only registry-named schedulers are supported (specs are resolved
    inside the workers); ad-hoc factory objects cannot cross the process
    boundary.  ``max_workers=None`` uses one worker per CPU, capped at
    the number of cells.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = None if max_workers is None else int(max_workers)

    def run(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[ResultCallback] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[RunArtifact]:
        specs = list(specs)
        self.last_run_retries = 0
        self.last_run_timeouts = 0
        if not specs:
            return []
        use_policy = policy is not None and not policy.is_default
        workers = self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(specs)))
        artifacts: List[Optional[RunArtifact]] = [None] * len(specs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if use_policy:
                futures = {
                    pool.submit(_execute_payload_with_policy, spec.to_dict(), policy): index
                    for index, spec in enumerate(specs)
                }
            else:
                futures = {
                    pool.submit(_execute_payload, spec.to_dict()): index
                    for index, spec in enumerate(specs)
                }
            # Surface results (and persist them via on_result) as they
            # finish, not when the whole batch is done.
            for future in as_completed(futures):
                index = futures[future]
                payload = future.result()
                if use_policy:
                    self.last_run_retries += int(payload["retries"])
                    self.last_run_timeouts += int(payload["timeouts"])
                    if "error" in payload:
                        if payload["timed_out"]:
                            raise CellTimeoutError(payload["error"])
                        raise RuntimeError(payload["error"])
                    artifact = RunArtifact.from_dict(payload["artifact"])
                else:
                    artifact = RunArtifact.from_dict(payload)
                if on_result is not None:
                    on_result(index, artifact)
                artifacts[index] = artifact
        return list(artifacts)


#: Backend-name registry used by :func:`make_backend` and the CLI flags.
BACKENDS: Dict[str, type] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def make_backend(
    backend: Union[str, ExecutionBackend] = "serial",
    workers: Optional[int] = None,
    resolver: Optional[SchedulerResolver] = None,
) -> ExecutionBackend:
    """Build an execution backend from a name (or pass an instance through).

    ``workers`` selects the pool size for the process backend; asking for
    more than one worker with ``backend="serial"`` is an error (pick the
    process backend instead), as is a resolver with the process backend
    (resolvers cannot be shipped to workers).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = str(backend).lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(sorted(BACKENDS))}"
        )
    if name == SerialBackend.name:
        if workers is not None and int(workers) > 1:
            raise ValueError("the serial backend is single-worker; use backend='process'")
        return SerialBackend(resolver=resolver)
    if resolver is not None:
        raise ValueError("the process backend resolves schedulers via the registry only")
    return ProcessPoolBackend(max_workers=workers)
