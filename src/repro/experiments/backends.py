"""Pluggable execution backends for experiment grids.

A backend turns a list of :class:`~repro.experiments.spec.RunSpec` cells
into :class:`~repro.experiments.artifacts.RunArtifact`\\ s, preserving
input order.  Two backends ship with the repo:

* :class:`SerialBackend` — executes cells one after another in-process.
* :class:`ProcessPoolBackend` — fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Because a cell is a
  pure function of its spec (the scheduler is constructed fresh from the
  registry, the trace is generated from the spec's own seed inside the
  worker, and nothing is shared between cells), the pool produces
  artifacts *bit-identical* to serial execution — only faster.  Specs and
  artifacts cross the process boundary as plain dicts, so nothing
  unpicklable (scheduler instances, lambdas, RNG state) ever has to.

The free functions are the single execution path everything funnels
through: the legacy ``run_single``/``run_comparison`` shims call
:func:`simulate_trace`, and both backends call :func:`execute_run`.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.baselines.base import SchedulerBase
from repro.cluster.topology import make_longhorn_cluster
from repro.experiments.artifacts import RunArtifact
from repro.experiments.registry import create_scheduler
from repro.experiments.spec import RunSpec
from repro.jobs.job import JobSpec
from repro.sim.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.workload.trace import TraceGenerator

#: Resolver signature: ``(name, seed, **options) -> SchedulerBase``.
SchedulerResolver = Callable[..., SchedulerBase]


def simulate_trace(
    scheduler: SchedulerBase,
    trace: Sequence[JobSpec],
    num_gpus: int,
    simulation: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Replay an explicit ``trace`` under an instantiated ``scheduler``.

    The lowest-level entry point: builds the Longhorn-style topology and
    runs the discrete-event simulator.  Use :func:`simulate_run` when the
    run is described by a declarative :class:`RunSpec` instead.
    """
    topology = make_longhorn_cluster(num_gpus)
    simulator = ClusterSimulator(
        topology=topology,
        scheduler=scheduler,
        trace=list(trace),
        config=simulation,
    )
    return simulator.run()


def simulate_run(
    spec: RunSpec, resolver: Optional[SchedulerResolver] = None
) -> SimulationResult:
    """Execute one declarative cell and return the full in-process result.

    The returned :class:`SimulationResult` still carries its live ``Job``
    objects (unlike the serializable artifact), which examples use for
    per-job timelines.  ``resolver`` overrides how scheduler names are
    turned into instances; it defaults to the registry.
    """
    resolve = resolver or create_scheduler
    scheduler = resolve(spec.scheduler, spec.seed, **spec.scheduler_options)
    trace = TraceGenerator(spec.trace, seed=spec.seed).generate()
    return simulate_trace(scheduler, trace, spec.num_gpus, spec.simulation)


def execute_run(
    spec: RunSpec, resolver: Optional[SchedulerResolver] = None
) -> RunArtifact:
    """Execute one declarative cell and package it as a serializable artifact."""
    return RunArtifact.from_simulation(spec, simulate_run(spec, resolver))


#: Progress callback: ``(index_into_specs, artifact)``; called as each cell
#: completes (not necessarily in order on parallel backends).
ResultCallback = Callable[[int, RunArtifact], None]


class ExecutionBackend(abc.ABC):
    """Strategy for executing a batch of cells; results keep input order."""

    #: Registry name used by :func:`make_backend` and the CLI.
    name: str = "backend"

    @abc.abstractmethod
    def run(
        self, specs: Sequence[RunSpec], on_result: Optional[ResultCallback] = None
    ) -> List[RunArtifact]:
        """Execute every cell and return one artifact per cell, in order.

        ``on_result`` fires as each cell completes, so callers (the
        Runner's cell cache) can persist progress before the whole batch
        is done — an interrupted sweep keeps its finished cells.
        """


class SerialBackend(ExecutionBackend):
    """Execute cells one after another in the current process.

    Accepts an optional ``resolver`` so ad-hoc (unregistered, possibly
    unpicklable) scheduler factories can be used — the escape hatch the
    legacy ``run_comparison(schedulers={...})`` API is built on.
    """

    name = "serial"

    def __init__(self, resolver: Optional[SchedulerResolver] = None) -> None:
        self._resolver = resolver

    def run(
        self, specs: Sequence[RunSpec], on_result: Optional[ResultCallback] = None
    ) -> List[RunArtifact]:
        artifacts: List[RunArtifact] = []
        for index, spec in enumerate(specs):
            artifact = execute_run(spec, self._resolver)
            if on_result is not None:
                on_result(index, artifact)
            artifacts.append(artifact)
        return artifacts


def _execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: spec dict in, artifact dict out.

    Module-level (not a closure) so it is importable from spawned workers
    as well as forked ones.
    """
    return execute_run(RunSpec.from_dict(payload)).to_dict()


class ProcessPoolBackend(ExecutionBackend):
    """Fan cells out over worker processes; bit-identical to serial order.

    Only registry-named schedulers are supported (specs are resolved
    inside the workers); ad-hoc factory objects cannot cross the process
    boundary.  ``max_workers=None`` uses one worker per CPU, capped at
    the number of cells.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = None if max_workers is None else int(max_workers)

    def run(
        self, specs: Sequence[RunSpec], on_result: Optional[ResultCallback] = None
    ) -> List[RunArtifact]:
        specs = list(specs)
        if not specs:
            return []
        workers = self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(specs)))
        artifacts: List[Optional[RunArtifact]] = [None] * len(specs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_payload, spec.to_dict()): index
                for index, spec in enumerate(specs)
            }
            # Surface results (and persist them via on_result) as they
            # finish, not when the whole batch is done.
            for future in as_completed(futures):
                index = futures[future]
                artifact = RunArtifact.from_dict(future.result())
                if on_result is not None:
                    on_result(index, artifact)
                artifacts[index] = artifact
        return list(artifacts)


#: Backend-name registry used by :func:`make_backend` and the CLI flags.
BACKENDS: Dict[str, type] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def make_backend(
    backend: Union[str, ExecutionBackend] = "serial",
    workers: Optional[int] = None,
    resolver: Optional[SchedulerResolver] = None,
) -> ExecutionBackend:
    """Build an execution backend from a name (or pass an instance through).

    ``workers`` selects the pool size for the process backend; asking for
    more than one worker with ``backend="serial"`` is an error (pick the
    process backend instead), as is a resolver with the process backend
    (resolvers cannot be shipped to workers).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = str(backend).lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(sorted(BACKENDS))}"
        )
    if name == SerialBackend.name:
        if workers is not None and int(workers) > 1:
            raise ValueError("the serial backend is single-worker; use backend='process'")
        return SerialBackend(resolver=resolver)
    if resolver is not None:
        raise ValueError("the process backend resolves schedulers via the registry only")
    return ProcessPoolBackend(max_workers=workers)
