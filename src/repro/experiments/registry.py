"""Scheduler registry: string names -> factories + capabilities.

Every scheduler that can take part in an experiment registers itself
here under a canonical name (``"ONES"``, ``"Tiresias"``, ...), together
with its Table-3 :class:`~repro.baselines.base.SchedulerCapabilities`
row and a factory.  The registry is what makes experiments *declarative*:
a :class:`~repro.experiments.spec.RunSpec` references its scheduler by
name (a plain string that serializes to JSON and crosses process
boundaries), and whichever worker executes the cell resolves the name
back to a fresh scheduler instance via :func:`create_scheduler`.

Factories take the run seed plus optional keyword *options* (e.g.
``population_size`` for ONES, ``time_quantum`` for Gandiva) so scaled-down
test grids and ablations can be expressed in a spec without code.

Registering a new scheduler::

    @register_scheduler(
        "MyPolicy",
        capabilities=MyScheduler.capabilities,
        description="one-line summary for the CLI listing",
    )
    def _make_my_policy(seed, **options):
        return MyScheduler(seed=seed, **options)

Lookups are case-insensitive and accept aliases; unknown names raise
:class:`UnknownSchedulerError` listing what is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.base import SchedulerBase, SchedulerCapabilities
from repro.baselines.drl import DRLScheduler
from repro.baselines.fifo import FIFOScheduler
from repro.baselines.gandiva import GandivaScheduler
from repro.baselines.optimus import OptimusScheduler
from repro.baselines.srtf import SRTFScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.core.partitioned import HierarchicalConfig, HierarchicalONESScheduler
from repro.prediction.predictor import PredictorConfig

#: Factory signature: ``(seed, **options) -> SchedulerBase``.
SchedulerFactory = Callable[..., SchedulerBase]


class UnknownSchedulerError(KeyError):
    """Raised when a scheduler name does not resolve to a registry entry."""

    def __init__(self, name: str, available: Tuple[str, ...]) -> None:
        super().__init__(
            f"unknown scheduler {name!r}; available: {', '.join(available)}"
        )
        self.name = name
        self.available = available

    def __str__(self) -> str:  # KeyError quotes its repr by default
        return self.args[0]


@dataclass(frozen=True)
class SchedulerEntry:
    """One registered scheduler: name, factory and Table-3 capabilities."""

    name: str
    factory: SchedulerFactory
    capabilities: SchedulerCapabilities
    description: str = ""
    aliases: Tuple[str, ...] = ()
    #: Part of the paper's four-way Fig. 15 / Table 4 comparison.
    paper_baseline: bool = False

    def create(self, seed: int, **options) -> SchedulerBase:
        """Instantiate a fresh scheduler for one run."""
        return self.factory(seed, **options)

    def as_row(self) -> Dict[str, str]:
        """Scheduler name plus its Table-3 capability row (for listings)."""
        row: Dict[str, str] = {"Scheduler": self.name}
        row.update(self.capabilities.as_row())
        return row


_REGISTRY: Dict[str, SchedulerEntry] = {}
#: lowercase name/alias -> canonical name
_LOOKUP: Dict[str, str] = {}


def register_scheduler(
    name: str,
    *,
    capabilities: SchedulerCapabilities,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    paper_baseline: bool = False,
    replace: bool = False,
) -> Callable[[SchedulerFactory], SchedulerFactory]:
    """Decorator registering a factory under ``name`` (and ``aliases``).

    The decorated callable must accept ``(seed, **options)`` and return a
    fresh :class:`~repro.baselines.base.SchedulerBase`.  Re-registering a
    taken name (or alias) raises unless ``replace=True``.
    """
    if not name or not name.strip():
        raise ValueError("scheduler name must be a non-empty string")

    def decorator(factory: SchedulerFactory) -> SchedulerFactory:
        entry = SchedulerEntry(
            name=name,
            factory=factory,
            capabilities=capabilities,
            description=description,
            aliases=tuple(aliases),
            paper_baseline=paper_baseline,
        )
        keys = [name.lower()] + [alias.lower() for alias in entry.aliases]
        if not replace:
            for key in keys:
                if key in _LOOKUP:
                    raise ValueError(
                        f"scheduler name/alias {key!r} is already registered "
                        f"(to {_LOOKUP[key]!r}); pass replace=True to override"
                    )
        _REGISTRY[name] = entry
        for key in keys:
            _LOOKUP[key] = name
        return factory

    return decorator


def unregister_scheduler(name: str) -> None:
    """Remove a registered scheduler (and its aliases) by name or alias.

    Accepts the same case-insensitive names/aliases as every other
    lookup.  Mostly useful for tests and interactive experimentation;
    the built-in schedulers are registered at import time and normally
    stay put.
    """
    canonical = _LOOKUP.get(str(name).lower())
    if canonical is None:
        raise UnknownSchedulerError(str(name), available_schedulers())
    entry = _REGISTRY.pop(canonical)
    for key in [entry.name.lower()] + [alias.lower() for alias in entry.aliases]:
        _LOOKUP.pop(key, None)


def resolve(name: str) -> SchedulerEntry:
    """Look up a registry entry by canonical name or alias (case-insensitive)."""
    canonical = _LOOKUP.get(str(name).lower())
    if canonical is None:
        raise UnknownSchedulerError(str(name), available_schedulers())
    return _REGISTRY[canonical]


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered scheduler."""
    return str(name).lower() in _LOOKUP


def create_scheduler(name: str, seed: int, **options) -> SchedulerBase:
    """Instantiate a fresh scheduler by registry name."""
    return resolve(name).create(seed, **options)


def available_schedulers() -> Tuple[str, ...]:
    """Canonical names of every registered scheduler, in registration order."""
    return tuple(_REGISTRY)


def paper_schedulers() -> Tuple[str, ...]:
    """The schedulers of the paper's main comparison (Fig. 15 / Table 4)."""
    return tuple(name for name, entry in _REGISTRY.items() if entry.paper_baseline)


def capabilities_table() -> List[Dict[str, str]]:
    """Table-3 capability rows for every registered scheduler."""
    return [entry.as_row() for entry in _REGISTRY.values()]


# --- built-in registrations --------------------------------------------------------------
#
# ONES and the three paper baselines are flagged ``paper_baseline`` (the
# Fig. 15 four-way comparison); FIFO/SRTF/Gandiva are the extra reference
# policies the CLI exposes.


@register_scheduler(
    "ONES",
    capabilities=ONESScheduler.capabilities,
    description="online evolutionary batch-size orchestration (the paper's scheduler)",
    paper_baseline=True,
)
def _make_ones(
    seed: int,
    *,
    config: Optional[ONESConfig] = None,
    evolution: Optional[EvolutionConfig] = None,
    population_size: Optional[int] = None,
    mutation_rate: Optional[float] = None,
    crossover_pairs: Optional[int] = None,
    iterations_per_invocation: Optional[int] = None,
    incremental_scoring: Optional[bool] = None,
    refit_policy: Optional[str] = None,
    refit_interval: Optional[int] = None,
) -> ONESScheduler:
    """ONES factory.

    ``config``/``evolution`` take full configuration objects (programmatic
    use); the scalar options are JSON-friendly shortcuts for the common
    evolution knobs so declarative specs can scale the search down
    (``incremental_scoring`` toggles the delta-scoring generation kernel,
    parity-gated against the batched baseline), plus the GPR
    ``refit_policy``/``refit_interval`` pair so sweeps can trade
    predictor freshness for long-trace throughput (see
    :class:`~repro.prediction.predictor.PredictorConfig`).
    """
    if config is None:
        if evolution is None:
            overrides: Dict[str, object] = {}
            if population_size is not None:
                overrides["population_size"] = int(population_size)
            if mutation_rate is not None:
                overrides["mutation_rate"] = float(mutation_rate)
            if crossover_pairs is not None:
                overrides["crossover_pairs"] = int(crossover_pairs)
            if iterations_per_invocation is not None:
                overrides["iterations_per_invocation"] = int(iterations_per_invocation)
            if incremental_scoring is not None:
                overrides["incremental_scoring"] = bool(incremental_scoring)
            evolution = EvolutionConfig(**overrides)
        predictor_overrides: Dict[str, object] = {}
        if refit_policy is not None:
            predictor_overrides["refit_policy"] = str(refit_policy)
        if refit_interval is not None:
            predictor_overrides["refit_interval"] = int(refit_interval)
        config = ONESConfig(
            evolution=evolution,
            predictor=PredictorConfig(**predictor_overrides),
        )
    return ONESScheduler(config, seed=seed)


@register_scheduler(
    "ONES-hier",
    capabilities=HierarchicalONESScheduler.capabilities,
    description="hierarchical partitioned ONES: one search per shard + global reconciler",
    aliases=("ones-hierarchical",),
)
def _make_ones_hier(
    seed: int,
    *,
    config: Optional[HierarchicalConfig] = None,
    partition_size: Optional[int] = None,
    partitions: Optional[int] = None,
    parallel_workers: Optional[int] = None,
    evolution: Optional[EvolutionConfig] = None,
    population_size: Optional[int] = None,
    mutation_rate: Optional[float] = None,
    crossover_pairs: Optional[int] = None,
    iterations_per_invocation: Optional[int] = None,
    incremental_scoring: Optional[bool] = None,
    refit_policy: Optional[str] = None,
    refit_interval: Optional[int] = None,
) -> HierarchicalONESScheduler:
    """Hierarchical ONES factory.

    Mirrors the flat ONES scalar knobs (they configure every per-partition
    search) plus the hierarchy's own: ``partition_size`` in GPUs (default
    64, the paper scale), ``partitions`` as an explicit shard-count
    override (``partitions=1`` is the flat-parity mode), and
    ``parallel_workers`` for the process-pool evolve burst.
    """
    if config is None:
        inner = _make_ones(
            seed,
            evolution=evolution,
            population_size=population_size,
            mutation_rate=mutation_rate,
            crossover_pairs=crossover_pairs,
            iterations_per_invocation=iterations_per_invocation,
            incremental_scoring=incremental_scoring,
            refit_policy=refit_policy,
            refit_interval=refit_interval,
        ).config
        overrides: Dict[str, object] = {"ones": inner}
        if partition_size is not None:
            overrides["partition_size"] = int(partition_size)
        if partitions is not None:
            overrides["partitions"] = int(partitions)
        if parallel_workers is not None:
            overrides["parallel_workers"] = int(parallel_workers)
        config = HierarchicalConfig(**overrides)
    return HierarchicalONESScheduler(config, seed=seed)


@register_scheduler(
    "DRL",
    capabilities=DRLScheduler.capabilities,
    description="deep-RL scheduler in the style of Chic (greedy policy rollout)",
    paper_baseline=True,
)
def _make_drl(seed: int, *, greedy: bool = True) -> DRLScheduler:
    return DRLScheduler(seed=seed, greedy=bool(greedy))


@register_scheduler(
    "Tiresias",
    capabilities=TiresiasScheduler.capabilities,
    description="discretised least-attained-service multi-level feedback queue",
    paper_baseline=True,
)
def _make_tiresias(seed: int) -> TiresiasScheduler:
    return TiresiasScheduler()


@register_scheduler(
    "Optimus",
    capabilities=OptimusScheduler.capabilities,
    description="greedy marginal-gain allocation, reschedules every 10 minutes",
    paper_baseline=True,
)
def _make_optimus(seed: int, *, scheduling_interval: Optional[float] = None) -> OptimusScheduler:
    if scheduling_interval is None:
        return OptimusScheduler()
    return OptimusScheduler(scheduling_interval=float(scheduling_interval))


@register_scheduler(
    "Gandiva",
    capabilities=GandivaScheduler.capabilities,
    description="time-slicing with locality-driven migration",
)
def _make_gandiva(seed: int, *, time_quantum: Optional[float] = None) -> GandivaScheduler:
    if time_quantum is None:
        return GandivaScheduler()
    return GandivaScheduler(time_quantum=float(time_quantum))


@register_scheduler(
    "FIFO",
    capabilities=FIFOScheduler.capabilities,
    description="first-in-first-out gang scheduling at the requested size",
)
def _make_fifo(seed: int) -> FIFOScheduler:
    return FIFOScheduler()


@register_scheduler(
    "SRTF",
    capabilities=SRTFScheduler.capabilities,
    description="shortest-remaining-time-first with oracle remaining-time knowledge",
    aliases=("srtf-oracle",),
)
def _make_srtf(seed: int) -> SRTFScheduler:
    scheduler = SRTFScheduler()
    # Align the report label with the registry name so a single run never
    # shows up as "SRTF" in one table and "SRTF-oracle" in another.
    scheduler.name = "SRTF"
    return scheduler
