"""Markdown report generation for comparison experiments.

``build_comparison_report`` turns a :class:`ComparisonResult` into a
self-contained Markdown document (headline averages, distributions,
improvements, Wilcoxon tests, per-scheduler telemetry), which the CLI can
write next to the exported CSV/JSON artefacts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import compare_results, completion_fraction_within
from repro.analysis.stats import significance_table
from repro.experiments.runner import ComparisonResult
from repro.sim.telemetry import summarize_run

PathLike = Union[str, Path]


def _markdown_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "_(no data)_"
    columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.2f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def build_comparison_report(
    comparison: ComparisonResult,
    reference: str = "ONES",
    title: str = "Scheduler comparison report",
) -> str:
    """Build the full Markdown report for a comparison run."""
    results = list(comparison.results.values())
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        f"- Cluster: **{comparison.config.num_gpus} GPUs** "
        f"({comparison.config.num_gpus // 4} Longhorn-style nodes)"
    )
    lines.append(f"- Trace: **{len(comparison.trace)} jobs**, seed {comparison.config.seed}")
    lines.append(f"- Schedulers: {', '.join(comparison.results)}")
    lines.append("")

    # Headline averages.
    lines.append("## Average metrics")
    lines.append("")
    rows = []
    for name, result in comparison.results.items():
        rows.append(
            {
                "scheduler": name,
                "avg JCT (s)": result.average_jct,
                "avg execution (s)": result.average_execution_time,
                "avg queuing (s)": result.average_queuing_time,
                "GPU utilisation": result.gpu_utilization,
                "incomplete jobs": len(result.incomplete),
            }
        )
    lines.append(_markdown_table(rows))
    lines.append("")

    # Distributions.
    lines.append("## JCT distribution")
    lines.append("")
    summaries = compare_results(results, "jct")
    lines.append(
        _markdown_table(
            [
                {
                    "scheduler": name,
                    "p25": s.stats.p25,
                    "median": s.stats.median,
                    "p75": s.stats.p75,
                    "max": s.stats.maximum,
                    "jobs within 200 s": f"{100 * s.fraction_within(200.0):.0f}%",
                }
                for name, s in summaries.items()
            ]
        )
    )
    lines.append("")

    # Improvements + significance relative to the reference scheduler.
    if reference in comparison.results:
        lines.append(f"## {reference} vs the baselines")
        lines.append("")
        improvements = comparison.improvements(reference)
        ref_result = comparison.results[reference]
        baselines = [r for n, r in comparison.results.items() if n != reference]
        tests = significance_table(ref_result, baselines)
        rows = []
        for name, value in improvements.items():
            report = tests.get(name)
            rows.append(
                {
                    "baseline": name,
                    "avg JCT reduction": f"{100 * value:.1f}%",
                    "p (two-sided)": report.p_two_sided if report else float("nan"),
                    "p (one-sided negative)": report.p_one_sided_greater if report else float("nan"),
                    "significant": "yes" if report and report.ours_is_smaller else "no",
                }
            )
        lines.append(_markdown_table(rows))
        lines.append("")

    # Telemetry.
    lines.append("## Cluster telemetry")
    lines.append("")
    lines.append(
        _markdown_table(
            [summarize_run(result).as_dict() for result in comparison.results.values()]
        )
    )
    lines.append("")
    lines.append(
        "_Fraction-of-jobs and utilisation figures are computed from the same "
        "simulation traces as the averages above._"
    )
    return "\n".join(lines)


def write_comparison_report(
    comparison: ComparisonResult,
    path: PathLike,
    reference: str = "ONES",
    title: str = "Scheduler comparison report",
) -> Path:
    """Build the report and write it to ``path``; returns the path."""
    path = Path(path)
    path.write_text(build_comparison_report(comparison, reference=reference, title=title) + "\n")
    return path
