"""Markdown report generation for comparison and sweep experiments.

``build_comparison_report`` turns a :class:`ComparisonResult` into a
self-contained Markdown document (headline averages, distributions,
improvements, Wilcoxon tests, per-scheduler telemetry), which the CLI can
write next to the exported CSV/JSON artefacts.  When the comparison came
out of the declarative Runner, the pre-computed per-run telemetry stored
in its :class:`~repro.experiments.artifacts.RunArtifact`\\ s is used —
job-less results reconstructed from artifacts carry no ``Job`` objects
to summarize from.  ``build_sweep_report`` renders a whole
:class:`~repro.experiments.artifacts.SweepArtifact` grid (the Fig. 17/18
tables) the same way.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import compare_results, completion_fraction_within
from repro.analysis.stats import significance_table
from repro.experiments.artifacts import SweepArtifact
from repro.experiments.runner import ComparisonResult
from repro.sim.telemetry import summarize_run

PathLike = Union[str, Path]


def _markdown_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "_(no data)_"
    columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.2f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def build_comparison_report(
    comparison: ComparisonResult,
    reference: str = "ONES",
    title: str = "Scheduler comparison report",
) -> str:
    """Build the full Markdown report for a comparison run."""
    results = list(comparison.results.values())
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        f"- Cluster: **{comparison.config.num_gpus} GPUs** "
        f"({comparison.config.num_gpus // 4} Longhorn-style nodes)"
    )
    lines.append(f"- Trace: **{len(comparison.trace)} jobs**, seed {comparison.config.seed}")
    lines.append(f"- Schedulers: {', '.join(comparison.results)}")
    lines.append("")

    # Headline averages.
    lines.append("## Average metrics")
    lines.append("")
    rows = []
    for name, result in comparison.results.items():
        rows.append(
            {
                "scheduler": name,
                "avg JCT (s)": result.average_jct,
                "avg execution (s)": result.average_execution_time,
                "avg queuing (s)": result.average_queuing_time,
                "GPU utilisation": result.gpu_utilization,
                "incomplete jobs": len(result.incomplete),
            }
        )
    lines.append(_markdown_table(rows))
    lines.append("")

    # Distributions.
    lines.append("## JCT distribution")
    lines.append("")
    summaries = compare_results(results, "jct")
    lines.append(
        _markdown_table(
            [
                {
                    "scheduler": name,
                    "p25": s.stats.p25,
                    "median": s.stats.median,
                    "p75": s.stats.p75,
                    "max": s.stats.maximum,
                    "jobs within 200 s": f"{100 * s.fraction_within(200.0):.0f}%",
                }
                for name, s in summaries.items()
            ]
        )
    )
    lines.append("")

    # Improvements + significance relative to the reference scheduler.
    if reference in comparison.results:
        lines.append(f"## {reference} vs the baselines")
        lines.append("")
        improvements = comparison.improvements(reference)
        ref_result = comparison.results[reference]
        baselines = [r for n, r in comparison.results.items() if n != reference]
        tests = significance_table(ref_result, baselines)
        rows = []
        for name, value in improvements.items():
            report = tests.get(name)
            rows.append(
                {
                    "baseline": name,
                    "avg JCT reduction": f"{100 * value:.1f}%",
                    "p (two-sided)": report.p_two_sided if report else float("nan"),
                    "p (one-sided negative)": report.p_one_sided_greater if report else float("nan"),
                    "significant": "yes" if report and report.ours_is_smaller else "no",
                }
            )
        lines.append(_markdown_table(rows))
        lines.append("")

    # Telemetry: prefer the summaries captured at simulation time
    # (artifact-backed comparisons have no live Job objects left).
    lines.append("## Cluster telemetry")
    lines.append("")
    telemetry_rows = []
    for name, result in comparison.results.items():
        artifact = comparison.artifacts.get(name)
        if artifact is not None and artifact.telemetry:
            telemetry_rows.append(dict(artifact.telemetry))
        else:
            telemetry_rows.append(summarize_run(result).as_dict())
    lines.append(_markdown_table(telemetry_rows))
    lines.append("")
    lines.append(
        "_Fraction-of-jobs and utilisation figures are computed from the same "
        "simulation traces as the averages above._"
    )
    return "\n".join(lines)


def write_comparison_report(
    comparison: ComparisonResult,
    path: PathLike,
    reference: str = "ONES",
    title: str = "Scheduler comparison report",
) -> Path:
    """Build the report and write it to ``path``; returns the path."""
    path = Path(path)
    path.write_text(build_comparison_report(comparison, reference=reference, title=title) + "\n")
    return path


def build_sweep_report(
    sweep: "SweepArtifact",
    reference: str = "ONES",
    title: str = "Scalability sweep report",
) -> str:
    """Markdown report of a declarative sweep (Fig. 17/18 style tables)."""
    spec = sweep.spec
    lines: List[str] = [f"# {title}", ""]
    lines.append(f"- Schedulers: {', '.join(spec.schedulers)}")
    lines.append(f"- Capacities: {', '.join(str(c) for c in spec.capacities)} GPUs")
    lines.append(f"- Seeds: {', '.join(str(s) for s in spec.seeds)}")
    lines.append(
        f"- Traces: {', '.join(str(t.num_jobs) + ' jobs' for t in spec.traces)}"
    )
    lines.append("")

    for metric, heading in (
        ("jct", "Average JCT (s) vs cluster capacity (Fig. 17)"),
        ("queuing_time", "Average queuing time (s) vs cluster capacity"),
    ):
        table = sweep.mean_metric_table(metric)
        lines.append(f"## {heading}")
        lines.append("")
        lines.append(
            _markdown_table(
                [
                    {"scheduler": name, **{f"{c} GPUs": by_cap.get(c, float("nan"))
                                           for c in spec.capacities}}
                    for name, by_cap in table.items()
                ]
            )
        )
        lines.append("")

    # relative_to divides by the reference cell's mean, which a dead
    # placeholder cannot provide — skip the ratio table in that case
    # (the "Dead cells" section below explains why).
    if reference in spec.schedulers and not sweep.dead_runs():
        relative = sweep.relative_to(reference, "jct")
        lines.append(f"## Relative JCT, {reference} = 1.0 (Fig. 18)")
        lines.append("")
        lines.append(
            _markdown_table(
                [
                    {"scheduler": name, **{f"{c} GPUs": by_cap.get(c, float("nan"))
                                           for c in spec.capacities}}
                    for name, by_cap in relative.items()
                ]
            )
        )
        lines.append("")

    # Robustness sweeps carry a fault axis: surface the recovery metrics
    # (goodput, evictions, restarts, lost GPU-seconds, downtime) and the
    # JCT-degradation headline for every faulted slice of the grid.
    for fault_index, fault in enumerate(spec.faults):
        if fault is None:
            continue
        lines.append(f"## Fault recovery — {fault.describe()}")
        lines.append("")
        if None in spec.faults:
            degradation = sweep.fault_degradation("jct", fault_index=fault_index)
            lines.append("JCT degradation vs the zero-fault twin cells "
                         "(1.0 = faults fully absorbed):")
            lines.append("")
            lines.append(
                _markdown_table(
                    [
                        {"scheduler": name, "JCT degradation": value}
                        for name, value in degradation.items()
                    ]
                )
            )
            lines.append("")
        recovery_rows = [
            {
                "cell": row["cell"],
                "avg JCT (s)": row["average_jct"],
                "goodput": row["goodput"],
                "evictions": row["evictions"],
                "restarts": row["restarts"],
                "lost GPU-s": row["lost_gpu_seconds"],
                "downtime GPU-s": row["downtime_gpu_seconds"],
                "incomplete": row["incomplete"],
            }
            for row in sweep.recovery_table(fault_index=fault_index)
        ]
        lines.append(_markdown_table(recovery_rows))
        lines.append("")

    dead = sweep.dead_runs()
    if dead:
        lines.append("## Dead cells")
        lines.append("")
        lines.append(
            "The following cells exhausted their retry budget and are "
            "reported as placeholders — their metrics are excluded from "
            "every table above."
        )
        lines.append("")
        lines.append(
            _markdown_table(
                [
                    {
                        "cell": run.spec.label(),
                        "cell_key": run.spec.cell_key(),
                        "error": (run.error or "")[:80],
                    }
                    for run in dead
                ]
            )
        )
        lines.append("")
    lines.append(
        "_Values are means over the grid's seeds and traces; per-cell results "
        "live in the sweep artifact JSON._"
    )
    return "\n".join(lines)


def write_sweep_report(
    sweep: "SweepArtifact",
    path: PathLike,
    reference: str = "ONES",
    title: str = "Scalability sweep report",
) -> Path:
    """Build the sweep report and write it to ``path``; returns the path."""
    path = Path(path)
    path.write_text(build_sweep_report(sweep, reference=reference, title=title) + "\n")
    return path
