"""Legacy experiment entry points (thin shims over the declarative API).

The orchestration layer now lives in :mod:`repro.experiments.spec`
(declarative grids), :mod:`repro.experiments.backends` (serial /
process-pool execution) and :mod:`repro.experiments.orchestrator` (the
:class:`~repro.experiments.orchestrator.Runner` with caching and
resume).  The functions here keep the original positional API alive —
``run_single`` replays one trace under one scheduler, ``run_comparison``
the Fig. 15 / Table 4 setup, ``run_scalability_sweep`` the Fig. 17/18
sweep — by delegating to the shared execution path
(:func:`repro.experiments.backends.simulate_trace`).  New code should
build an :class:`~repro.experiments.spec.ExperimentSpec` and hand it to
a :class:`~repro.experiments.orchestrator.Runner` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import mean_metric, relative_jct
from repro.baselines.base import SchedulerBase
from repro.experiments.backends import simulate_trace
from repro.experiments.config import ExperimentConfig, SchedulerFactory
from repro.jobs.job import JobSpec
from repro.sim.simulator import SimulationResult
from repro.workload.trace import TraceGenerator

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from repro.experiments.artifacts import RunArtifact


def run_single(
    scheduler: SchedulerBase,
    trace: Sequence[JobSpec],
    config: ExperimentConfig,
) -> SimulationResult:
    """Replay ``trace`` under ``scheduler`` on a cluster of ``config.num_gpus``."""
    return simulate_trace(scheduler, trace, config.num_gpus, config.simulation)


@dataclass
class ComparisonResult:
    """Results of running the same trace under several schedulers.

    ``artifacts`` is populated when the comparison came out of the
    declarative Runner (one serializable
    :class:`~repro.experiments.artifacts.RunArtifact` per scheduler);
    reports prefer its pre-computed telemetry when present.
    """

    config: ExperimentConfig
    trace: List[JobSpec]
    results: Dict[str, SimulationResult] = field(default_factory=dict)
    artifacts: Dict[str, "RunArtifact"] = field(default_factory=dict)

    def averages(self, metric: str = "jct") -> Dict[str, float]:
        """Average of ``metric`` per scheduler."""
        return {
            name: mean_metric(result, metric)
            for name, result in self.results.items()
        }

    def improvements(self, reference: str = "ONES", metric: str = "jct") -> Dict[str, float]:
        """Relative improvement of ``reference`` over every other scheduler."""
        if reference not in self.results:
            raise KeyError(f"{reference!r} is not part of this comparison")
        averages = self.averages(metric)
        reference_average = averages[reference]
        improvements: Dict[str, float] = {}
        for name, average in averages.items():
            if name == reference:
                continue
            if average <= 0:
                raise ValueError("baseline average must be positive")
            improvements[name] = 1.0 - reference_average / average
        return improvements

    def relative_jct(self, reference: str = "ONES") -> Dict[str, float]:
        """Per-scheduler average JCT normalised to ``reference`` (Fig. 18)."""
        return relative_jct(self.results, reference)


def generate_trace(config: ExperimentConfig) -> List[JobSpec]:
    """Generate the shared trace of an experiment from its configuration."""
    return TraceGenerator(config.trace, seed=config.seed).generate()


def run_comparison(
    config: Optional[ExperimentConfig] = None,
    trace: Optional[Sequence[JobSpec]] = None,
    schedulers: Optional[Mapping[str, SchedulerFactory]] = None,
) -> ComparisonResult:
    """Run every scheduler on the same trace and cluster."""
    config = config or ExperimentConfig()
    trace = list(trace) if trace is not None else generate_trace(config)
    factories = dict(schedulers) if schedulers is not None else config.scheduler_factories()
    comparison = ComparisonResult(config=config, trace=list(trace))
    for name, factory in factories.items():
        scheduler = factory(config.seed)
        comparison.results[name] = run_single(scheduler, trace, config)
    return comparison


def run_scalability_sweep(
    capacities: Sequence[int] = (16, 32, 48, 64),
    base_config: Optional[ExperimentConfig] = None,
    schedulers: Optional[Mapping[str, SchedulerFactory]] = None,
) -> Dict[int, ComparisonResult]:
    """Repeat the comparison for several cluster capacities (Fig. 17/18)."""
    base_config = base_config or ExperimentConfig()
    sweep: Dict[int, ComparisonResult] = {}
    for capacity in capacities:
        # dataclasses.replace keeps every other field — including ones
        # added to ExperimentConfig later — instead of copying a
        # hand-picked subset.
        config = replace(base_config, num_gpus=int(capacity))
        sweep[int(capacity)] = run_comparison(config, schedulers=schedulers)
    return sweep
