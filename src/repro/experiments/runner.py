"""Experiment runners.

``run_single`` replays one trace under one scheduler; ``run_comparison``
replays the *same* trace under several schedulers (the Fig. 15 / Table 4
setup); ``run_scalability_sweep`` repeats the comparison across cluster
capacities (Fig. 17/18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import improvement_over, relative_jct
from repro.baselines.base import SchedulerBase
from repro.cluster.topology import make_longhorn_cluster
from repro.experiments.config import ExperimentConfig, SchedulerFactory
from repro.jobs.job import JobSpec
from repro.sim.simulator import ClusterSimulator, SimulationResult
from repro.workload.trace import TraceGenerator


def run_single(
    scheduler: SchedulerBase,
    trace: Sequence[JobSpec],
    config: ExperimentConfig,
) -> SimulationResult:
    """Replay ``trace`` under ``scheduler`` on a cluster of ``config.num_gpus``."""
    topology = make_longhorn_cluster(config.num_gpus)
    simulator = ClusterSimulator(
        topology=topology,
        scheduler=scheduler,
        trace=list(trace),
        config=config.simulation,
    )
    return simulator.run()


@dataclass
class ComparisonResult:
    """Results of running the same trace under several schedulers."""

    config: ExperimentConfig
    trace: List[JobSpec]
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def averages(self, metric: str = "jct") -> Dict[str, float]:
        """Average of ``metric`` per scheduler."""
        from repro.analysis.metrics import metric_values

        return {
            name: float(metric_values(result, metric).mean())
            for name, result in self.results.items()
        }

    def improvements(self, reference: str = "ONES", metric: str = "jct") -> Dict[str, float]:
        """Relative improvement of ``reference`` over every other scheduler."""
        if reference not in self.results:
            raise KeyError(f"{reference!r} is not part of this comparison")
        ref = self.results[reference]
        return {
            name: improvement_over(ref, result, metric)
            for name, result in self.results.items()
            if name != reference
        }

    def relative_jct(self, reference: str = "ONES") -> Dict[str, float]:
        """Per-scheduler average JCT normalised to ``reference`` (Fig. 18)."""
        return relative_jct(self.results, reference)


def generate_trace(config: ExperimentConfig) -> List[JobSpec]:
    """Generate the shared trace of an experiment from its configuration."""
    return TraceGenerator(config.trace, seed=config.seed).generate()


def run_comparison(
    config: Optional[ExperimentConfig] = None,
    trace: Optional[Sequence[JobSpec]] = None,
    schedulers: Optional[Mapping[str, SchedulerFactory]] = None,
) -> ComparisonResult:
    """Run every scheduler on the same trace and cluster."""
    config = config or ExperimentConfig()
    trace = list(trace) if trace is not None else generate_trace(config)
    factories = dict(schedulers) if schedulers is not None else config.scheduler_factories()
    comparison = ComparisonResult(config=config, trace=list(trace))
    for name, factory in factories.items():
        scheduler = factory(config.seed)
        comparison.results[name] = run_single(scheduler, trace, config)
    return comparison


def run_scalability_sweep(
    capacities: Sequence[int] = (16, 32, 48, 64),
    base_config: Optional[ExperimentConfig] = None,
    schedulers: Optional[Mapping[str, SchedulerFactory]] = None,
) -> Dict[int, ComparisonResult]:
    """Repeat the comparison for several cluster capacities (Fig. 17/18)."""
    base_config = base_config or ExperimentConfig()
    sweep: Dict[int, ComparisonResult] = {}
    for capacity in capacities:
        config = ExperimentConfig(
            num_gpus=int(capacity),
            trace=base_config.trace,
            simulation=base_config.simulation,
            seed=base_config.seed,
            schedulers=base_config.schedulers,
        )
        sweep[int(capacity)] = run_comparison(config, schedulers=schedulers)
    return sweep
