"""The experiment Runner: expand a grid, execute it, cache the cells.

:class:`Runner` is the orchestration layer on top of the declarative
specs and the execution backends::

    spec = ExperimentSpec.scalability(capacities=(16, 32, 48, 64))
    runner = Runner(backend="process", workers=4, cache_dir="results/cells")
    sweep = runner.run(spec, resume=True)

* **Backends** — ``backend="serial"``, ``"process"`` or ``"queue"``
  (the durable lease-based work queue for sweeps that must survive
  worker churn — pass ``queue_dir=``; see
  :mod:`repro.experiments.backends` and
  :mod:`repro.experiments.queue`); an :class:`ExecutionBackend`
  instance is also accepted.
* **Caching** — with a ``cache_dir``, every executed cell is written to
  ``cell-<content-key>.json``.  The key hashes the *entire* cell spec, so
  any change to the grid produces different keys and can never collide
  with stale results.
* **Resume** — ``resume=True`` loads cached cells instead of re-running
  them; only the missing cells are dispatched to the backend.  A cached
  file whose embedded spec does not match the cell (corruption, hash
  collision, hand editing) is ignored and the cell re-runs.
* **Execution policy** — ``timeout_s`` bounds each cell attempt's
  wall-clock (the cell runs in a watchdogged subprocess and is killed on
  overrun) and ``max_retries`` re-runs a cell that timed out or errored,
  up to that many extra attempts.  Exhausting the budget raises
  (:class:`~repro.experiments.backends.CellTimeoutError` for timeouts);
  attempt counts land in :attr:`RunnerStats.retried_cells` /
  :attr:`RunnerStats.timed_out_cells` either way.

After :meth:`Runner.run`, :attr:`Runner.stats` says how many cells were
executed vs served from cache, how many attempts were retried or timed
out, and how long the sweep took.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.artifacts import RunArtifact, SweepArtifact
from repro.experiments.backends import (
    ExecutionBackend,
    ExecutionPolicy,
    SchedulerResolver,
    make_backend,
)
from repro.experiments.spec import ExperimentSpec, RunSpec

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RunnerStats:
    """Bookkeeping of one :meth:`Runner.run` invocation.

    ``retried_cells`` counts extra attempts the execution policy spent
    (a cell retried twice contributes two); ``timed_out_cells`` counts
    attempts that hit the per-cell timeout (a timeout that a retry then
    recovered still counts — it is a signal the budget is tight).  The
    queue backend adds its lifecycle counters: ``claimed_cells`` (worker
    claims, including re-claims after churn), ``expired_leases`` (dead
    workers whose cells were recovered) and ``dead_cells`` (cells that
    exhausted their retry budget and were reported as placeholders).
    """

    total_cells: int = 0
    executed_cells: int = 0
    cached_cells: int = 0
    wall_time: float = 0.0
    retried_cells: int = 0
    timed_out_cells: int = 0
    claimed_cells: int = 0
    expired_leases: int = 0
    dead_cells: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for logs and reports."""
        return {
            "total_cells": self.total_cells,
            "executed_cells": self.executed_cells,
            "cached_cells": self.cached_cells,
            "wall_time": self.wall_time,
            "retried_cells": self.retried_cells,
            "timed_out_cells": self.timed_out_cells,
            "claimed_cells": self.claimed_cells,
            "expired_leases": self.expired_leases,
            "dead_cells": self.dead_cells,
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"{self.total_cells} cells: {self.executed_cells} executed, "
            f"{self.cached_cells} from cache in {self.wall_time:.1f}s"
        )
        parts = []
        if self.retried_cells or self.timed_out_cells:
            parts.append(f"{self.retried_cells} retried")
            parts.append(f"{self.timed_out_cells} timed out")
        if self.expired_leases:
            parts.append(f"{self.expired_leases} leases expired")
        if self.dead_cells:
            parts.append(f"{self.dead_cells} dead")
        if parts:
            line += " (" + ", ".join(parts) + ")"
        return line


class Runner:
    """Executes declarative experiment grids through a pluggable backend."""

    def __init__(
        self,
        backend: Union[str, ExecutionBackend] = "serial",
        workers: Optional[int] = None,
        cache_dir: Optional[PathLike] = None,
        resolver: Optional[SchedulerResolver] = None,
        timeout_s: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
        queue_dir: Optional[PathLike] = None,
        lease_ttl: float = 30.0,
    ) -> None:
        self.backend = make_backend(
            backend,
            workers=workers,
            resolver=resolver,
            queue_dir=queue_dir,
            lease_ttl=lease_ttl,
        )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.policy = ExecutionPolicy(
            timeout_s=timeout_s,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
        )
        self.stats = RunnerStats()

    # -- public API ---------------------------------------------------------------------

    def run(self, spec: ExperimentSpec, resume: bool = False) -> SweepArtifact:
        """Execute (or resume) the grid; returns one artifact per cell, in order."""
        start = time.perf_counter()
        cells = spec.expand()
        artifacts: List[Optional[RunArtifact]] = [None] * len(cells)
        pending: List[int] = []
        for index, cell in enumerate(cells):
            cached = self._load_cached(cell) if resume else None
            if cached is not None:
                artifacts[index] = cached
            else:
                pending.append(index)
        # Cells are cached the moment they complete (not after the whole
        # batch), so an interrupted sweep keeps its finished cells and a
        # --resume only pays for what is actually missing.  Stats are
        # recorded even when a cell ultimately fails (try/finally), so a
        # raised CellTimeoutError still leaves honest attempt counts.
        try:
            fresh = self.backend.run(
                [cells[index] for index in pending],
                on_result=lambda _, artifact: self._store(artifact),
                policy=self.policy,
            )
        finally:
            self.stats = RunnerStats(
                total_cells=len(cells),
                executed_cells=len(pending),
                cached_cells=len(cells) - len(pending),
                wall_time=time.perf_counter() - start,
                retried_cells=self.backend.last_run_retries,
                timed_out_cells=self.backend.last_run_timeouts,
                claimed_cells=self.backend.last_run_claimed,
                expired_leases=self.backend.last_run_expired_leases,
                dead_cells=self.backend.last_run_dead,
            )
        for index, artifact in zip(pending, fresh):
            artifacts[index] = artifact
        return SweepArtifact(spec=spec, runs=list(artifacts))

    def run_cells(self, cells: Sequence[RunSpec]) -> List[RunArtifact]:
        """Execute an explicit list of cells (no grid, no cache), in order."""
        return self.backend.run(list(cells), policy=self.policy)

    # -- cell cache ---------------------------------------------------------------------

    def cell_path(self, cell: RunSpec) -> Optional[Path]:
        """Where ``cell``'s artifact is cached (``None`` without a cache_dir)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"cell-{cell.cell_key()}.json"

    def _load_cached(self, cell: RunSpec) -> Optional[RunArtifact]:
        path = self.cell_path(cell)
        if path is None or not path.exists():
            return None
        try:
            artifact = RunArtifact.from_json(path.read_text())
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            return None
        # Content keys make collisions astronomically unlikely, but a
        # hand-edited or truncated file must never masquerade as a result.
        if artifact.spec.to_dict() != cell.to_dict():
            return None
        return artifact

    def _store(self, artifact: RunArtifact) -> None:
        path = self.cell_path(artifact.spec)
        # Dead-cell placeholders must never enter the cache: a --resume
        # should re-attempt the cell, not re-serve the failure.
        if path is None or artifact.is_dead:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(artifact.to_json() + "\n")


def run_experiment(
    spec: ExperimentSpec,
    backend: Union[str, ExecutionBackend] = "serial",
    workers: Optional[int] = None,
    cache_dir: Optional[PathLike] = None,
    resume: bool = False,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.0,
    queue_dir: Optional[PathLike] = None,
    lease_ttl: float = 30.0,
) -> SweepArtifact:
    """One-shot convenience wrapper around :class:`Runner`."""
    return Runner(
        backend=backend,
        workers=workers,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        queue_dir=queue_dir,
        lease_ttl=lease_ttl,
    ).run(spec, resume=resume)
