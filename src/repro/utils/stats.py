"""Summary-statistics helpers shared by the analysis and reporting layers.

The paper reports average job completion time, box-plot style
distributions and cumulative-frequency curves (Fig. 15).  The helpers
here compute those summaries from raw per-job measurements in a single
vectorised pass so that every benchmark and report prints numbers that
are derived identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Five-number summary plus mean/std of a sample.

    Attributes mirror what a box plot displays (Fig. 15 d/e/f): the
    median, the quartiles, the whisker extremes, plus the mean and
    standard deviation used for the bar charts (Fig. 15 a/b/c).
    """

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def as_dict(self) -> dict:
        """Return the summary as a plain dictionary (for reporting)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` over ``values``.

    Raises :class:`ValueError` on an empty sample — an empty experiment
    result almost always indicates a misconfigured run and should not be
    silently reported as zeros.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SummaryStats(
        count=int(arr.size),
        mean=float(np.mean(arr)),
        std=float(np.std(arr)),
        minimum=float(np.min(arr)),
        p25=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        maximum=float(np.max(arr)),
    )


def percentile_summary(
    values: Iterable[float], percentiles: Sequence[float] = (50, 90, 95, 99)
) -> dict:
    """Return ``{percentile: value}`` for the requested percentiles."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return {float(p): float(np.percentile(arr, p)) for p in percentiles}


def cumulative_frequency(
    values: Iterable[float], num_points: int = 200, log_space: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute a cumulative-frequency curve ``(x, cf)`` for ``values``.

    ``cf[i]`` is the fraction of samples that are ``<= x[i]``.  When
    ``log_space`` is true the x grid is log-spaced, matching the log-scale
    x axes of Fig. 15 g/h.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build a CF curve from an empty sample")
    lo, hi = float(arr[0]), float(arr[-1])
    if lo == hi:
        x = np.array([lo, hi])
        return x, np.array([1.0, 1.0])
    if log_space:
        lo = max(lo, 1e-9)
        x = np.logspace(np.log10(lo), np.log10(hi), num_points)
    else:
        x = np.linspace(lo, hi, num_points)
    cf = np.searchsorted(arr, x, side="right") / arr.size
    return x, cf


def fraction_below(values: Iterable[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold``.

    Used for statements like *"the fraction of jobs completed within 200 s
    is 86%"* (§4.2 of the paper).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute a fraction over an empty sample")
    return float(np.mean(arr < threshold))


@dataclass
class RunningMean:
    """Numerically stable streaming mean/variance (Welford).

    The simulator uses this to profile per-job throughput online — the
    paper (§3.2.1) uses "the mean value of collected measures".
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def update(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance))
