"""Lightweight argument-validation helpers.

The simulator and scheduler take many scalar configuration parameters
(batch sizes, rates, probabilities).  Misconfiguration should fail fast
with a clear message rather than surfacing as a confusing downstream
numerical error; these helpers centralise the checks.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Optional, Tuple, Type, Union


def check_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = ", ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(
            f"{name} must be of type {expected}, got {type(value).__name__}"
        )
    return value


def check_positive(value: Real, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is a finite number > 0."""
    value = _check_real(value, name)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return float(value)


def check_non_negative(value: Real, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is a finite number >= 0."""
    value = _check_real(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return float(value)


def check_probability(value: Real, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` lies in ``[0, 1]``."""
    value = _check_real(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_in_range(
    value: Real,
    name: str,
    low: Optional[Real] = None,
    high: Optional[Real] = None,
    inclusive: bool = True,
) -> float:
    """Raise :class:`ValueError` unless ``low <(=) value <(=) high``."""
    value = _check_real(value, name)
    if inclusive:
        if low is not None and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if high is not None and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
    else:
        if low is not None and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
        if high is not None and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return float(value)


def check_positive_int(value: Any, name: str) -> int:
    """Raise unless ``value`` is an integer >= 1; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def _check_real(value: Real, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"{name} must be finite, got {value}")
    return value
