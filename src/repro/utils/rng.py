"""Deterministic random-number management.

Every stochastic component of the reproduction (trace generation, the
evolutionary search, the DRL baseline, the progress predictor's sampling
step) draws from a :class:`numpy.random.Generator`.  To keep experiments
reproducible while still letting independent components draw independent
streams, we derive named child generators from a single root seed using
``numpy``'s ``SeedSequence`` spawning machinery.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence``
    or an existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def _name_to_offset(name: str) -> int:
    """Map a stream name to a stable 32-bit integer offset."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def spawn_generator(seed: SeedLike, name: str) -> np.random.Generator:
    """Derive an independent, named child generator from ``seed``.

    The same ``(seed, name)`` pair always yields the same stream, and two
    different names yield streams that are statistically independent.
    """
    if isinstance(seed, np.random.Generator):
        # Derive a child deterministically from the generator's state by
        # drawing a seed value from it.  This keeps child streams decoupled
        # from later draws on the parent only if called before further use;
        # factories should prefer integer root seeds.
        base = int(seed.integers(0, 2**32 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    elif seed is None:
        base = int(np.random.SeedSequence().generate_state(1)[0])
    else:
        base = int(seed)
    mixed = np.random.SeedSequence([base, _name_to_offset(name)])
    return np.random.default_rng(mixed)


class RngFactory:
    """Factory of named, reproducible random streams.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` uses fresh OS entropy (non-reproducible).

    Examples
    --------
    >>> factory = RngFactory(1234)
    >>> trace_rng = factory.get("trace")
    >>> evo_rng = factory.get("evolution")
    >>> factory.get("trace").integers(10) == RngFactory(1234).get("trace").integers(10)
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().generate_state(1)[0])
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed of the factory."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name`` (cached per factory)."""
        if name not in self._cache:
            self._cache[name] = spawn_generator(self._seed, name)
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, resetting any cached one."""
        self._cache[name] = spawn_generator(self._seed, name)
        return self._cache[name]

    def child(self, name: str) -> "RngFactory":
        """Return a child factory whose root seed is derived from ``name``."""
        return RngFactory(self._seed ^ _name_to_offset(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed})"
