"""Shared utilities for the ONES reproduction.

This subpackage holds small, dependency-free helpers used throughout the
library: deterministic random-number management (:mod:`repro.utils.rng`),
unit constants and formatting (:mod:`repro.utils.units`), argument
validation (:mod:`repro.utils.validation`) and summary-statistics helpers
(:mod:`repro.utils.stats`).
"""

from repro.utils.rng import RngFactory, as_generator, spawn_generator
from repro.utils.units import (
    GB,
    GIGA,
    KB,
    MB,
    MEGA,
    MICROSECOND,
    MILLISECOND,
    MINUTE,
    HOUR,
    format_bytes,
    format_duration,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)
from repro.utils.stats import (
    SummaryStats,
    cumulative_frequency,
    percentile_summary,
    summarize,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generator",
    "GB",
    "GIGA",
    "KB",
    "MB",
    "MEGA",
    "MICROSECOND",
    "MILLISECOND",
    "MINUTE",
    "HOUR",
    "format_bytes",
    "format_duration",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "SummaryStats",
    "cumulative_frequency",
    "percentile_summary",
    "summarize",
]
