"""Unit constants and human-readable formatting helpers.

All simulator quantities use SI base units internally: seconds for time,
bytes for data sizes, FLOP/s for compute rates and bytes/second for
bandwidths.  The constants below are multipliers to those base units.
"""

from __future__ import annotations

# --- data sizes (bytes) ---------------------------------------------------
KB: float = 1e3
MB: float = 1e6
GB: float = 1e9
KIB: float = 1024.0
MIB: float = 1024.0**2
GIB: float = 1024.0**3

# --- generic SI multipliers ------------------------------------------------
KILO: float = 1e3
MEGA: float = 1e6
GIGA: float = 1e9
TERA: float = 1e12

# --- time (seconds) ---------------------------------------------------------
MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0


def format_bytes(num_bytes: float) -> str:
    """Format a byte count using binary prefixes, e.g. ``1.5 GiB``."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} TiB"  # pragma: no cover - unreachable


def format_duration(seconds: float) -> str:
    """Format a duration in seconds as a compact human-readable string."""
    seconds = float(seconds)
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < MINUTE:
        return f"{seconds:.2f}s"
    if seconds < HOUR:
        minutes, rem = divmod(seconds, MINUTE)
        return f"{int(minutes)}m{rem:04.1f}s"
    hours, rem = divmod(seconds, HOUR)
    minutes = rem / MINUTE
    return f"{int(hours)}h{minutes:04.1f}m"


def format_rate(value: float, unit: str = "samples/s") -> str:
    """Format a rate with an SI prefix, e.g. ``12.3 ksamples/s``."""
    value = float(value)
    if abs(value) >= GIGA:
        return f"{value / GIGA:.2f} G{unit}"
    if abs(value) >= MEGA:
        return f"{value / MEGA:.2f} M{unit}"
    if abs(value) >= KILO:
        return f"{value / KILO:.2f} k{unit}"
    return f"{value:.2f} {unit}"
